#!/usr/bin/env python3
"""Repair concurrent with normal operation (paper §4.3) — for real.

WARP's repair generations let the site keep serving users while a repair
rewrites history: normal execution continues in the *current* generation,
repair builds the *next* one, and a brief suspend at the end switches them
atomically.  With the partition-scoped write gate (repro.repair.gate),
"keep serving" means actual concurrent threads:

* 8 loadgen threads hammer a 16-tenant wiki while ``cancel_client``
  undoes an attacker's defacement of tenant 0 on the main thread;
* requests whose footprint is disjoint from the repair (the other 15
  tenants) are served live from the current generation;
* requests that touch the partitions under repair come back ``202`` with
  a ticket and are re-applied — exactly once, in arrival order — right
  after the generation switch, onto the repaired timeline.

Run:  python examples/concurrent_repair.py
"""

import threading
import time

from repro.workload.loadgen import LoadGen, make_load_clients
from repro.workload.scenarios import run_multi_tenant_scenario


def main() -> None:
    outcome = run_multi_tenant_scenario(
        n_tenants=16, users_per_tenant=1, attacked_tenants=1, seed=3
    )
    warp = outcome.warp
    warp.enable_online_repair()
    pages = [outcome.tenant_page(t) for t in range(16)]
    print(
        f"staged 16-tenant wiki: {warp.graph.n_visits} page visits, "
        f"{warp.graph.n_runs} runs recorded; tenant 0 is defaced"
    )
    assert "DEFACED" in outcome.wiki.page_text(pages[0])

    # 16 load users (one per tenant page), each logged in up front.
    clients = make_load_clients(
        outcome.wiki, warp.server, [f"user{i}" for i in range(16)]
    )
    loadgen = LoadGen(clients, pages, seed=1)

    stop = threading.Event()
    box = {}
    loader = threading.Thread(
        target=lambda: box.update(stats=loadgen.run_threads(8, stop=stop))
    )
    loader.start()
    time.sleep(0.05)  # let traffic build up before the repair starts

    started = time.perf_counter()
    result = warp.cancel_client(outcome.attacker_client)
    repair_ms = (time.perf_counter() - started) * 1e3
    stop.set()
    loader.join()

    stats = box["stats"]
    gate = result.stats.gate
    window = gate["served"] + gate["queued"]
    served_fraction = gate["served"] / window if window else 1.0
    print(f"\nrepair finished in {repair_ms:.0f} ms: ok={result.ok}")
    print(
        f"during the repair window: {gate['served']}/{window} requests served "
        f"live ({served_fraction:.1%}), {gate['queued']} queued and "
        f"{gate['applied']} re-applied after the switch"
    )
    print(
        f"load totals: {stats.total} requests, 503s={stats.rejected}, "
        f"p50={stats.percentile(0.5) * 1e3:.2f} ms, "
        f"p95={stats.percentile(0.95) * 1e3:.2f} ms"
    )
    print(f"DB generation after switch: {warp.ttdb.current_gen}")

    assert result.ok
    assert stats.rejected == 0, "nothing may be 503'd under the gate"
    assert gate["applied"] == gate["queued"], "every queued request re-applies"

    # Every write landed exactly once — the served ones live, the queued
    # ones onto the repaired timeline.
    text = {page: outcome.wiki.page_text(page) for page in pages}
    for marker, page in stats.writes:
        assert text[page].count(marker) == 1, (marker, page)
    assert "DEFACED" not in text[pages[0]], "the attack is gone"
    print(
        f"\n{len(stats.writes)} concurrent edits all applied exactly once; "
        "tenant 0 repaired while the other 15 tenants kept working."
    )


if __name__ == "__main__":
    main()
