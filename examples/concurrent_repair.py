#!/usr/bin/env python3
"""Repair concurrent with normal operation (paper §4.3, Table 6).

WARP's repair generations let the site keep serving users while a repair
rewrites history: normal execution continues in the *current* generation,
repair builds the *next* one, and a brief suspend at the end switches them
atomically.  Requests that arrive mid-repair and touch repaired state are
re-applied to the next generation before the switch.

This example launches a clickjacking repair across a 30-user history while
a live user keeps reading and editing pages, then shows that (a) the live
user was served throughout, (b) her mid-repair edit survived the
generation switch, and (c) the repair still removed the attack.

Run:  python examples/concurrent_repair.py
"""

from repro.apps.wiki.patches import patch_for
from repro.workload.scenarios import WIKI, run_scenario


def main() -> None:
    outcome = run_scenario("clickjacking", n_users=30, n_victims=3)
    deployment = outcome.deployment
    warp = outcome.warp
    wiki = outcome.wiki
    print(
        f"staged clickjacking scenario: {warp.graph.n_visits} page visits, "
        f"{warp.graph.n_runs} runs recorded"
    )
    assert "clickjacked spam" in wiki.page_text("Projects")

    # A live user keeps working while the repair runs: one page view or
    # edit per repair work item, interleaved through the step hook.
    live = deployment.browser(deployment.users[-1])
    served = {"ok": 0, "fail": 0, "edited": False}

    def live_traffic():
        count = served["ok"] + served["fail"]
        if count == 5 and not served["edited"]:
            # Mid-repair edit to a page the repair is also touching.
            deployment.append_to_page(
                deployment.users[-1], "Main_Page", "\nedited during repair"
            )
            served["edited"] = True
        visit = live.open(f"{WIKI}/index.php?title=Main_Page")
        key = "ok" if visit.response.status == 200 else "fail"
        served[key] += 1

    controller = warp._controller()
    controller.step_hook = live_traffic
    spec = patch_for("clickjacking")
    result = controller.retroactive_patch(spec.file, spec.build())

    print(f"\nrepair finished: ok={result.ok}")
    print(f"live requests served during repair: {served['ok']} "
          f"(failed: {served['fail']})")
    print(f"DB generation after switch: {warp.ttdb.current_gen}")

    text = wiki.page_text("Main_Page")
    print(f"\nMain_Page after repair: {text!r}")
    assert served["ok"] > 0, "the site must stay available during repair"
    assert served["fail"] == 0
    assert "edited during repair" in text, "mid-repair edit must survive"

    # Clickjacked input cannot be replayed (the page refuses to load in a
    # frame under the patch), so the victims get conflicts — Table 3's
    # three-conflict row.  They resolve by cancelling the framed visit,
    # which removes the spam.
    conflicts = warp.conflicts.pending()
    print(f"victims with conflicts to resolve: {len(conflicts)}")
    for conflict in list(conflicts):
        warp.resolve_conflict_by_cancel(conflict)
    assert "clickjacked spam" not in wiki.page_text("Projects")
    print("\nsite stayed online, mid-repair edit survived, attack removed "
          "after the victims resolved their conflicts.")


if __name__ == "__main__":
    main()
