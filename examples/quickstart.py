#!/usr/bin/env python3
"""Quickstart: deploy a WARP-protected wiki, attack it, repair it.

Walks the full WARP workflow from the paper's introduction:

1. stand up a wiki behind WARP (time-travel DB + logged server),
2. let legitimate users work,
3. let an attacker exploit a stored-XSS bug that hijacks a victim's
   browser into vandalising her page,
4. retroactively apply the security patch, and
5. watch WARP undo the attack while keeping everyone's real edits.

Run:  python examples/quickstart.py
"""

from repro.apps.wiki import WikiApp, patch_for
from repro.warp import WarpSystem

WIKI = "http://wiki.test"


def main() -> None:
    # -- 1. deploy ----------------------------------------------------------
    warp = WarpSystem(origin=WIKI)
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    wiki.seed_user("alice", "alice-pw")
    wiki.seed_user("attacker", "evil-pw")
    wiki.seed_page("alice_notes", "alice's research notes", owner="alice", public=False)
    print("deployed wiki with WARP recording enabled")

    # -- 2. legitimate activity ----------------------------------------------
    alice = warp.client("alice-laptop")
    alice.open(f"{WIKI}/login.php")
    alice.type_into("input[name=wpName]", "alice")
    alice.type_into("input[name=wpPassword]", "alice-pw")
    alice.submit("#loginform")
    print("alice logged in")

    # -- 3. the attack --------------------------------------------------------
    evil = warp.client("attacker-box")
    evil.open(f"{WIKI}/login.php")
    evil.type_into("input[name=wpName]", "attacker")
    evil.type_into("input[name=wpPassword]", "evil-pw")
    evil.submit("#loginform")
    evil.open(f"{WIKI}/special_block.php?ip=6.6.6.6")
    evil.type_into(
        "input[name=reason]",
        "<script>var u = doc_text('#username');"
        "http_post('/edit.php', {'title': u + '_notes', 'append': ' HACKED'});"
        "</script>",
    )
    evil.click("input[name=report]")
    print("attacker planted a stored-XSS payload on the block page")

    # Alice visits the infected page; the payload runs in *her* browser and
    # vandalises her page with her privileges.
    alice.open(f"{WIKI}/special_block.php?ip=6.6.6.6")
    print(f"after the attack, alice_notes = {wiki.page_text('alice_notes')!r}")

    # Alice keeps working, editing the now-vandalised page.
    visit = alice.open(f"{WIKI}/edit.php?title=alice_notes")
    current = visit.document.select("textarea").value
    alice.type_into("textarea", current + "\nmeeting notes from tuesday")
    alice.click("input[name=save]")
    print(f"after alice's edit,   alice_notes = {wiki.page_text('alice_notes')!r}")

    # -- 4. retroactive patching ----------------------------------------------
    patch = patch_for("stored-xss")
    print(f"\nadministrator retroactively applies {patch.cve}: {patch.fix}")
    result = warp.retroactive_patch(patch.file, patch.build())

    # -- 5. verify ---------------------------------------------------------------
    repaired = wiki.page_text("alice_notes")
    print(f"\nafter repair,         alice_notes = {repaired!r}")
    print(f"repair ok: {result.ok}, conflicts: {len(result.conflicts)}")
    stats = result.stats
    print(
        f"re-executed {stats.visits_reexecuted} page visits, "
        f"{stats.runs_reexecuted} app runs, {stats.queries_reexecuted} queries "
        f"out of {stats.total_visits}/{stats.total_runs}/{stats.total_queries} recorded"
    )
    assert "HACKED" not in repaired, "attack must be undone"
    assert "meeting notes from tuesday" in repaired, "alice's edit must survive"
    print("\nattack undone, legitimate edit preserved — WARP works.")


if __name__ == "__main__":
    main()
