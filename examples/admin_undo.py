#!/usr/bin/env python3
"""Administrator mistake and user-initiated undo (paper §5.5, §8.2).

The administrator accidentally grants a user access to a protected page;
the user exploits the window to edit it.  The administrator later cancels
the offending page visit with WARP: the grant and every action it enabled
are undone, and the user gets a queued conflict to resolve on next login.

Also demonstrates the abort rule: a *regular user's* undo that would
create conflicts for someone else is rolled back entirely — and the
Repair API v2 workflow (see API.md): preview the undo's impact first,
then submit it as an observable job.

Run:  python examples/admin_undo.py
"""

from repro.apps.wiki import WikiApp
from repro.repair.api import CancelVisitSpec
from repro.warp import WarpSystem

WIKI = "http://wiki.test"


def login(warp, name, password):
    browser = warp.client(f"{name}-browser")
    browser.open(f"{WIKI}/login.php")
    browser.type_into("input[name=wpName]", name)
    browser.type_into("input[name=wpPassword]", password)
    browser.submit("#loginform")
    return browser


def main() -> None:
    warp = WarpSystem(origin=WIKI)
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    wiki.seed_user("admin", "admin-pw", admin=True)
    wiki.seed_user("mallory", "mallory-pw")
    wiki.seed_page("Secret", "launch codes: 0000", owner="admin", public=False)

    # The administrator fat-fingers an ACL grant.
    admin = login(warp, "admin", "admin-pw")
    admin.open(f"{WIKI}/acl.php")
    admin.type_into("input[name=title]", "Secret")
    admin.type_into("input[name=user]", "mallory")  # oops — wrong user
    grant_visit = admin.click("input[name=apply]")
    print(f"admin granted mallory edit on Secret (visit {grant_visit.visit_id})")

    # Mallory takes advantage.
    mallory = login(warp, "mallory", "mallory-pw")
    mallory.open(f"{WIKI}/edit.php?title=Secret")
    mallory.type_into("textarea", "mallory was here")
    mallory.click("input[name=save]")
    print(f"mallory edited Secret: {wiki.page_text('Secret')!r}")

    # The admin notices.  Before committing to the repair, a dry-run
    # preview (Repair API v2) estimates the blast radius — read-only,
    # no repair generation is created.
    spec = CancelVisitSpec(client_id="admin-browser", visit_id=grant_visit.visit_id)
    plan = warp.repair.preview(spec)
    print(
        f"\npreview: ~{plan.affected_runs}/{plan.total_runs} runs in "
        f"{plan.n_groups} component(s), clients {plan.affected_clients}"
    )

    # Then the undo runs as an observable job; result() is the blocking join.
    job = warp.repair.submit(spec)
    result = job.result()
    print(f"admin canceled the grant: job={job.job_id} repaired={result.ok}")
    print(f"Secret is now: {wiki.page_text('Secret')!r}")
    print(f"ACL for Secret: {wiki.acl_users('Secret')}")
    assert wiki.page_text("Secret") == "launch codes: 0000"
    assert "mallory" not in wiki.acl_users("Secret")

    # Mallory has a queued conflict: her edit could not be replayed.
    conflicts = warp.conflicts.pending("mallory-browser")
    print(f"\nmallory's queued conflicts: {len(conflicts)}")
    for conflict in conflicts:
        print(f"  on {conflict.url}: {conflict.reason}")
    assert len(conflicts) == 1

    # When mallory next contacts the site, the server tells her browser
    # about the pending conflict (the paper's redirect-to-resolution flow).
    response = mallory.open(f"{WIKI}/index.php?title=Main_Page").response
    print(f"conflict header on next visit: X-Warp-Conflicts="
          f"{response.headers.get('X-Warp-Conflicts')}")

    # She resolves it the only way the prototype (like the paper's) offers:
    # cancel her conflicted page visit.
    warp.resolve_conflict_by_cancel(conflicts[0])
    print(f"after resolution, pending conflicts: "
          f"{len(warp.conflicts.pending('mallory-browser'))}")
    print("\nmistake undone; mallory's exploitation reverted; conflict resolved.")


if __name__ == "__main__":
    main()
