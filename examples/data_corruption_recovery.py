#!/usr/bin/env python3
"""Data-corruption recovery: WARP vs taint tracking (paper §8.4).

A buggy Gallery2-style permission editor revokes one user's access on
*every* photo instead of one.  Two recovery paths:

* **Akkuş & Goel-style taint tracking** (the baseline the paper compares
  against): the administrator must identify the buggy request, run the
  dependency analysis, choose a whitelist, and then manually revert the
  flagged rows — some of which are false positives (legitimate data).
* **WARP retroactive patching**: supply the fixed handler; WARP re-runs
  the buggy request under it and repairs exactly what the bug corrupted,
  while keeping the intended effect and everything that legitimately
  happened since.

Run:  python examples/data_corruption_recovery.py
"""

from repro.workload.comparison import run_corruption_scenario


def main() -> None:
    outcome = run_corruption_scenario("gallery-perms", n_after=30)
    warp = outcome.warp
    app = outcome.app

    print("bug triggered: revoking mallory on Photo1 wiped her access to "
          "every photo in the album")
    rows = warp.ttdb.execute(
        "SELECT item_name, level FROM perms WHERE user_name = 'mallory'"
    ).rows
    revoked = sum(1 for row in rows if row["level"] == "none")
    print(f"mallory's permissions: {revoked}/{len(rows)} revoked\n")

    # -- path 1: the taint-tracking baseline ---------------------------------
    print("— taint-tracking recovery (needs admin guidance) —")
    plain = outcome.taint_report(whitelisted=False)
    print(f"  without whitelisting: {len(plain.flagged)} rows flagged, "
          f"{plain.fp_count} false positives")
    whitelisted = outcome.taint_report(whitelisted=True)
    print(f"  with accesslog whitelisted: {len(whitelisted.flagged)} rows "
          f"flagged, {whitelisted.fp_count} false positives "
          f"(view counters — real data the admin would wrongly revert)")
    print(f"  false negatives: {whitelisted.fn_count}")
    print("  ...and the admin still has to revert the flagged rows by hand.\n")

    # -- path 2: WARP ----------------------------------------------------------
    print("— WARP retroactive patching (needs only the patch) —")
    result = outcome.warp_repair()
    print(f"  repaired: {result.ok}, conflicts (user input needed): "
          f"{len(result.conflicts)}")
    print(f"  exact state restored: {outcome.verify_restored()}")
    rows = warp.ttdb.execute(
        "SELECT item_name, level FROM perms WHERE user_name = 'mallory'"
    ).rows
    still_revoked = sorted(r["item_name"] for r in rows if r["level"] == "none")
    print(f"  mallory now revoked only on: {still_revoked} (the intended one)")
    assert result.ok and outcome.verify_restored()
    assert still_revoked == ["Photo1"]
    assert not result.conflicts
    print("\nWARP: zero false positives, zero manual work; the intended "
          "revocation survived.")


if __name__ == "__main__":
    main()
