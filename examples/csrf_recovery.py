#!/usr/bin/env python3
"""Login-CSRF recovery: re-attributing hijacked edits (paper §8.2).

A victim logged into the wiki visits a malicious site that silently logs
her browser out and back in under the *attacker's* account (login CSRF,
CVE-2010-1150 class).  Her subsequent edits are recorded under the
attacker's name.  Retroactively patching login.php with the
challenge-token fix makes the forged login fail during replay; WARP then
re-executes her edits under her own restored session, and queues her real
browser's stale cookie for invalidation.

This exercises the subtlest machinery in the paper: DOM-level replay of
her original login regenerates the form submission *with the new hidden
token*, so her legitimate login still succeeds under the patched code.

Run:  python examples/csrf_recovery.py
"""

from repro.apps.wiki import WikiApp, patch_for
from repro.http.message import HttpResponse
from repro.warp import WarpSystem

WIKI = "http://wiki.test"
EVIL = "http://evil.test"


def main() -> None:
    warp = WarpSystem(origin=WIKI)
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    wiki.seed_user("victim", "victim-pw")
    wiki.seed_user("attacker", "attacker-pw")
    wiki.seed_page("TeamPlan", "q3 roadmap", owner="victim", public=True)

    # The attacker's site: one script tag that force-logs the visitor into
    # the attacker's account (the vulnerable login has no CSRF token).
    warp.register_site(
        EVIL,
        lambda request: HttpResponse(
            body=(
                "<html><body><h1>Free kittens!</h1>"
                f"<script>http_post('{WIKI}/login.php',"
                " {'wpName': 'attacker', 'wpPassword': 'attacker-pw'});"
                "</script></body></html>"
            )
        ),
    )

    victim = warp.client("victim-browser")
    victim.open(f"{WIKI}/login.php")
    victim.type_into("input[name=wpName]", "victim")
    victim.type_into("input[name=wpPassword]", "victim-pw")
    victim.submit("#loginform")
    own_session = victim.cookies_for(WIKI)["sess"]
    print(f"victim logged in (session {own_session[:8]}…)")

    victim.open(f"{EVIL}/kittens.html")
    hijacked = victim.cookies_for(WIKI)["sess"]
    print(f"victim visited {EVIL}; session silently swapped to {hijacked[:8]}…")
    assert hijacked != own_session

    # She keeps editing, believing she is herself.
    visit = victim.open(f"{WIKI}/edit.php?title=TeamPlan")
    current = visit.document.select("textarea").value
    victim.type_into("textarea", current + "\nship feature X by friday")
    victim.click("input[name=save]")
    print(
        f"edit recorded under: {wiki.page_editor('TeamPlan')!r} "
        "(should have been 'victim'!)"
    )
    assert wiki.page_editor("TeamPlan") == "attacker"

    # Retroactively patch login.php with the r64677-style login token.
    patch = patch_for("csrf")
    print(f"\nretroactively applying {patch.cve}: {patch.fix}")
    result = warp.retroactive_patch(patch.file, patch.build())

    print(f"\nrepaired: {result.ok}, conflicts: {len(result.conflicts)}")
    print(f"TeamPlan text:   {wiki.page_text('TeamPlan')!r}")
    print(f"TeamPlan editor: {wiki.page_editor('TeamPlan')!r}")
    assert "ship feature X by friday" in wiki.page_text("TeamPlan")
    assert wiki.page_editor("TeamPlan") == "victim"
    assert not result.conflicts

    # Her real browser still holds the attacker's cookie; WARP queued it
    # for invalidation, so her next request gets it deleted (§5.3).
    assert "victim-browser" in warp.server.cookie_invalidation
    response = victim.open(f"{WIKI}/index.php?title=TeamPlan").response
    print(f"stale cookie deleted on next contact: "
          f"{response.set_cookies.get('sess', 'kept')}")
    print("\nhijacked edits re-attributed to the victim; forged login erased.")


if __name__ == "__main__":
    main()
