#!/usr/bin/env python3
"""Degraded-mode serving and self-healing recovery (ISSUE 7 tentpole).

A disk goes bad under a live wiki: every fsync starts failing.  WARP's
serving path must not crash and must not lie —

* the write that trips the fault is **not acknowledged** (503 with
  ``X-Warp-Degraded: durability``: it executed, but its history record
  never reached disk);
* the system flips to **read-only**: reads keep serving (their journal
  entries park in memory), writes get 503 + ``Retry-After`` +
  ``X-Warp-Degraded: read-only``;
* ``GET /warp/admin/health`` reports the degradation with the WAL's
  parked-entry backlog;
* when the disk recovers, the first write **probes, heals, and
  succeeds** — the parked backlog is flushed in order, durability is
  restored, no operator action needed;
* a crash during a snapshot save is recovered by replaying the WAL:
  every acknowledged write survives.

Run:  python examples/degraded_mode.py       (exits non-zero on failure)
"""

import json
import os
import sys
import tempfile

from repro.apps.wiki import WikiApp
from repro.faults.plane import FaultPlane, SimulatedCrash
from repro.http.message import HttpRequest
from repro.warp import WarpSystem
from repro.workload.loadgen import LoadClient, LoadStats

PAGE = "Frontpage"
FAILURES = []


def check(label, condition):
    marker = "ok" if condition else "FAIL"
    print(f"  [{marker}] {label}")
    if not condition:
        FAILURES.append(label)


def health(warp):
    response = warp.server.handle(
        HttpRequest(method="GET", path="/warp/admin/health", params={})
    )
    return response.status, json.loads(response.body)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="warp-degraded-")
    wal_path = os.path.join(workdir, "warp.wal")
    plane = FaultPlane(seed=7)
    warp = WarpSystem(
        wal_path=wal_path,
        durability="always",
        wal_flush_interval=30.0,
        fault_plane=plane,
    )
    warp.graph.store.durability_timeout = 5.0
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    wiki.seed_user("alice", "alice-pw")
    wiki.seed_page(PAGE, "welcome\n", "alice")
    alice = LoadClient("alice", warp.server)
    stats = LoadStats()

    def post(marker):
        response = alice.send(
            alice.request("POST", "/edit.php", {"title": PAGE, "append": f"\n{marker}"})
        )
        stats.note(response, 0.0)
        return response

    def get():
        response = alice.send(alice.request("GET", "/edit.php", {"title": PAGE}))
        stats.note(response, 0.0)
        return response

    print("== healthy baseline ==")
    check("login succeeds", alice.login("alice-pw").status == 200)
    check("write acknowledged", post("before-the-storm.").status == 200)
    status, doc = health(warp)
    check("health is 200/normal", status == 200 and doc["mode"] == "normal")

    print("== the disk goes bad: every fsync fails ==")
    plane.arm(point="wal.fsync", kind="io", times=None)
    refused = post("never-acked.")
    check(
        "triggering write not acknowledged (503 durability)",
        refused.status == 503
        and refused.headers.get("X-Warp-Degraded") == "durability",
    )
    reads = [get() for _ in range(8)]
    check("reads keep serving (8/8 are 200)", all(r.status == 200 for r in reads))
    blocked = post("still-refused.")
    check(
        "writes refused up front (503 read-only + Retry-After)",
        blocked.status == 503
        and blocked.headers.get("X-Warp-Degraded") == "read-only"
        and blocked.headers.get("Retry-After") is not None,
    )
    status, doc = health(warp)
    check("health is 503/read_only", status == 503 and doc["mode"] == "read_only")
    check("health reports parked journal entries", doc["wal"]["parked_entries"] > 0)
    print(f"  health: {json.dumps({k: doc[k] for k in ('mode', 'last_error')})}")

    print("== the disk recovers: the next write self-heals ==")
    plane.clear()
    healed = post("after-the-storm.")
    check("first write after the fault heals and succeeds", healed.status == 200)
    status, doc = health(warp)
    check("health back to 200/normal", status == 200 and doc["mode"] == "normal")
    check("exactly one heal recorded", doc["heals"] == 1)
    wal = warp.graph.store.wal
    check("parked backlog flushed to disk", wal.sync(5.0) and not wal.failed)

    availability = stats.availability()
    print(
        "  availability: "
        f"served={availability['served_fraction']:.2f} "
        f"degraded={availability['degraded_fraction']:.2f} "
        f"failed={availability['failed_fraction']:.2f} "
        f"classes={stats.error_classes}"
    )
    check("no hard failures during the storm", availability["failed_fraction"] == 0)

    print("== crash during snapshot save, recover from disk ==")
    snap_path = os.path.join(workdir, "snap.json")
    warp.save(snap_path)
    check("baseline snapshot saved", os.path.exists(snap_path))
    check("write after the snapshot acknowledged", post("post-snapshot.").status == 200)
    runs_before = len(warp.graph.store.runs)
    plane.arm(point="store.snapshot", kind="crash", times=1)
    snap2_path = os.path.join(workdir, "snap2.json")
    try:
        warp.save(snap2_path)
        crashed = False
    except SimulatedCrash:
        crashed = True
    check("process crashed mid-save", crashed)
    check("no partial snapshot left behind", not os.path.exists(snap2_path))
    warp.graph.store.wal._mark_crashed()  # the rest of the process dies too

    reloaded = WarpSystem.load(snap_path, wal_path=wal_path)
    check(
        "every acknowledged write survives the crash (history graph)",
        len(reloaded.graph.store.runs) == runs_before,
    )
    post_snapshot_runs = [
        run
        for run in reloaded.graph.store.runs.values()
        if getattr(run, "request", None) is not None
        and run.request.params.get("append") == "\npost-snapshot."
    ]
    check("post-snapshot acked write recovered from the WAL", len(post_snapshot_runs) == 1)
    wiki2 = WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server)
    wiki2.register_code()
    alice2 = LoadClient("alice", reloaded.server)
    probe = alice2.send(alice2.request("GET", "/index.php", {"title": PAGE}))
    check("reloaded system serves requests", probe.status == 200)
    body = probe.body
    check("acked edits present exactly once", body.count("before-the-storm.") == 1)
    check("healed write present exactly once", body.count("after-the-storm.") == 1)
    reloaded.graph.store.wal.close()

    print()
    if FAILURES:
        print(f"FAILED: {len(FAILURES)} check(s): {FAILURES}")
        sys.exit(1)
    print("all checks passed")


if __name__ == "__main__":
    main()
