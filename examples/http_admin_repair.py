#!/usr/bin/env python3
"""Drive a full intrusion recovery purely over the HTTP admin surface.

The Repair API v2 (see API.md) mounts privileged control-plane routes on
the same logged server that serves the application, so an operator's
tooling needs nothing but HTTP:

1. stand up a WARP-protected wiki and let a stored-XSS attack unfold,
2. register the vendor patch in the job manager's catalog (script
   exports are Python callables — the catalog is how JSON specs
   reference them),
3. ``POST /warp/admin/repair/preview`` — the what-if: which
   taint-connected components, clients, and partitions would the repair
   touch, *before* committing to it,
4. ``POST /warp/admin/repair`` with the same spec JSON — returns a job
   id immediately; the repair runs on a worker thread,
5. poll ``GET /warp/admin/repair/<id>`` until the job finalizes, then
   read the stats and check ``GET /warp/admin/conflicts``.

Every admin call goes through ``HttpServer.handle`` — the exact same
entry point the attack traffic used — authenticated by the deployment's
admin token.

Run:  python examples/http_admin_repair.py
"""

import json
import time

from repro.apps.wiki import WikiApp, patch_for
from repro.http.message import HttpRequest
from repro.warp import WarpSystem

WIKI = "http://wiki.test"
TOKEN = "example-admin-token"


def admin_call(warp, method, path, **params):
    """One control-plane request over the logged server."""
    request = HttpRequest(
        method, path, params=params, headers={"X-Warp-Admin-Token": TOKEN}
    )
    response = warp.server.handle(request)
    assert response.status < 500, response.body
    return response.status, json.loads(response.body)


def main() -> None:
    # -- 1. deploy + attack (condensed quickstart) ---------------------------
    warp = WarpSystem(origin=WIKI, admin_token=TOKEN)
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    wiki.seed_user("alice", "alice-pw")
    wiki.seed_user("attacker", "evil-pw")
    wiki.seed_page("alice_notes", "alice's notes", owner="alice", public=False)

    alice = warp.client("alice-laptop")
    alice.open(f"{WIKI}/login.php")
    alice.type_into("input[name=wpName]", "alice")
    alice.type_into("input[name=wpPassword]", "alice-pw")
    alice.submit("#loginform")

    evil = warp.client("attacker-box")
    evil.open(f"{WIKI}/login.php")
    evil.type_into("input[name=wpName]", "attacker")
    evil.type_into("input[name=wpPassword]", "evil-pw")
    evil.submit("#loginform")
    evil.open(f"{WIKI}/special_block.php?ip=6.6.6.6")
    evil.type_into(
        "input[name=reason]",
        "<script>var u = doc_text('#username');"
        "http_post('/edit.php', {'title': u + '_notes', 'append': ' HACKED'});"
        "</script>",
    )
    evil.click("input[name=report]")
    alice.open(f"{WIKI}/special_block.php?ip=6.6.6.6")  # payload fires
    assert "HACKED" in wiki.page_text("alice_notes")
    print(f"after the attack: alice_notes = {wiki.page_text('alice_notes')!r}")

    # A wrong token is rejected before anything else happens.
    denied = warp.server.handle(HttpRequest("GET", "/warp/admin/repair"))
    assert denied.status == 403
    print("admin call without the token: 403 (privileged surface)")

    # -- 2. register the vendor patch in the catalog -------------------------
    patch = patch_for("stored-xss")
    warp.repair.register_patch("stored-xss-fix", patch.file, patch.build())
    spec_json = json.dumps({"kind": "patch", "patch_name": "stored-xss-fix"})

    # -- 3. what-if preview --------------------------------------------------
    status, plan = admin_call(
        warp, "POST", "/warp/admin/repair/preview", spec=spec_json
    )
    print(
        f"\npreview ({status}): ~{plan['affected_runs']}/{plan['total_runs']} "
        f"runs across {plan['n_groups']} component(s); "
        f"clients {plan['affected_clients']}; futile={plan['futile']}"
    )

    # -- 4. submit -----------------------------------------------------------
    status, submitted = admin_call(warp, "POST", "/warp/admin/repair", spec=spec_json)
    job_id = submitted["job_id"]
    print(f"submitted ({status}): job_id={job_id}")

    # -- 5. poll to completion ----------------------------------------------
    for _ in range(1000):
        _, doc = admin_call(warp, "GET", f"/warp/admin/repair/{job_id}")
        if doc["status"] in ("done", "failed", "aborted", "canceled"):
            break
        time.sleep(0.01)
    assert doc["status"] == "done", doc
    stats = doc["result"]["stats"]
    print(
        f"job {job_id} {doc['status']}: re-executed "
        f"{stats['visits_reexecuted']} visits / {stats['runs_reexecuted']} runs / "
        f"{stats['queries_reexecuted']} queries "
        f"(of {stats['total_visits']}/{stats['total_runs']}/{stats['total_queries']})"
    )
    print("events:", " -> ".join(e["event"] for e in doc["events"]))

    _, conflicts = admin_call(warp, "GET", "/warp/admin/conflicts")
    print(f"pending conflicts: {len(conflicts['pending'])}")

    repaired = wiki.page_text("alice_notes")
    print(f"\nafter repair: alice_notes = {repaired!r}")
    assert "HACKED" not in repaired, "attack must be undone"
    print("attack undone, driven entirely over /warp/admin HTTP endpoints.")


if __name__ == "__main__":
    main()
