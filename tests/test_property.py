"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.browser.html import escape_attr, escape_text, parse_html, serialize, unescape
from repro.browser.merge import MergeConflict, three_way_merge
from repro.core.clock import INFINITY
from repro.db.executor import ExecContext, Executor
from repro.db.sql.parser import parse
from repro.db.storage import Column, Database, TableSchema
from repro.ttdb.timetravel import TimeTravelDB, split_statements
from repro.core.clock import LogicalClock

# -- text strategies -----------------------------------------------------------

texts = st.text(alphabet=string.ascii_letters + string.digits + " \n'<>&\"", max_size=120)
lines = st.lists(
    st.text(alphabet=string.ascii_letters + " ", min_size=1, max_size=12),
    min_size=0,
    max_size=8,
).map(lambda ls: "\n".join(ls))


class TestMergeProperties:
    @given(base=lines, theirs=lines)
    def test_no_user_change_returns_theirs(self, base, theirs):
        assert three_way_merge(base, base, theirs) == theirs

    @given(base=lines, ours=lines)
    def test_no_repair_change_returns_ours(self, base, ours):
        assert three_way_merge(base, ours, base) == ours

    @given(base=lines, both=lines)
    def test_identical_changes_agree(self, base, both):
        assert three_way_merge(base, both, both) == both

    @given(base=lines, suffix=st.text(alphabet=string.ascii_letters, min_size=1, max_size=10))
    def test_user_append_survives_attack_line_removal(self, base, suffix):
        # attacked = base + attack line; user appends after it; repair
        # removes the attack line: the merge keeps base + user's line.
        attacked = base + "\nATTACK"
        ours = attacked + "\n" + suffix
        try:
            merged = three_way_merge(attacked, ours, base)
        except MergeConflict:
            return  # conflicts are allowed, silently wrong merges are not
        assert "ATTACK" not in merged
        assert merged.endswith(suffix)

    @given(base=lines, ours=lines, theirs=lines)
    def test_merge_never_crashes_unexpectedly(self, base, ours, theirs):
        try:
            merged = three_way_merge(base, ours, theirs)
        except MergeConflict:
            return
        assert isinstance(merged, str)


class TestHtmlProperties:
    @given(text=texts)
    def test_escape_roundtrip(self, text):
        assert unescape(escape_text(text)) == text

    @given(text=texts)
    def test_attr_escape_roundtrip(self, text):
        assert unescape(escape_attr(text)) == text

    @given(text=texts)
    def test_escaped_text_never_creates_elements(self, text):
        doc = parse_html(f"<p>{escape_text(text)}</p>")
        p = doc.select("p")
        assert p is not None
        assert [el.tag for el in p.iter() if el is not p] == []

    @given(text=texts)
    def test_text_content_preserved_through_serialize(self, text):
        doc = parse_html(f"<div>{escape_text(text)}</div>")
        again = parse_html(serialize(doc.root))
        assert again.select("div").text_content() == doc.select("div").text_content()


values = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.text(alphabet=string.ascii_letters, max_size=10),
)


class TestVersionedStorageProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(min_value=1, max_value=5), values), max_size=12
        )
    )
    def test_time_travel_reads_reconstruct_history(self, writes):
        """After any sequence of upserts, reading at each recorded time
        returns exactly the value that was current then."""
        db = Database()
        clock = LogicalClock()
        tt = TimeTravelDB(db, clock)
        tt.create_table(
            TableSchema(
                "kv",
                (Column("k", "int"), Column("v")),
                row_id_column="k",
                partition_columns=("k",),
            )
        )
        state = {}
        history = []  # (ts, snapshot-of-state)
        for key, value in writes:
            if key in state:
                res = tt.execute("UPDATE kv SET v = ? WHERE k = ?", (value, key))
            else:
                res = tt.execute("INSERT INTO kv (k, v) VALUES (?, ?)", (key, value))
            state[key] = value
            history.append((res.ts, dict(state)))

        tt.clock.advance(5)
        tt.begin_repair()  # execute_at needs an active repair generation
        for ts, snapshot in history:
            for key, expected in snapshot.items():
                res = tt.execute_at("SELECT v FROM kv WHERE k = ?", (key,), ts=ts)
                assert res.one() == {"v": expected}
        tt.abort_repair()

    @settings(max_examples=40, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(min_value=1, max_value=5), values),
            min_size=1,
            max_size=10,
        )
    )
    def test_abort_repair_is_identity(self, writes):
        """Any mixture of repair-generation writes + rollbacks aborts to
        the exact pre-repair version set."""
        db = Database()
        tt = TimeTravelDB(db, LogicalClock())
        tt.create_table(
            TableSchema("kv", (Column("k", "int"), Column("v")), row_id_column="k")
        )
        for key, value in writes:
            tt.execute(
                "INSERT INTO kv (k, v) VALUES (?, ?)", (key * 100, value)
            )
        def fingerprint():
            return sorted(
                repr(
                    (v.row_id, tuple(sorted(v.data.items())), v.start_ts, v.end_ts,
                     v.start_gen, v.end_gen)
                )
                for v in db.table("kv").all_versions()
            )

        before = fingerprint()
        tt.clock.advance(3)
        tt.begin_repair()
        for index, (key, value) in enumerate(writes):
            if index % 2 == 0:
                tt.execute_at(
                    "UPDATE kv SET v = 'mutated' WHERE k = ?", (key * 100,), ts=index + 1
                )
            else:
                tt.rollback_row("kv", key * 100, index + 1)
        tt.abort_repair()
        assert fingerprint() == before


class TestSqlProperties:
    @given(value=st.text(alphabet=string.ascii_letters + " ';--", max_size=30))
    def test_parameterised_strings_never_inject(self, value):
        """A ? parameter can never smuggle in extra statements."""
        db = Database()
        tt = TimeTravelDB(db, LogicalClock())
        tt.create_table(TableSchema("t", (Column("a"),)))
        tt.execute("INSERT INTO t (a) VALUES (?)", (value,))
        rows = tt.execute("SELECT a FROM t").rows
        assert rows == [{"a": value}]

    @given(value=st.text(alphabet=string.ascii_letters + "'; -", max_size=30))
    def test_split_statements_respects_quotes(self, value):
        quoted = value.replace("'", "''")
        pieces = split_statements(f"SELECT * FROM t WHERE a = '{quoted}'")
        assert len(pieces) <= 2  # payload may contain ; only outside quotes

    @given(n=st.integers(min_value=0, max_value=50))
    def test_count_matches_inserts(self, n):
        db = Database()
        tt = TimeTravelDB(db, LogicalClock())
        tt.create_table(TableSchema("t", (Column("a", "int"),)))
        for index in range(n):
            tt.execute("INSERT INTO t (a) VALUES (?)", (index,))
        assert tt.execute("SELECT COUNT(*) FROM t").scalar() == n
