"""Unit tests for the HTML parser, DOM, and serializer."""

from repro.browser.html import (
    Document,
    Element,
    Text,
    escape_text,
    parse_html,
    serialize,
    unescape,
)


class TestParsing:
    def test_simple_document(self):
        doc = parse_html("<html><body><p>hello</p></body></html>")
        p = doc.select("p")
        assert p is not None
        assert p.text_content() == "hello"

    def test_attributes(self):
        doc = parse_html('<input type="text" name="title" value="Home">')
        el = doc.select("input")
        assert el.attrs == {"type": "text", "name": "title", "value": "Home"}

    def test_single_quoted_and_bare_attributes(self):
        doc = parse_html("<div id='x' data=plain hidden></div>")
        el = doc.get_element_by_id("x")
        assert el.attrs["data"] == "plain"
        assert el.attrs["hidden"] == ""

    def test_void_elements_do_not_nest(self):
        doc = parse_html("<form><input name='a'><input name='b'></form>")
        form = doc.select("form")
        inputs = form.find_all("input")
        assert len(inputs) == 2
        assert all(el.parent is form for el in inputs)

    def test_entities_unescaped_in_text(self):
        doc = parse_html("<p>&lt;script&gt;alert&#39;&amp;</p>")
        assert doc.select("p").text_content() == "<script>alert'&"

    def test_escaped_script_is_text_not_element(self):
        # The core of every XSS fix: escaped payloads must not parse as script.
        doc = parse_html("<body>&lt;script&gt;evil()&lt;/script&gt;</body>")
        assert doc.scripts() == []
        assert "<script>" in doc.select("body").text_content()

    def test_script_element_content_is_raw(self):
        doc = parse_html("<script>if (1 < 2) { go('x'); }</script>")
        scripts = doc.scripts()
        assert len(scripts) == 1
        assert scripts[0].text_content() == "if (1 < 2) { go('x'); }"

    def test_comment_skipped(self):
        doc = parse_html("<body><!-- secret --><p>x</p></body>")
        assert "secret" not in doc.select("body").text_content()

    def test_doctype_skipped(self):
        doc = parse_html("<!DOCTYPE html><html><body>x</body></html>")
        assert doc.select("body").text_content() == "x"

    def test_unclosed_tags_recovered(self):
        doc = parse_html("<div><p>one<p>two</div>")
        assert doc.select("div") is not None

    def test_stray_lt_is_literal_text(self):
        doc = parse_html("<p>a < b</p>")
        assert doc.select("p").text_content() == "a < b"

    def test_textarea_value(self):
        doc = parse_html("<textarea name='body'>content here</textarea>")
        el = doc.select("textarea")
        assert el.value == "content here"
        el.value = "new content"
        assert el.text_content() == "new content"

    def test_input_value_property(self):
        doc = parse_html("<input name='t' value='v0'>")
        el = doc.select("input")
        assert el.value == "v0"
        el.value = "v1"
        assert el.attrs["value"] == "v1"


class TestSelectors:
    def test_by_id(self):
        doc = parse_html("<div id='main'><span id='inner'>x</span></div>")
        assert doc.get_element_by_id("inner").tag == "span"
        assert doc.select("#main").tag == "div"

    def test_by_tag_and_attr(self):
        doc = parse_html("<input name='a'><input name='b'>")
        assert doc.select("input[name=b]").attrs["name"] == "b"

    def test_missing_returns_none(self):
        doc = parse_html("<p>x</p>")
        assert doc.select("#nope") is None
        assert doc.select("table") is None


class TestSerialization:
    def test_roundtrip_preserves_structure(self):
        markup = '<html><body><div id="d"><p>hi &amp; bye</p></div></body></html>'
        doc = parse_html(markup)
        again = parse_html(serialize(doc.root))
        assert again.select("p").text_content() == "hi & bye"

    def test_text_escaped_on_serialize(self):
        root = Element("p")
        root.append(Text("<script>x</script>"))
        assert "&lt;script&gt;" in serialize(root)

    def test_attr_escaped_on_serialize(self):
        el = Element("input", {"value": 'say "hi"'})
        assert "&quot;hi&quot;" in serialize(el)

    def test_script_raw_roundtrip(self):
        doc = parse_html("<script>a < b && c > d</script>")
        out = serialize(doc.root)
        again = parse_html(out)
        assert again.scripts()[0].text_content() == "a < b && c > d"

    def test_unescape_numeric_entity(self):
        assert unescape("&#65;") == "A"

    def test_escape_text(self):
        assert escape_text("<&>") == "&lt;&amp;&gt;"
