"""Unit tests for the action history graph: indexes, lookups, GC."""

import pytest

from repro.ahg.graph import ActionHistoryGraph
from repro.ahg.records import AppRunRecord, QueryRecord, VisitRecord
from repro.http.message import HttpRequest, HttpResponse
from repro.ttdb.partitions import ReadSet


def make_run(run_id, ts, files=None, client=None, visit=None, request_id=None):
    return AppRunRecord(
        run_id=run_id,
        ts_start=ts,
        ts_end=ts + 1,
        script="page.php",
        loaded_files=files or {"page.php": 0},
        request=HttpRequest("GET", "/page.php"),
        response=HttpResponse(body="x"),
        client_id=client,
        visit_id=visit,
        request_id=request_id,
    )


def make_query(qid, run_id, ts, table="pages", reads=None, writes=(), all_reads=False):
    if all_reads:
        read_set = ReadSet(table, disjuncts=None)
    else:
        read_set = ReadSet(
            table,
            disjuncts=tuple(frozenset({("title", r)}) for r in (reads or [])),
        )
    return QueryRecord(
        qid=qid,
        run_id=run_id,
        seq=0,
        ts=ts,
        sql="SELECT 1",
        params=(),
        kind="update" if writes else "select",
        table=table,
        read_set=read_set,
        written_row_ids=tuple(("pages", w) for w in writes),
        written_partitions=frozenset(("pages", "title", f"t{w}") for w in writes),
        full_table_write=False,
        snapshot=("select", True, ()),
    )


class TestRunLookups:
    def test_runs_loading_file(self):
        graph = ActionHistoryGraph()
        graph.add_run(make_run(1, 10, files={"a.php": 0}))
        graph.add_run(make_run(2, 20, files={"b.php": 0}))
        graph.add_run(make_run(3, 30, files={"a.php": 0, "b.php": 0}))
        runs = graph.runs_loading_file("a.php", since_ts=0)
        assert [r.run_id for r in runs] == [1, 3]

    def test_runs_loading_file_respects_since(self):
        graph = ActionHistoryGraph()
        graph.add_run(make_run(1, 10, files={"a.php": 0}))
        graph.add_run(make_run(2, 30, files={"a.php": 0}))
        assert [r.run_id for r in graph.runs_loading_file("a.php", 20)] == [2]

    def test_request_correlation(self):
        graph = ActionHistoryGraph()
        graph.add_run(make_run(7, 10, client="c1", visit=2, request_id=1))
        found = graph.run_for_request("c1", 2, 1)
        assert found.run_id == 7
        assert graph.run_for_request("c1", 2, 9) is None

    def test_runs_of_visit_ordered(self):
        graph = ActionHistoryGraph()
        graph.add_run(make_run(1, 10, client="c1", visit=5, request_id=1))
        graph.add_run(make_run(2, 20, client="c1", visit=5, request_id=2))
        graph.add_run(make_run(3, 15, client="c1", visit=6, request_id=1))
        assert [r.run_id for r in graph.runs_of_visit("c1", 5)] == [1, 2]


class TestVisitTracking:
    def test_client_visits_in_order(self):
        graph = ActionHistoryGraph()
        for visit_id in (1, 2, 3):
            graph.add_visit(
                VisitRecord("c1", visit_id, ts=visit_id * 10, url="/x")
            )
        assert [v.visit_id for v in graph.client_visits("c1")] == [1, 2, 3]

    def test_visit_of_run(self):
        graph = ActionHistoryGraph()
        graph.add_visit(VisitRecord("c1", 4, ts=5, url="/x"))
        run = make_run(1, 10, client="c1", visit=4, request_id=1)
        graph.add_run(run)
        assert graph.visit_of_run(run).visit_id == 4

    def test_visit_of_run_without_browser(self):
        graph = ActionHistoryGraph()
        run = make_run(1, 10)
        graph.add_run(run)
        assert graph.visit_of_run(run) is None


class TestQueryIndex:
    def test_queries_touching_by_key(self):
        graph = ActionHistoryGraph()
        run = make_run(1, 10)
        run.queries = [
            make_query(1, 1, 11, reads=["A"]),
            make_query(2, 1, 12, reads=["B"]),
        ]
        graph.add_run(run)
        hits = graph.queries_touching("pages", {("pages", "title", "A")}, since_ts=0)
        assert [q.qid for q in hits] == [1]

    def test_queries_touching_respects_since_ts(self):
        graph = ActionHistoryGraph()
        run = make_run(1, 10)
        run.queries = [make_query(1, 1, 11, reads=["A"]), make_query(2, 1, 50, reads=["A"])]
        graph.add_run(run)
        hits = graph.queries_touching("pages", {("pages", "title", "A")}, since_ts=20)
        assert [q.qid for q in hits] == [2]

    def test_all_readers_always_candidates(self):
        graph = ActionHistoryGraph()
        run = make_run(1, 10)
        run.queries = [make_query(1, 1, 11, all_reads=True)]
        graph.add_run(run)
        hits = graph.queries_touching("pages", {("pages", "title", "Z")}, since_ts=0)
        assert [q.qid for q in hits] == [1]

    def test_writers_indexed_under_written_partitions(self):
        graph = ActionHistoryGraph()
        run = make_run(1, 10)
        run.queries = [make_query(1, 1, 11, writes=(3,))]
        graph.add_run(run)
        hits = graph.queries_touching("pages", {("pages", "title", "t3")}, since_ts=0)
        assert [q.qid for q in hits] == [1]

    def test_whole_table_scan(self):
        graph = ActionHistoryGraph()
        run = make_run(1, 10)
        run.queries = [make_query(1, 1, 11, reads=["A"]), make_query(2, 1, 12, reads=["B"])]
        graph.add_run(run)
        hits = graph.queries_touching("pages", set(), since_ts=0, whole_table=True)
        assert len(hits) == 2

    def test_runs_added_after_index_build_are_indexed(self):
        graph = ActionHistoryGraph()
        first = make_run(1, 10)
        first.queries = [make_query(1, 1, 11, reads=["A"])]
        graph.add_run(first)
        graph.queries_touching("pages", {("pages", "title", "A")}, 0)  # builds
        second = make_run(2, 20)
        second.queries = [make_query(2, 2, 21, reads=["A"])]
        graph.add_run(second)
        hits = graph.queries_touching("pages", {("pages", "title", "A")}, 0)
        assert [q.qid for q in hits] == [1, 2]

    def test_graph_load_time_accounted(self):
        graph = ActionHistoryGraph()
        run = make_run(1, 10)
        run.queries = [make_query(1, 1, 11, reads=["A"])]
        graph.add_run(run)
        assert graph.graph_load_seconds == 0.0
        graph.queries_touching("pages", {("pages", "title", "A")}, 0)
        assert graph.graph_load_seconds > 0.0


class TestGc:
    def test_gc_drops_old_runs_and_visits(self):
        graph = ActionHistoryGraph()
        graph.add_visit(VisitRecord("c1", 1, ts=5, url="/x"))
        graph.add_run(make_run(1, 5, client="c1", visit=1, request_id=1))
        graph.add_run(make_run(2, 100, client="c1", visit=2, request_id=1))
        graph.add_visit(VisitRecord("c1", 2, ts=100, url="/y"))
        removed = graph.gc(horizon_ts=50)
        assert removed >= 2
        assert 1 not in graph.runs
        assert 2 in graph.runs
        assert ("c1", 1) not in graph.visits
        assert ("c1", 2) in graph.visits

    def test_gc_rebuilds_indexes(self):
        graph = ActionHistoryGraph()
        old = make_run(1, 5)
        old.queries = [make_query(1, 1, 6, reads=["A"])]
        graph.add_run(old)
        graph.queries_touching("pages", {("pages", "title", "A")}, 0)
        graph.gc(horizon_ts=50)
        hits = graph.queries_touching("pages", {("pages", "title", "A")}, 0)
        assert hits == []

    def test_counters(self):
        graph = ActionHistoryGraph()
        run = make_run(1, 10)
        run.queries = [make_query(1, 1, 11), make_query(2, 1, 12)]
        graph.add_run(run)
        graph.add_visit(VisitRecord("c1", 1, ts=5, url="/x"))
        assert graph.n_runs == 1
        assert graph.n_queries == 2
        assert graph.n_visits == 1
