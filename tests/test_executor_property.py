"""Property test: planned/compiled execution == naive reference execution,
and the Python memory engine == the SQLite engine.

A seeded-random workload of schemas, data and statements (normal
execution, repair-generation re-execution, rollback, abort/finalize, GC)
is run against several TimeTravelDB instances: one with the query
planner and read-set cache enabled (the default), one forced onto the
naive tree-walking reference paths, and — in the cross-backend tests —
the same pair again on the SQLite storage engine.  Every observable —
result snapshots, row order, read/written row IDs and partitions, read
sets, error outcomes, and the full version store — must be identical
across every instance.

This is the snapshot-equivalence contract the planner and the storage
engines document in DESIGN.md: dependency tracking and repair escalation
must be byte-for-byte unchanged by plan caching, compiled predicates,
index access paths, SQL lowering, and the storage backend.

The suite honours ``REPRO_DB_BACKEND`` (see ``tests/conftest.py``): the
planned-vs-naive seeds run on whichever engine the environment selects,
so the CI storage matrix exercises both backends with the same tests.
"""

import random

import pytest

from repro.core.clock import LogicalClock
from repro.db.engine import create_database
from repro.db.storage import Column, TableSchema
from repro.ttdb.timetravel import TimeTravelDB

TEXT_POOL = ("x", "y", "z", "wiki", "a%b", "a_b", "", "Home")

#: Seeds for the cross-backend equivalence sweep (satellite of the
#: pluggable-engine work): python ≡ sqlite over 20+ seeded workloads.
CROSS_BACKEND_SEEDS = tuple(range(20))


def make_schema(variant: int) -> TableSchema:
    unique_keys = ((("c",),) if variant % 2 else ())
    row_id_column = "id" if variant % 3 else None
    return TableSchema(
        name="t",
        columns=(
            Column("id", "int"),
            Column("a"),
            Column("b", "int"),
            Column("c"),
            Column("d", "int"),
        ),
        row_id_column=row_id_column,
        partition_columns=("a", "b"),
        unique_keys=unique_keys,
    )


def make_db(variant: int, backend=None, planner: bool = True) -> TimeTravelDB:
    tt = TimeTravelDB(create_database(backend), LogicalClock())
    if not planner:
        tt.executor.use_planner = False
        tt.use_read_set_cache = False
    tt.create_table(make_schema(variant))
    return tt


def make_pair(variant: int):
    """Planned vs naive on the environment-selected backend."""
    return make_db(variant), make_db(variant, planner=False)


class StatementGen:
    def __init__(self, rng: random.Random):
        self.rng = rng
        self.next_id = 1

    def value(self, column: str):
        rng = self.rng
        if rng.random() < 0.15:
            return None
        if column in ("a", "c"):
            return rng.choice(TEXT_POOL)
        return rng.randrange(0, 10)

    def _operand(self, column: str, params):
        """Render a constant either inline or as a ? parameter."""
        value = self.value(column)
        if self.rng.random() < 0.5:
            params.append(value)
            return "?"
        return literal(value)

    def predicate(self, params, depth=0) -> str:
        rng = self.rng
        roll = rng.random()
        if depth < 2 and roll < 0.25:
            op = rng.choice(("AND", "OR"))
            return (
                f"({self.predicate(params, depth + 1)} {op} "
                f"{self.predicate(params, depth + 1)})"
            )
        if depth < 2 and roll < 0.3:
            return f"NOT ({self.predicate(params, depth + 1)})"
        kind = rng.randrange(7)
        if kind == 0:
            column = rng.choice(("a", "b", "c", "d"))
            return f"{column} = {self._operand(column, params)}"
        if kind == 1:
            column = rng.choice(("b", "d"))
            op = rng.choice(("<", "<=", ">", ">="))
            return f"{column} {op} {self._operand(column, params)}"
        if kind == 2:
            column = rng.choice(("b", "d"))
            lo = rng.randrange(0, 8)
            return f"{column} BETWEEN {lo} AND {lo + rng.randrange(0, 4)}"
        if kind == 3:
            column = rng.choice(("a", "c"))
            pattern = rng.choice(("x%", "%b", "a_b", "%", "wiki"))
            negated = "NOT " if rng.random() < 0.3 else ""
            return f"{column} {negated}LIKE '{pattern}'"
        if kind == 4:
            column = rng.choice(("a", "b", "c", "d"))
            negated = "NOT " if rng.random() < 0.3 else ""
            return f"{column} IS {negated}NULL"
        if kind == 5:
            column = rng.choice(("a", "b"))
            items = ", ".join(
                self._operand(column, params) for _ in range(rng.randrange(1, 4))
            )
            negated = "NOT " if rng.random() < 0.3 else ""
            return f"{column} {negated}IN ({items})"
        # Duplicated-parameter equality: exercises the read-set template's
        # safety fallback (title = ? AND title = ? with equal params).
        column = rng.choice(("a", "b"))
        value = self.value(column)
        params.append(value)
        params.append(value if rng.random() < 0.5 else self.value(column))
        return f"({column} = ? AND {column} = ?)"

    def statement(self):
        rng = self.rng
        roll = rng.random()
        params: list = []
        if roll < 0.3:
            columns = ["id", "a", "b", "c", "d"]
            if rng.random() < 0.3:
                columns.remove("id")
            n_rows = rng.randrange(1, 3)
            tuples = []
            for _ in range(n_rows):
                values = []
                for column in columns:
                    if column == "id":
                        values.append(str(self.next_id))
                        self.next_id += 1
                    else:
                        values.append(self._operand(column, params))
                tuples.append("(" + ", ".join(values) + ")")
            sql = (
                f"INSERT INTO t ({', '.join(columns)}) VALUES {', '.join(tuples)}"
            )
            return sql, params
        if roll < 0.65:
            if rng.random() < 0.2:
                agg = rng.choice(
                    ("COUNT(*)", "SUM(b)", "MAX(d)", "MIN(b)", "AVG(d)", "COUNT(c)")
                )
                items = agg
            elif rng.random() < 0.5:
                items = "*"
            else:
                cols = rng.sample(("a", "b", "c", "d"), rng.randrange(1, 4))
                items = ", ".join(cols)
            distinct = "DISTINCT " if rng.random() < 0.2 and items != "*" else ""
            sql = f"SELECT {distinct}{items} FROM t"
            if rng.random() < 0.75:
                sql += f" WHERE {self.predicate(params)}"
            if "(" not in items.split(",")[0] and rng.random() < 0.5:
                column = rng.choice(("a", "b", "c", "d"))
                direction = " DESC" if rng.random() < 0.4 else ""
                sql += f" ORDER BY {column}{direction}"
                if rng.random() < 0.5:
                    sql += f" LIMIT {rng.randrange(0, 6)}"
                    if rng.random() < 0.4:
                        sql += f" OFFSET {rng.randrange(0, 3)}"
            return sql, params
        if roll < 0.88:
            assigns = []
            for column in self.rng.sample(("a", "b", "c", "d"), rng.randrange(1, 3)):
                if column in ("b", "d") and rng.random() < 0.4:
                    assigns.append(f"{column} = {column} + 1")
                else:
                    assigns.append(f"{column} = {self._operand(column, params)}")
            sql = f"UPDATE t SET {', '.join(assigns)}"
            if rng.random() < 0.85:
                sql += f" WHERE {self.predicate(params)}"
            return sql, params
        sql = "DELETE FROM t"
        if rng.random() < 0.9:
            sql += f" WHERE {self.predicate(params)}"
        return sql, params


def literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def dump(tt: TimeTravelDB):
    out = {}
    for name, table in tt.database.tables.items():
        rows = sorted(
            (
                (
                    v.row_id,
                    tuple(sorted(v.data.items(), key=lambda kv: kv[0])),
                    v.start_ts,
                    v.end_ts,
                    v.start_gen,
                    v.end_gen,
                )
                for v in table.all_versions()
            ),
            key=repr,
        )
        out[name] = rows
    return out


def assert_same_result(a, b, sql, params):
    context = f"{sql!r} {params!r}"
    assert a.ts == b.ts, context
    assert a.gen == b.gen, context
    assert a.result.snapshot() == b.result.snapshot(), context
    assert a.result.rows == b.result.rows, context
    assert a.result.rowcount == b.result.rowcount, context
    assert a.result.ok == b.result.ok, context
    assert a.result.error == b.result.error, context
    assert a.result.read_row_ids == b.result.read_row_ids, context
    assert a.result.affected_row_ids == b.result.affected_row_ids, context
    assert a.result.inserted_row_ids == b.result.inserted_row_ids, context
    assert a.result.written_partitions == b.result.written_partitions, context
    assert a.read_set.to_dict() == b.read_set.to_dict(), context
    assert a.full_table_write == b.full_table_write, context


def assert_same_dumps(dbs, context):
    reference = dump(dbs[0])
    for other in dbs[1:]:
        assert dump(other) == reference, context


def run_workload(seed: int, n_statements: int = 220, dbs=None):
    """Drive the same seeded workload through every instance in ``dbs``
    (default: planned-vs-naive on the environment backend) and assert
    all observables match the first instance's."""
    rng = random.Random(seed)
    if dbs is None:
        dbs = list(make_pair(variant=seed))
    reference = dbs[0]
    gen = StatementGen(random.Random(seed * 31 + 1))
    executed = []

    for step in range(n_statements):
        sql, params = gen.statement()
        results = [tt.execute(sql, params) for tt in dbs]
        for other in results[1:]:
            assert_same_result(results[0], other, sql, params)
        executed.append((sql, tuple(params), results[0].ts))
        if step % 25 == 24:
            assert_same_dumps(dbs, sql)

    # -- repair-generation phase ------------------------------------------------
    if executed:
        for tt in dbs:
            tt.begin_repair()
        history = rng.sample(executed, min(10, len(executed)))
        for sql, params, ts in history:
            if sql.startswith("INSERT"):
                continue
            results = [tt.execute_at(sql, params, ts) for tt in dbs]
            for other in results[1:]:
                assert_same_result(results[0], other, sql, params)
            if not sql.startswith("SELECT"):
                matched = reference.matching_row_ids(sql, params, max(ts - 1, 0))
                for other in dbs[1:]:
                    assert other.matching_row_ids(sql, params, max(ts - 1, 0)) == (
                        matched
                    )
        for _ in range(5):
            row_id = rng.randrange(1, gen.next_id + 2)
            ts = rng.choice(executed)[2]
            touched = [tt.rollback_row("t", row_id, ts) for tt in dbs]
            for other in touched[1:]:
                assert other == touched[0]
        assert_same_dumps(dbs, "post-rollback")
        if rng.random() < 0.5:
            for tt in dbs:
                tt.abort_repair()
        else:
            for tt in dbs:
                tt.finalize_repair()
        assert_same_dumps(dbs, "post-repair")

    # -- post-repair traffic and GC --------------------------------------------
    for _ in range(30):
        sql, params = gen.statement()
        results = [tt.execute(sql, params) for tt in dbs]
        for other in results[1:]:
            assert_same_result(results[0], other, sql, params)
    horizon = reference.clock.now() // 2
    collected = [tt.gc(horizon) for tt in dbs]
    for other in collected[1:]:
        assert other == collected[0]
    assert_same_dumps(dbs, "post-gc")

    # one more round after GC: purged indexes must still find everything
    for _ in range(30):
        sql, params = gen.statement()
        results = [tt.execute(sql, params) for tt in dbs]
        for other in results[1:]:
            assert_same_result(results[0], other, sql, params)
    assert_same_dumps(dbs, "final")
    totals = [tt.total_versions() for tt in dbs]
    for other in totals[1:]:
        assert other == totals[0]


def test_planned_equals_naive_seed_0():
    run_workload(0)


def test_planned_equals_naive_seed_1():
    run_workload(1)


def test_planned_equals_naive_seed_2():
    run_workload(2)


def test_planned_equals_naive_seed_3():
    run_workload(3, n_statements=150)


def test_planned_equals_naive_seed_4():
    run_workload(4, n_statements=150)


# -- cross-backend equivalence ------------------------------------------------
#
# Three instances run the identical workload: the planned executor on the
# Python memory engine (the reference), the planned executor on the
# SQLite engine (exercising SQL lowering, projection pushdown and ORDER
# BY pushdown), and the naive executor on the SQLite engine (exercising
# the engine's plain fetch paths).  Snapshots, row order, read/written
# row IDs, partitions, error outcomes, version dumps, repair/rollback/
# abort/finalize behaviour and GC counts must all agree.


@pytest.mark.parametrize("seed", CROSS_BACKEND_SEEDS)
def test_python_equals_sqlite(seed):
    dbs = [
        make_db(seed, backend="python"),
        make_db(seed, backend="sqlite"),
        make_db(seed, backend="sqlite", planner=False),
    ]
    run_workload(seed, n_statements=110, dbs=dbs)
