"""Storage-engine seam tests: backend selection, the SQLite engine's
file persistence, SQL-lowering fallbacks on envelope-breaking values,
the DESC collation quirk, engine-portable snapshots, and the SQLite
fault points.

The cross-backend *workload* equivalence lives in
``test_executor_property.py``; this file covers the seams the random
workload cannot reach — values outside the property-test envelope (huge
ints, NaN, bools, mixed-type columns), explicit file-mode reattach, and
the WarpSystem round trip that records the backend choice.
"""

import math

import pytest

from repro.core.clock import LogicalClock
from repro.core.errors import StorageError
from repro.db.engine import create_database, resolve_backend, snapshot_backend
from repro.db.sqlite_engine import SqliteEngine
from repro.db.storage import Column, Database, TableSchema
from repro.faults.plane import FAULT_POINTS, FaultPlane, InjectedIOError
from repro.ttdb.timetravel import TimeTravelDB

SCHEMA = TableSchema(
    name="t",
    columns=(Column("id", "int"), Column("a"), Column("b", "int"), Column("c")),
    row_id_column="id",
    partition_columns=("a",),
    unique_keys=(("c",),),
)


def make_pair():
    """(python, sqlite) TimeTravelDB pair over the same schema."""
    pair = []
    for backend in ("python", "sqlite"):
        tt = TimeTravelDB(create_database(backend), LogicalClock())
        tt.create_table(SCHEMA)
        pair.append(tt)
    return pair


def run_same(pair, sql, params=()):
    """Execute on both backends; assert identical outcome.

    Evaluator errors (cross-rank comparisons, unknown columns) propagate
    as raised exceptions out of ``execute`` — both backends must raise
    the same (type, message).  Snapshots are compared via ``repr`` so
    NaN payloads (where ``nan != nan``) still count as equal.
    """
    results = []
    for tt in pair:
        try:
            results.append(("ok", tt.execute(sql, list(params))))
        except Exception as exc:  # noqa: BLE001 - equivalence check
            results.append(("raise", (type(exc), str(exc))))
    (kind_a, a), (kind_b, b) = results
    context = f"{sql!r} {params!r}"
    assert kind_a == kind_b, f"{context}: {results!r}"
    if kind_a == "raise":
        assert a == b, context
        return None
    assert repr(a.result.snapshot()) == repr(b.result.snapshot()), context
    assert a.result.error == b.result.error, context
    assert a.result.read_row_ids == b.result.read_row_ids, context
    return a


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv("REPRO_DB_BACKEND", raising=False)
        assert resolve_backend() == "python"
        assert isinstance(create_database(), Database)

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_DB_BACKEND", "sqlite")
        assert resolve_backend() == "sqlite"
        assert isinstance(create_database(), SqliteEngine)

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DB_BACKEND", "sqlite")
        assert resolve_backend("python") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(StorageError):
            resolve_backend("oracle")

    def test_snapshot_backend_reads_storage_config(self):
        state = {"storage_config": {"backend": "sqlite"}}
        assert snapshot_backend(state) == "sqlite"
        assert snapshot_backend({}, default="python") == "python"


# ---------------------------------------------------------------------------
# lowering fallbacks: values the shadow columns cannot represent
# ---------------------------------------------------------------------------


class TestLoweringFallbacks:
    def test_huge_int_falls_back_to_python(self):
        pair = make_pair()
        huge = 2**70
        run_same(pair, "INSERT INTO t (id, a, b, c) VALUES (1, 'x', ?, 'k1')", [huge])
        run_same(pair, "INSERT INTO t (id, a, b, c) VALUES (2, 'y', 5, 'k2')")
        run_same(pair, "SELECT * FROM t WHERE b = ?", [huge])
        run_same(pair, "SELECT * FROM t WHERE b > 4")
        run_same(pair, "SELECT * FROM t WHERE b < ?", [huge + 1])

    def test_nan_column_falls_back(self):
        pair = make_pair()
        run_same(pair, "INSERT INTO t (id, a, b, c) VALUES (1, 'x', ?, 'k1')",
                 [float("nan")])
        run_same(pair, "INSERT INTO t (id, a, b, c) VALUES (2, 'y', 2.5, 'k2')")
        run_same(pair, "SELECT * FROM t WHERE b > 1")
        run_same(pair, "SELECT * FROM t WHERE b IS NULL")
        run_same(pair, "SELECT * FROM t ORDER BY b DESC")

    def test_bool_values_compare_like_python(self):
        pair = make_pair()
        run_same(pair, "INSERT INTO t (id, a, b, c) VALUES (1, 'x', ?, 'k1')", [True])
        run_same(pair, "INSERT INTO t (id, a, b, c) VALUES (2, 'y', 1, 'k2')")
        run_same(pair, "SELECT * FROM t WHERE b = 1")
        run_same(pair, "SELECT * FROM t WHERE b = ?", [True])
        # LIKE coerces via str(): str(True) != str(1), unlike the shadow ints.
        run_same(pair, "SELECT * FROM t WHERE b LIKE '1'")

    def test_mixed_type_column_ranks(self):
        pair = make_pair()
        run_same(pair, "INSERT INTO t (id, a, b, c) VALUES (1, 'x', 3, 'k1')")
        run_same(pair, "INSERT INTO t (id, a, b, c) VALUES (2, 'word', 4, 'k2')")
        # A string/int cross-rank comparison raises on mismatched rows in
        # the evaluator — both backends must surface the identical error.
        run_same(pair, "SELECT * FROM t WHERE a > 'm'")
        run_same(pair, "SELECT * FROM t WHERE a < 5")
        run_same(pair, "UPDATE t SET b = 9 WHERE a > 'm'")

    def test_empty_and_null_in_lists(self):
        pair = make_pair()
        run_same(pair, "INSERT INTO t (id, a, b, c) VALUES (1, NULL, 2, 'k1')")
        run_same(pair, "SELECT * FROM t WHERE a IN ('x')")
        run_same(pair, "SELECT * FROM t WHERE a NOT IN ('x', 'y')")
        run_same(pair, "SELECT * FROM t WHERE b IN (2, 3)")
        run_same(pair, "SELECT * FROM t WHERE a IS NULL")

    def test_unknown_column_errors_match(self):
        pair = make_pair()
        run_same(pair, "INSERT INTO t (id, a, b, c) VALUES (1, 'x', 2, 'k1')")
        run_same(pair, "SELECT * FROM t WHERE nope = 1")
        run_same(pair, "SELECT * FROM t WHERE a = 'x' AND nope = 1")

    def test_like_patterns(self):
        pair = make_pair()
        for i, text in enumerate(("x%y", "a_b", "", "wiki", "Wiki", "a\nb")):
            run_same(
                pair,
                "INSERT INTO t (id, a, b, c) VALUES (?, ?, 1, ?)",
                [i + 1, text, f"k{i}"],
            )
        for pattern in ("x%", "%b", "a_b", "%", "_", "Wiki", "a%b"):
            run_same(pair, "SELECT * FROM t WHERE a LIKE ?", [pattern])
            run_same(pair, f"SELECT * FROM t WHERE a NOT LIKE '{pattern}'")


# ---------------------------------------------------------------------------
# ORDER BY pushdown: the storage layer's DESC string collation quirk
# ---------------------------------------------------------------------------


class TestDescCollation:
    def test_desc_string_order_matches_memory_engine(self):
        pair = make_pair()
        words = ["", "z", "za", "zb", "a", "ab", "Home", "home", "a%b", "éclair"]
        for i, word in enumerate(words):
            run_same(
                pair,
                "INSERT INTO t (id, a, b, c) VALUES (?, ?, ?, ?)",
                [i + 1, word, i, f"k{i}"],
            )
        run_same(pair, "SELECT a FROM t ORDER BY a DESC")
        run_same(pair, "SELECT a FROM t ORDER BY a")
        run_same(pair, "SELECT a, b FROM t ORDER BY a DESC LIMIT 4")
        # Mixed ints/strings/NULLs under DESC: rank CASE + collation path.
        run_same(pair, "UPDATE t SET a = 7 WHERE b = 3")
        run_same(pair, "UPDATE t SET a = NULL WHERE b = 5")
        run_same(pair, "SELECT a FROM t ORDER BY a DESC")


# ---------------------------------------------------------------------------
# file persistence / reattach
# ---------------------------------------------------------------------------


class TestFilePersistence:
    def test_checkpoint_reattach_round_trip(self, tmp_path):
        path = str(tmp_path / "store")
        engine = create_database("sqlite", path=path)
        tt = TimeTravelDB(engine, LogicalClock())
        tt.create_table(SCHEMA)
        tt.execute("INSERT INTO t (id, a, b, c) VALUES (1, 'x', ?, 'k1')", [2**70])
        tt.execute("INSERT INTO t (id, a, b, c) VALUES (2, 'y', 5, 'k2')")
        tt.execute("UPDATE t SET b = 6 WHERE id = 2")
        engine.close()

        again = SqliteEngine(path=path)
        assert again.has_table("t")
        # Two inserts plus one update-supersede (close old, add new) = 3.
        table = again.table("t")
        assert table.version_count == 3
        assert table._next_row_id == 3
        # Lowering flags survived: the huge-int column must still refuse
        # exact lowering (fall back to the Python predicate).
        assert table._states["b"].lossy
        tt2 = TimeTravelDB(again, LogicalClock())
        tt2.clock.advance(100)
        rows = tt2.execute("SELECT id, b FROM t ORDER BY id").result.rows
        assert [row["id"] for row in rows] == [1, 2]
        assert rows[0]["b"] == 2**70 and rows[1]["b"] == 6

    def test_fresh_engine_uses_temp_dir_and_cleans_up(self):
        engine = create_database("sqlite")
        directory = engine.path
        import os

        assert os.path.isdir(directory)
        engine._finalizer()
        assert not os.path.exists(directory)

    def test_persistent_dir_survives_finalizer(self, tmp_path):
        path = str(tmp_path / "keep")
        engine = create_database("sqlite", path=path)
        engine.close()
        engine._finalizer()
        import os

        assert os.path.isdir(path)


# ---------------------------------------------------------------------------
# engine-portable snapshots
# ---------------------------------------------------------------------------


def _dump(db):
    out = {}
    for name, table in db.tables.items():
        out[name] = sorted(
            (
                (
                    v.row_id,
                    tuple(sorted(v.data.items())),
                    v.start_ts,
                    v.end_ts,
                    v.start_gen,
                    v.end_gen,
                )
                for v in table.all_versions()
            ),
            key=repr,
        )
    return out


class TestPortability:
    def test_python_snapshot_restores_into_sqlite_and_back(self):
        py, sq = make_pair()
        for tt in (py, sq):
            tt.execute("INSERT INTO t (id, a, b, c) VALUES (1, 'x', 2, 'k1')")
            tt.execute("INSERT INTO t (id, a, b, c) VALUES (2, 'y', 3, 'k2')")
            tt.execute("UPDATE t SET b = 4 WHERE id = 1")
            tt.execute("DELETE FROM t WHERE id = 2")
        image = py.database.to_dict()
        target = create_database("sqlite")
        target.restore(image)
        assert _dump(target) == _dump(py.database)

        back = create_database("python")
        back.restore(sq.database.to_dict())
        assert _dump(back) == _dump(sq.database)
        assert back.table("t")._next_row_id == sq.database.table("t")._next_row_id


# ---------------------------------------------------------------------------
# fault points at the SQLite I/O boundary
# ---------------------------------------------------------------------------


class TestSqliteFaultPoints:
    def test_points_are_cataloged(self):
        assert "sqlite.exec" in FAULT_POINTS
        assert "sqlite.commit" in FAULT_POINTS

    def test_exec_fault_surfaces_with_op_context(self):
        plane = FaultPlane()
        engine = create_database("sqlite", fault_plane=plane)
        tt = TimeTravelDB(engine, LogicalClock())
        tt.create_table(SCHEMA)
        plane.arm(point="sqlite.exec", kind="io", times=1)
        with pytest.raises(InjectedIOError):
            tt.execute("INSERT INTO t (id, a, b, c) VALUES (1, 'x', 2, 'k1')")
        assert plane.last_fault["point"] == "sqlite.exec"
        # The INSERT's first engine statement is the unique-key conflict
        # probe, so the recorded op is whichever statement ran first.
        assert plane.last_fault["op"] in ("SELECT", "INSERT")
        # The rule exhausted — the engine serves again.
        result = tt.execute("INSERT INTO t (id, a, b, c) VALUES (1, 'x', 2, 'k1')")
        assert result.result.ok

    def test_commit_fault_fires_on_checkpoint(self):
        plane = FaultPlane()
        engine = create_database("sqlite", fault_plane=plane)
        tt = TimeTravelDB(engine, LogicalClock())
        tt.create_table(SCHEMA)
        plane.arm(point="sqlite.commit", kind="io", times=1)
        with pytest.raises(InjectedIOError):
            engine.checkpoint()
        engine.checkpoint()  # cleared


# ---------------------------------------------------------------------------
# WarpSystem records the backend choice
# ---------------------------------------------------------------------------


class TestWarpBackend:
    def test_save_load_round_trip_keeps_backend(self, tmp_path):
        from repro.apps.wiki import WikiApp
        from repro.warp import WarpSystem

        warp = WarpSystem(db_backend="sqlite")
        assert warp.database.backend == "sqlite"
        wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
        wiki.install()
        wiki.seed_user("alice", "pw")
        wiki.seed_page("Home", "hello from sqlite", "alice")
        path = str(tmp_path / "snap.json")
        warp.save(path)

        reloaded = WarpSystem.load(path)
        assert reloaded.db_backend == "sqlite"
        assert reloaded.database.backend == "sqlite"
        wiki2 = WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server)
        wiki2.register_code()
        assert "hello from sqlite" in wiki2.page_text("Home")

    def test_default_backend_recorded_as_python(self, tmp_path, monkeypatch):
        from repro.apps.wiki import WikiApp
        from repro.warp import WarpSystem

        monkeypatch.delenv("REPRO_DB_BACKEND", raising=False)
        warp = WarpSystem()
        WikiApp(warp.ttdb, warp.scripts, warp.server).install()
        path = str(tmp_path / "snap.json")
        warp.save(path)
        reloaded = WarpSystem.load(path)
        assert reloaded.database.backend == "python"
