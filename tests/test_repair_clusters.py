"""Dependency-clustered repair groups and the repair-scoped conflict
lifecycle.

Covers the three bugfixes of this change (each was observable on main):

* a *stale* conflict queued by an earlier repair for a user who has not
  logged in yet must neither abort a later unrelated user undo nor be
  silently resolved by that undo's abort;
* an aborted user undo must report the conflicts that caused the abort
  (``result.conflicts`` / ``stats.conflicts``), not an empty list;
* a script that raises mid-repair must not leave its run permanently
  "done" over a half-mutated generation, and a queued cookie
  invalidation must survive a script error during normal serving;

plus the clustering machinery itself: component discovery over the
partition-touch index, group-scoped repair on the multi-tenant workload,
and the equivalence property — clustered repair (sequential and parallel)
is observably identical to the monolithic reference worklist.
"""

import random

import pytest

from repro.apps.wiki import WikiApp
from repro.http.message import HttpRequest
from repro.repair.clusters import ClusteringFutile, compute_repair_groups
from repro.warp import WarpSystem
from repro.workload.scenarios import (
    WIKI,
    WikiDeployment,
    run_multi_tenant_scenario,
)

# ---------------------------------------------------------------------------
# satellite 1: repair-scoped conflict lifecycle
# ---------------------------------------------------------------------------


def _entangle(deployment, user_a, user_b, page="Projects"):
    """user_a edits a shared page; user_b edits that content, so undoing
    user_a's visit conflicts with user_b's replay.  Returns a's visit."""
    deployment.edit_page(user_a, page, "CONTENT FROM A\nsecond line")
    visit_a = deployment.browser(user_a).current.parent_visit
    browser_b = deployment.browser(user_b)
    visit = browser_b.open(f"{WIKI}/edit.php?title={page}")
    current = visit.document.select("textarea").value
    browser_b.type_into(
        "textarea", current.replace("CONTENT FROM A", "CONTENT FROM A (better)")
    )
    browser_b.click("input[name=save]")
    return visit_a


@pytest.fixture
def deployment():
    d = WikiDeployment(n_users=4)
    for user in d.users:
        d.login(user)
    return d


class TestStaleConflictScoping:
    def test_stale_conflict_does_not_abort_unrelated_user_undo(self, deployment):
        """Repair 1 (admin) leaves a conflict pending for user1, who never
        logs in.  Repair 2 — user3 undoing their own isolated edit — used
        to abort because the abort check looked at *all* pending conflicts."""
        user_a, user_b, bystander = (
            deployment.users[0],
            deployment.users[1],
            deployment.users[3],
        )
        visit_a = _entangle(deployment, user_a, user_b)
        first = deployment.warp.cancel_visit(
            deployment.client_id(user_a), visit_a, initiated_by_admin=True
        )
        stale = deployment.warp.conflicts.pending(deployment.client_id(user_b))
        assert stale, "admin undo should have queued a conflict for user_b"

        deployment.append_to_page(bystander, f"{bystander}_notes", "\noops")
        form_visit = deployment.browser(bystander).current.parent_visit
        result = deployment.warp.cancel_visit(
            deployment.client_id(bystander), form_visit, initiated_by_admin=False
        )
        assert result.ok and not result.aborted
        assert "oops" not in deployment.wiki.page_text(f"{bystander}_notes")
        # The unrelated undo neither resolved nor counted the stale conflict.
        assert deployment.warp.conflicts.pending(deployment.client_id(user_b)) == stale
        assert result.stats.conflicts == 0
        assert result.conflicts == []

    def test_aborted_undo_keeps_stale_conflicts_pending(self, deployment):
        """An aborting user undo resolves only its *own* conflicts; a stale
        conflict for a user who has not logged in yet must survive."""
        user_a, user_b = deployment.users[0], deployment.users[1]
        user_c, user_d = deployment.users[2], deployment.users[3]
        visit_a = _entangle(deployment, user_a, user_b)
        deployment.warp.cancel_visit(
            deployment.client_id(user_a), visit_a, initiated_by_admin=True
        )
        stale = deployment.warp.conflicts.pending(deployment.client_id(user_b))
        assert stale

        visit_c = _entangle(deployment, user_c, user_d, page="Standup")
        result = deployment.warp.cancel_visit(
            deployment.client_id(user_c), visit_c, initiated_by_admin=False
        )
        assert result.aborted
        # The stale conflict is untouched; the aborted repair's own conflict
        # was resolved (it never happened).
        assert deployment.warp.conflicts.pending(deployment.client_id(user_b)) == stale
        assert not deployment.warp.conflicts.pending(deployment.client_id(user_d))

    def test_stale_conflict_for_same_visit_does_not_mask_new_one(self, deployment):
        """A stale conflict from an earlier repair for the same (client,
        visit) must not swallow a genuinely new conflict: the new one has
        to drive this repair's abort check and result."""
        from repro.repair.conflicts import Conflict

        user_a, user_b = deployment.users[0], deployment.users[1]
        visit_a = _entangle(deployment, user_a, user_b)
        # B's conflicting visit will be the edit form whose input replays.
        visit_b = deployment.browser(user_b).current.parent_visit
        # An earlier repair (e.g. before a restart) left a conflict pending
        # for exactly that (client, visit); B never logged in to resolve it.
        stale = Conflict(
            client_id=deployment.client_id(user_b),
            visit_id=visit_b,
            url="/edit.php",
            reason="left by an earlier repair",
        )
        deployment.warp.conflicts.add(stale)
        result = deployment.warp.cancel_visit(
            deployment.client_id(user_a), visit_a, initiated_by_admin=False
        )
        assert result.aborted, "the new conflict must abort the user undo"
        assert result.conflicts and all(c is not stale for c in result.conflicts)
        assert {c.client_id for c in result.conflicts} == {
            deployment.client_id(user_b)
        }
        # The stale conflict is still pending; this repair's own conflict
        # was resolved by the abort.
        assert deployment.warp.conflicts.pending(
            deployment.client_id(user_b)
        ) == [stale]

    def test_resolve_by_cancel_clears_all_conflicts_of_the_visit(self, deployment):
        """Canceling a conflicted visit moots every conflict queued against
        it, even when two repairs each reported one."""
        user_a, user_b = deployment.users[0], deployment.users[1]
        visit_a = _entangle(deployment, user_a, user_b)
        deployment.warp.cancel_visit(
            deployment.client_id(user_a), visit_a, initiated_by_admin=True
        )
        conflicts = deployment.warp.conflicts.pending(deployment.client_id(user_b))
        assert conflicts
        deployment.warp.resolve_conflict_by_cancel(conflicts[0])
        assert not deployment.warp.conflicts.pending(deployment.client_id(user_b))

    def test_aborted_undo_reports_its_conflicts(self, deployment):
        """``_result`` after an abort used to report the *post-resolution*
        pending set: zero conflicts for a repair that aborted because of
        them."""
        user_a, user_b = deployment.users[0], deployment.users[1]
        visit_a = _entangle(deployment, user_a, user_b)
        result = deployment.warp.cancel_visit(
            deployment.client_id(user_a), visit_a, initiated_by_admin=False
        )
        assert result.aborted
        assert result.conflicts, "the conflicts that caused the abort must be reported"
        assert result.stats.conflicts == len(result.conflicts)
        assert {c.client_id for c in result.conflicts} == {
            deployment.client_id(user_b)
        }
        # ...but they are resolved in the queue: the repair never happened.
        assert not deployment.warp.conflicts.pending()


# ---------------------------------------------------------------------------
# satellite 2: a script that raises mid-repair
# ---------------------------------------------------------------------------


@pytest.fixture
def warp():
    system = WarpSystem(origin=WIKI)
    wiki = WikiApp(system.ttdb, system.scripts, system.server)
    wiki.install()
    wiki.seed_user("alice", "pw")
    wiki.seed_page("P", "original", owner="alice")
    system._wiki = wiki
    return system


def _edit_without_browser_log(warp, text):
    warp.ttdb.execute(
        "INSERT INTO sessions (sess_token, user_name) VALUES (?, ?)",
        ("tok-alice", "alice"),
    )
    return warp.server.handle(
        HttpRequest(
            "POST",
            "/edit.php",
            params={"title": "P", "wpTextbox": text},
            cookies={"sess": "tok-alice"},
        )
    )


class TestRaisingScriptMidRepair:
    def test_run_not_marked_done_and_abort_restores_state(self, warp):
        _edit_without_browser_log(warp, "edited")
        run = warp.graph.runs_in_order()[-1]

        def exploding(ctx):
            raise RuntimeError("boom mid-repair")

        controller = warp._controller()
        controller._begin()
        warp.scripts.patch("edit.php", {"handle": exploding})
        with pytest.raises(RuntimeError, match="boom mid-repair"):
            controller._reexec_run(run, run.request, conflict_on_change=False)
        # The run is not "done": a retry (or a fresh repair after abort)
        # would still re-execute it.
        assert controller._g.run_state.get(run.run_id) == "failed"
        # The failure surfaced as a conflict for the affected user.
        assert any(
            "raised during repair" in c.reason for c in controller._repair_conflicts()
        )
        # The phase-timer stack unwound cleanly.
        assert controller.stats.timer._stack == []
        # Abort restores the pre-repair world.
        controller.ttdb.abort_repair()
        assert warp._wiki.page_text("P") == "edited"

    def test_whole_repair_raises_and_is_abortable(self, warp):
        _edit_without_browser_log(warp, "edited")

        def exploding(ctx):
            raise RuntimeError("patched script is broken")

        with pytest.raises(RuntimeError, match="patched script is broken"):
            warp.retroactive_patch("edit.php", {"handle": exploding})
        # The failed repair aborted its generation and unwound the server
        # flags: live state untouched, traffic served normally, and a
        # retry with fixed code simply works.
        assert not warp.server.repair_active
        assert not warp.server.suspended
        assert warp.ttdb.repair_gen is None
        assert not warp.conflicts.pending()
        assert warp._wiki.page_text("P") == "edited"
        from repro.apps.wiki.pages import make_edit

        retry = warp.retroactive_patch("edit.php", make_edit())
        assert retry.ok
        assert warp._wiki.page_text("P") == "edited"


# ---------------------------------------------------------------------------
# satellite 3: cookie invalidation survives a script error
# ---------------------------------------------------------------------------


class TestCookieInvalidationOnError:
    def test_queued_invalidation_survives_script_error(self, warp):
        def exploding(ctx):
            raise RuntimeError("script died")

        warp.scripts.register("broken.php", {"handle": exploding})
        warp.server.route("/broken.php", "broken.php")
        warp.server.cookie_invalidation.add("c1")
        request = HttpRequest(
            "GET",
            "/broken.php",
            cookies={"sess": "stale-token"},
            headers={"X-Warp-Client": "c1", "X-Warp-Visit": "1", "X-Warp-Request": "1"},
        )
        with pytest.raises(RuntimeError, match="script died"):
            warp.server.handle(request)
        # The queued invalidation was not consumed by the failed request.
        assert "c1" in warp.server.cookie_invalidation
        # ...nor by a request that never reaches a script at all.
        response = warp.server.handle(
            HttpRequest("GET", "/no-such-route", cookies={"sess": "stale-token"},
                        headers={"X-Warp-Client": "c1"})
        )
        assert response.status == 404
        assert "c1" in warp.server.cookie_invalidation
        # A successful later request does consume it.
        warp.server.handle(
            HttpRequest(
                "GET",
                "/index.php",
                params={"title": "P"},
                cookies={"sess": "stale-token"},
                headers={
                    "X-Warp-Client": "c1",
                    "X-Warp-Visit": "2",
                    "X-Warp-Request": "1",
                },
            )
        )
        assert "c1" not in warp.server.cookie_invalidation


# ---------------------------------------------------------------------------
# clustering: component discovery and group-scoped repair
# ---------------------------------------------------------------------------


class TestComponentDiscovery:
    def test_tenants_form_independent_components(self):
        outcome = run_multi_tenant_scenario(
            n_tenants=3, users_per_tenant=2, attacked_tenants=1, seed=5
        )
        graph = outcome.warp.graph
        seeds = [run.run_id for run in graph.runs_in_order()]
        groups = compute_repair_groups(graph, run_seeds=seeds)
        # One component per tenant; the attacker joins the attacked tenant.
        assert len(groups) == outcome.n_tenants
        clients_by_group = [group.clients for group in groups]
        attacked_page_clients = {
            f"{user}-browser" for user in outcome.tenant_users[0]
        } | {outcome.attacker_client}
        assert attacked_page_clients in clients_by_group
        # Groups partition the runs: no run in two components.
        all_runs = [rid for group in groups for rid in group.run_ids]
        assert len(all_runs) == len(set(all_runs))

    def test_readers_do_not_merge_through_shared_reads(self):
        """Two tenants whose runs read the same never-written partition
        (e.g. the i18n language row, the acl '*' principal) stay separate."""
        outcome = run_multi_tenant_scenario(
            n_tenants=2, users_per_tenant=1, attacked_tenants=1, seed=6
        )
        graph = outcome.warp.graph
        t0 = graph.client_runs(f"{outcome.tenant_users[0][0]}-browser")
        t1 = graph.client_runs(f"{outcome.tenant_users[1][0]}-browser")
        groups = compute_repair_groups(
            graph, run_seeds=[t0[0].run_id, t1[0].run_id]
        )
        assert len(groups) == 2

    def test_all_reader_merges_with_table_writers(self):
        """A run whose read set is ALL (index.php's sitestats COUNT) is
        soundly pulled into the component of any pagecontent writer."""
        deployment = WikiDeployment(n_users=2)
        user_a, user_b = deployment.users
        deployment.login(user_a)
        deployment.login(user_b)
        deployment.append_to_page(user_a, f"{user_a}_notes", "\nmine")
        deployment.read_page(user_b, "Main_Page")  # ALL-read of pagecontent
        graph = deployment.warp.graph
        seed = graph.client_runs(deployment.client_id(user_a))[-1].run_id
        groups = compute_repair_groups(graph, run_seeds=[seed])
        assert len(groups) == 1
        assert deployment.client_id(user_b) in groups[0].clients

    def test_futility_bailout_when_component_spans_workload(self):
        """When the damage component is about to swallow the workload
        (everyone ALL-reads pagecontent through index.php), discovery bails
        out in O(frontier) instead of walking everything."""
        deployment = WikiDeployment(n_users=3)
        for user in deployment.users:
            deployment.login(user)
            deployment.read_page(user, "Main_Page")  # ALL-read
            deployment.append_to_page(user, f"{user}_notes", "\nhi")
        graph = deployment.warp.graph
        seeds = [run.run_id for run in graph.runs_in_order()]
        with pytest.raises(ClusteringFutile):
            compute_repair_groups(graph, run_seeds=seeds, futility_limit=4)
        # Empty damage is a distinct, non-futile outcome.
        assert compute_repair_groups(graph, run_seeds=[]) == []

    def test_futile_clustering_falls_back_to_monolithic_repair(self):
        """A repair whose component spans the workload still heals fully
        through the global worklist (stats.n_groups stays 0)."""
        from repro.workload.scenarios import run_scenario

        outcome = run_scenario("stored-xss", n_users=6, n_victims=2)
        graph = outcome.warp.graph
        seeds = [run.run_id for run in graph.runs_in_order()]
        # The attack scenario's workload is one component (page views
        # ALL-read pagecontent): at the default limit floor this small
        # deployment clusters fine, but force Table-8 proportions.
        with pytest.raises(ClusteringFutile):
            compute_repair_groups(graph, run_seeds=seeds, futility_limit=6)
        result = outcome.repair()
        assert result.ok
        for victim in outcome.victims:
            assert "xss-attack-line" not in outcome.wiki.page_text(
                f"{victim}_notes"
            )

    def test_touch_index_survives_replace_and_gc(self):
        """The eager touch index stays consistent under replace_run/gc:
        discovery from a fresh seed matches a rebuilt-from-scratch store."""
        outcome = run_multi_tenant_scenario(
            n_tenants=2, users_per_tenant=1, attacked_tenants=1, seed=7
        )
        warp = outcome.warp
        outcome.repair()  # merges replacements through replace_run
        graph = warp.graph
        from repro.store.recordstore import RecordStore

        rebuilt = RecordStore.from_snapshot(graph.to_snapshot())
        for key, runs in graph.touch.key_writers.items():
            assert rebuilt.touch.key_writers.get(key) == runs, key
        for key, runs in rebuilt.touch.key_touchers.items():
            assert graph.touch.key_touchers.get(key) == runs, key
        assert graph.touch.table_writers == rebuilt.touch.table_writers
        assert graph.touch.table_all == rebuilt.touch.table_all


class TestGroupedRepairOnMultiTenant:
    def test_attack_repair_heals_only_attacked_tenant_state(self):
        outcome = run_multi_tenant_scenario(
            n_tenants=4, users_per_tenant=2, attacked_tenants=2, seed=11
        )
        for tenant in outcome.attacked:
            assert "DEFACED" in outcome.wiki.page_text(outcome.tenant_page(tenant))
        result = outcome.repair()
        assert result.ok
        for tenant in range(outcome.n_tenants):
            text = outcome.wiki.page_text(outcome.tenant_page(tenant))
            assert "DEFACED" not in text
        for user, extra in outcome.legit_appends.items():
            tenant = int(user.split("_")[0][1:])
            assert extra in outcome.wiki.page_text(outcome.tenant_page(tenant))

    def test_patch_repair_forms_one_group_per_tenant(self):
        outcome = run_multi_tenant_scenario(
            n_tenants=3, users_per_tenant=2, attacked_tenants=1, seed=12
        )
        result = outcome.repair_by_patch()
        assert result.ok
        assert result.stats.n_groups == 3
        assert len(result.stats.groups) == 3
        folded = sum(row["runs_reexecuted"] for row in result.stats.groups)
        assert folded == result.stats.runs_reexecuted

    def test_escaped_modification_routes_to_home_group(self):
        """A modification outside the active group's static footprint is
        (a) recorded in every other group's gating state and (b) its
        affected queries are scheduled on their *home* group's worklist —
        never evaluated in a foreign group's context."""
        outcome = run_multi_tenant_scenario(
            n_tenants=2, users_per_tenant=1, attacked_tenants=1, seed=21
        )
        warp = outcome.warp
        controller = warp._controller()
        controller._begin()
        seeds = [run.run_id for run in warp.graph.runs_in_order()]
        groups = controller._plan_groups(run_seeds=seeds)
        assert len(groups) == 2
        g_a, g_b = groups
        foreign_page = outcome.tenant_page(1)
        foreign_key = ("pagecontent", "title", foreign_page)
        assert foreign_key not in g_a.covered_keys
        assert foreign_key in g_b.covered_keys
        controller._g = g_a
        controller._note_modification("pagecontent", {foreign_key}, ts=1)
        # Routed: the touched queries landed on B's heap, not A's.
        assert not g_a.heap
        assert g_b.heap
        assert all(
            payload.run_id in g_b.run_ids for _, _, _, payload in g_b.heap
        )
        # Broadcast: B's gating state knows about the escaped modification.
        assert g_b.mods.affects_keys("pagecontent", [foreign_key], ts=10)
        assert g_a.escaped_keys == 1
        controller.ttdb.abort_repair()

    def test_retroactive_db_fix_clusters_from_fix_partitions(self):
        outcome = run_multi_tenant_scenario(
            n_tenants=3, users_per_tenant=1, attacked_tenants=1, seed=13
        )
        warp = outcome.warp
        page = outcome.tenant_page(0)
        # Fix "as of" the moment tenant 0's page was created.
        created = next(
            run
            for run in warp.graph.runs_in_order()
            if any(
                query.is_write
                and ("pagecontent", "title", page) in query.written_partitions
                for query in run.queries
            )
        )
        result = warp.retroactive_db_fix(
            "UPDATE pagecontent SET old_text = ? WHERE title = ?",
            ("rewritten from the past", page),
            ts=created.ts_end + 1,
        )
        assert result.ok
        assert result.stats.n_groups == 1
        assert "rewritten from the past" in outcome.wiki.page_text(page)
        # The untouched tenants' pages kept their full edit history.
        for tenant in (1, 2):
            assert "post-" in outcome.wiki.page_text(outcome.tenant_page(tenant))


# ---------------------------------------------------------------------------
# property: clustered repair ≡ monolithic repair
# ---------------------------------------------------------------------------


def _canonical_graph(graph):
    """Graph snapshot with qids renumbered in record order: re-execution
    allocates fresh qids in processing order, which is the one place group
    scheduling may legitimately differ from the monolithic worklist."""
    snapshot = graph.to_snapshot()
    mapping = {}
    for run in snapshot["runs"]:
        for query in run["queries"]:
            mapping.setdefault(query["qid"], len(mapping) + 1)
            query["qid"] = mapping[query["qid"]]
    return snapshot


def _stage(seed, rng_shape):
    return run_multi_tenant_scenario(
        n_tenants=rng_shape["tenants"],
        users_per_tenant=rng_shape["users"],
        attacked_tenants=rng_shape["attacked"],
        edits_per_user=rng_shape["edits"],
        seed=seed,
    )


def _run_repair(outcome, mode, kind):
    outcome.warp.cluster_mode = mode
    result = outcome.repair() if kind == "cancel" else outcome.repair_by_patch()
    state = {
        "db": outcome.warp.database.to_dict(),
        "graph": _canonical_graph(outcome.warp.graph),
        "counts": (
            result.stats.visits_reexecuted,
            result.stats.runs_reexecuted,
            result.stats.queries_reexecuted,
            result.stats.runs_canceled,
            result.stats.conflicts,
        ),
    }
    return result, state


@pytest.mark.parametrize("seed", range(8))
def test_clustered_repair_identical_to_monolithic(seed):
    rng = random.Random(seed * 7919 + 13)
    shape = {
        "tenants": rng.randint(2, 4),
        "users": rng.randint(1, 2),
        "edits": rng.randint(1, 2),
    }
    shape["attacked"] = rng.randint(1, shape["tenants"])
    kind = rng.choice(["cancel", "patch"])
    modes = ["off", "sequential", "parallel"]

    states = {}
    results = {}
    for mode in modes:
        outcome = _stage(seed, shape)
        results[mode], states[mode] = _run_repair(outcome, mode, kind)

    assert results["sequential"].stats.n_groups >= 1
    # The equivalence claim is asserted on escape-free workloads (see
    # DESIGN.md: escapes may reorder re-evaluation of already-done runs).
    for mode in modes:
        assert results[mode].stats.escaped_keys == 0
    for mode in ("sequential", "parallel"):
        assert states[mode]["counts"] == states["off"]["counts"], (
            f"{kind} repair ({shape}): {mode} re-execution counts diverged"
        )
        assert states[mode]["db"] == states["off"]["db"], (
            f"{kind} repair ({shape}): {mode} final version store diverged"
        )
        assert states[mode]["graph"] == states["off"]["graph"], (
            f"{kind} repair ({shape}): {mode} repaired graph diverged"
        )
