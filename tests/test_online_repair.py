"""Online repair under live load: the partition-scoped write gate.

Covers the tentpole and its satellites:

* footprint learning and gate classification (served vs queued);
* a mid-repair request to an untouched partition is served, one to a
  repaired partition is queued (202 + ticket) and visibly re-applied
  exactly once after the generation switch;
* a queued request whose script raises is consumed as a 500 and does not
  wedge the finalize path;
* ``pending_during_repair`` re-application follows the arrival-ts order
  contract regardless of list order;
* the deterministic interleaving property: online repair with live
  traffic produces the same final version store, graph records
  (canonically renumbered), re-execution counts and response bytes as
  quiesced repair followed by the same traffic in the induced serial
  order — across ≥20 seeds;
* a real-thread stress smoke: 8 threads hammering the deployment during
  a repair, with every write applied exactly once and no 503s.
"""

import random
import threading
import time

import pytest

from repro.http.message import HttpRequest
from repro.repair.gate import RepairGate
from repro.workload.loadgen import LoadClient, LoadGen, make_load_clients
from repro.workload.scenarios import run_multi_tenant_scenario

from schedutil import CoopSchedule, scripted_ops

# ---------------------------------------------------------------------------
# staging
# ---------------------------------------------------------------------------


def _stage(seed, n_tenants=3, users=1, edits=1, n_load_clients=None, **warp_kwargs):
    """A multi-tenant deployment plus logged-in load clients (one per
    tenant by default, pinned to that tenant's page)."""
    outcome = run_multi_tenant_scenario(
        n_tenants=n_tenants,
        users_per_tenant=users,
        attacked_tenants=1,
        edits_per_user=edits,
        seed=seed,
        **warp_kwargs,
    )
    warp = outcome.warp
    names = [f"lg{i}" for i in range(n_load_clients or n_tenants)]
    clients_list = make_load_clients(outcome.wiki, warp.server, names)
    clients = {c.name: c for c in clients_list}
    cookies = {c.name: dict(c.cookies) for c in clients_list}
    pages = [outcome.tenant_page(t) for t in range(n_tenants)]
    return outcome, clients, cookies, pages, names


def _request(name, cookies, page, append=None, marker=""):
    if append is not None:
        return HttpRequest(
            "POST",
            "/edit.php",
            params={"title": page, "append": append},
            cookies=dict(cookies[name]),
            headers={"X-Warp-Client": f"{name}-load"},
        )
    return HttpRequest(
        "GET",
        "/edit.php",
        params={"title": page, "marker": marker},
        cookies=dict(cookies[name]),
        headers={"X-Warp-Client": f"{name}-load"},
    )


# ---------------------------------------------------------------------------
# gate classification regressions
# ---------------------------------------------------------------------------


class TestGateClassification:
    def test_untouched_partition_served_during_repair(self):
        outcome, clients, cookies, pages, names = _stage(seed=11)
        warp = outcome.warp
        warp.enable_online_repair()
        statuses = []

        def hook():
            if len(statuses) < 3:
                response = clients["lg1"].send(
                    _request("lg1", cookies, pages[1], marker=f"v{len(statuses)}")
                )
                statuses.append(response.status)

        controller = warp._controller()
        controller.step_hook = hook
        result = controller.cancel_client(outcome.attacker_client)
        assert result.ok
        assert statuses and all(status == 200 for status in statuses)
        assert result.stats.gate["served"] >= len(statuses)

    def test_repaired_partition_queued_then_reapplied_exactly_once(self):
        outcome, clients, cookies, pages, names = _stage(seed=12)
        warp = outcome.warp
        gate = warp.enable_online_repair()
        tickets = []

        def hook():
            if not tickets:
                # The attacked tenant's page is owned by the repair.
                response = clients["lg0"].send(
                    _request("lg0", cookies, pages[0], append="\nqueued-mark.")
                )
                assert response.status == 202
                tickets.append(int(response.headers["X-Warp-Queued"]))

        controller = warp._controller()
        controller.step_hook = hook
        result = controller.cancel_client(outcome.attacker_client)
        assert result.ok and tickets
        # Re-applied exactly once, after the switch, onto the repaired text.
        text = outcome.wiki.page_text(pages[0])
        assert text.count("queued-mark.") == 1
        assert "DEFACED" not in text
        applied = gate.response_for(tickets[0])
        assert applied is not None and applied.status == 200
        assert result.stats.gate["queued"] == 1
        assert result.stats.gate["applied"] == 1
        # The queue is journaled and fully consumed.
        assert warp.graph.store.pending_gate_queue == {}

    def test_queued_script_raise_does_not_wedge_finalize(self):
        outcome, clients, cookies, pages, names = _stage(seed=13)
        warp = outcome.warp
        gate = warp.enable_online_repair()

        def explode(ctx):
            raise RuntimeError("boom at re-application time")

        warp.scripts.register("boom.php", {"handle": explode})
        warp.server.route("/boom.php", "boom.php")
        tickets = []

        def hook():
            if not tickets:
                # Unknown footprint -> conservatively queued.
                boom = clients["lg1"].send(
                    HttpRequest(
                        "GET",
                        "/boom.php",
                        cookies=dict(cookies["lg1"]),
                        headers={"X-Warp-Client": "lg1-load"},
                    )
                )
                assert boom.status == 202
                tickets.append(int(boom.headers["X-Warp-Queued"]))
                # A well-behaved queued request behind the exploding one.
                good = clients["lg0"].send(
                    _request("lg0", cookies, pages[0], append="\nafter-boom.")
                )
                assert good.status == 202
                tickets.append(int(good.headers["X-Warp-Queued"]))

        controller = warp._controller()
        controller.step_hook = hook
        result = controller.cancel_client(outcome.attacker_client)
        assert result.ok, "a raising queued script must not wedge finalize"
        boom_response = gate.response_for(tickets[0])
        assert boom_response.status == 500
        good_response = gate.response_for(tickets[1])
        assert good_response.status == 200
        assert outcome.wiki.page_text(pages[0]).count("after-boom.") == 1
        assert result.stats.gate["apply_errors"] == 1
        assert not gate.active
        # The server keeps serving normally afterwards.
        after = clients["lg1"].send(_request("lg1", cookies, pages[1], marker="post"))
        assert after.status == 200

    def test_second_repair_reports_fresh_gate_counters(self):
        """Gate stats are per-repair: a long-lived deployment's second
        repair must not fold the first one's served/queued counts into its
        RepairResult (regression: GateStats survived across begin())."""
        outcome, clients, cookies, pages, names = _stage(seed=18)
        warp = outcome.warp
        warp.enable_online_repair()

        def hook():
            clients["lg1"].send(_request("lg1", cookies, pages[1], marker="a"))

        controller = warp._controller()
        controller.step_hook = hook
        first = controller.cancel_client(outcome.attacker_client)
        assert first.ok and first.stats.gate["served"] > 0

        # Second repair: a quiet one (no traffic at all).
        victim = outcome.tenant_users[1][0]
        second = warp.cancel_client(f"{victim}-browser")
        assert second.ok
        assert second.stats.gate == {
            "served": 0,
            "queued": 0,
            "applied": 0,
            "apply_errors": 0,
        }

    def test_global_policy_queues_disjoint_requests(self):
        outcome, clients, cookies, pages, names = _stage(seed=14)
        warp = outcome.warp
        warp.enable_online_repair(policy="global")
        statuses = []

        def hook():
            if len(statuses) < 2:
                response = clients["lg1"].send(
                    _request("lg1", cookies, pages[1], marker="g")
                )
                statuses.append(response.status)

        controller = warp._controller()
        controller.step_hook = hook
        result = controller.cancel_client(outcome.attacker_client)
        assert result.ok
        assert statuses and all(status == 202 for status in statuses)
        assert result.stats.gate["served"] == 0
        assert result.stats.gate["applied"] == result.stats.gate["queued"]

    def test_no_footprint_means_conservative(self):
        outcome, clients, cookies, pages, names = _stage(seed=15)
        warp = outcome.warp
        gate = warp.enable_online_repair()
        gate.begin()
        gate.set_scope([])  # empty plan -> own everything
        assert gate._conflict("never-recorded.php", HttpRequest("GET", "/x")) is not None
        gate.active = False

    def test_footprint_template_resolves_wiki_sources(self):
        """The learned edit.php template must resolve: title from the
        request param, the session row from the cookie, the cache key
        affix, and the page's current editor through a probe."""
        outcome, clients, cookies, pages, names = _stage(seed=16)
        warp = outcome.warp
        gate = RepairGate(warp.ttdb, warp.graph)
        predicted = gate.footprints.predict(
            "edit.php", _request("lg1", cookies, pages[1], append="\nx.")
        )
        assert predicted is not None
        read_tables = {table for table, _ in predicted.read_disjuncts}
        assert "pagecontent" in read_tables and "sessions" in read_tables
        assert ("pagecontent", "title", pages[1]) in predicted.write_keys
        # The parser-cache DELETE never matched a row in this staging, so
        # there is no *written* key to learn — but its WHERE clause still
        # resolves through the affix template and gates the partition.
        cache_disjuncts = [
            constraints
            for table, constraints in predicted.read_disjuncts
            if table == "objectcache"
        ]
        assert any(
            ("cache_key", f"page:{pages[1]}") in constraints
            for constraints in cache_disjuncts
        )
        # The probe recovered the page's current editor; the session lookup
        # recovered the load client's user name.
        editors = {
            key[2] for key in predicted.write_keys if key[:2] == ("pagecontent", "editor")
        }
        assert editors, "editor partition keys must be predicted, not dynamic"
        assert ("pagecontent", "editor") not in predicted.dynamic_columns


# ---------------------------------------------------------------------------
# pending_during_repair ordering contract (satellite)
# ---------------------------------------------------------------------------


class TestPendingReapplicationOrder:
    def test_reapplied_in_arrival_ts_order_even_if_list_is_shuffled(self):
        """The §4.3 re-application pass must follow arrival-ts order: the
        list is appended by request threads (and interleaved across groups
        under cluster_mode='parallel'), so list order carries no
        guarantee.  Two appends to one page re-applied out of order would
        resurrect the first append's text over the second's."""
        outcome, clients, cookies, pages, names = _stage(seed=17)
        warp = outcome.warp  # no gate: legacy serve-everything mode
        controller = warp._controller()
        controller._begin()
        try:
            # Damage the attacked tenant's partition so mid-repair edits to
            # it have changed inputs.
            atk_runs = warp.graph.client_runs(outcome.attacker_client)
            controller._plan_groups(run_seeds=[run.run_id for run in atk_runs])
            for run in atk_runs:
                controller.cancel_run(run)
            before = len(warp.graph.runs)
            first = clients["lg0"].send(
                _request("lg0", cookies, pages[0], append="\nfirst.")
            )
            second = clients["lg0"].send(
                _request("lg0", cookies, pages[0], append="\nsecond.")
            )
            assert first.status == 200 and second.status == 200
            assert len(controller.server.pending_during_repair) == 2
            # Adversarial list order (arrival order reversed).
            controller.server.pending_during_repair.reverse()
            reexecuted = []
            original = controller._reexec_run

            def spy(run, request, conflict_on_change):
                reexecuted.append(run.run_id)
                return original(run, request, conflict_on_change)

            controller._reexec_run = spy
            controller._finalize()
        except BaseException:
            controller._unwind_failed_repair()
            raise
        run_ids = sorted(reexecuted)
        assert reexecuted == run_ids, "re-application must follow arrival ts order"
        assert len(reexecuted) == 2
        text = outcome.wiki.page_text(pages[0])
        assert text.index("first.") < text.index("second.")
        assert text.count("first.") == 1 and text.count("second.") == 1


# ---------------------------------------------------------------------------
# the interleaving equivalence property (satellite 1)
# ---------------------------------------------------------------------------


def _canonical_graph(graph):
    """Graph snapshot with run ids and qids renumbered canonically: online
    traffic interleaves id allocation with repair re-execution, so raw ids
    differ from the quiesced reference while the records are identical.
    Runs are matched by (ts_start, script, request key) — unique because
    every live run ticks the clock at least once."""
    snapshot = graph.to_snapshot()
    snapshot["runs"].sort(
        key=lambda run: (run["ts_start"], run["script"], repr(sorted(run["request"].items())))
    )
    run_map, qid_map = {}, {}
    for run in snapshot["runs"]:
        run_map.setdefault(run["run_id"], len(run_map) + 1)
        run["run_id"] = run_map[run["run_id"]]
        for query in run["queries"]:
            qid_map.setdefault(query["qid"], len(qid_map) + 1)
            query["qid"] = qid_map[query["qid"]]
            query["run_id"] = run["run_id"]
    snapshot["visits"].sort(key=lambda v: (v["client_id"], v["visit_id"]))
    return snapshot


def _canonical_db(warp):
    """Version-store dump with generation numbers normalized to *final-
    generation visibility*.  A write served live during repair carries the
    pre-switch generation while the quiesced reference's identical write
    carries the post-switch one; both are visible in the final generation
    and in every later one, which is the observable that matters.  Fenced
    versions (dead in the final generation) normalize to invisible in both
    stores."""
    dump = warp.database.to_dict()
    final_gen = warp.ttdb.current_gen
    for table in dump["tables"]:
        for version in table["versions"]:
            start_gen, end_gen = version[4], version[5]
            version[4] = None
            version[5] = start_gen <= final_gen <= end_gen
        table["versions"].sort(key=repr)
    return dump


def _counts(result):
    return (
        result.stats.visits_reexecuted,
        result.stats.runs_reexecuted,
        result.stats.queries_reexecuted,
        result.stats.runs_canceled,
        result.stats.conflicts,
    )


def _online_run(seed, **warp_kwargs):
    rng = random.Random(seed * 6151 + 7)
    shape = {"n_tenants": rng.randint(2, 4), "users": 1, "edits": rng.randint(1, 2)}
    outcome, clients, cookies, pages, names = _stage(seed, **shape, **warp_kwargs)
    warp = outcome.warp
    warp.enable_online_repair()
    ops = scripted_ops(
        random.Random(seed * 31 + 1), names, pages, n_ops=24, cookies=cookies
    )
    schedule = CoopSchedule(seed * 17 + 3, ops, clients)
    controller = warp._controller()
    controller.step_hook = schedule.hook
    result = controller.cancel_client(outcome.attacker_client)
    schedule.drain()
    responses = {}
    for op in schedule.served:
        responses[op.index] = op.response.key()
    gate = warp.server.gate
    for op in schedule.queued:
        applied = gate.response_for(op.ticket)
        assert applied is not None, "every queued op must be re-applied"
        responses[op.index] = applied.key()
    return shape, outcome, result, schedule, responses


def _reference_run(seed, shape, serialization):
    outcome, clients, cookies, pages, names = _stage(seed, **shape)
    result = outcome.warp.cancel_client(outcome.attacker_client)
    responses = {}
    for op in serialization:
        response = clients[op.client_name].send(op.request.copy())
        responses[op.index] = response.key()
    return outcome, result, responses


@pytest.mark.parametrize("seed", range(20))
def test_online_repair_equivalent_to_quiesced(seed):
    shape, online, online_result, schedule, online_responses = _online_run(seed)
    assert online_result.ok
    # The serialization contract this equivalence is stated over.
    serialization = schedule.serialization()
    assert len(serialization) == 24
    ref, ref_result, ref_responses = _reference_run(seed, shape, serialization)
    assert ref_result.ok

    assert _counts(online_result) == _counts(ref_result), "re-execution counts diverged"
    assert online_responses == ref_responses, "a served response diverged"
    assert _canonical_db(online.warp) == _canonical_db(ref.warp), (
        "final version stores diverged"
    )
    assert _canonical_graph(online.warp.graph) == _canonical_graph(ref.warp.graph), (
        "graph records diverged"
    )
    # Every ticket was consumed exactly once.
    assert online.warp.graph.store.pending_gate_queue == {}
    gate_stats = online_result.stats.gate
    assert gate_stats["applied"] == gate_stats["queued"]


# ---------------------------------------------------------------------------
# cached ≡ uncached under randomized repair interleavings (PR 6 satellite)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(20))
def test_cached_serving_equivalent_to_uncached(seed):
    """The response cache must be invisible to the repair equivalence
    property: the same seeded read/write/repair interleaving, replayed on
    a deployment with the response cache enabled, produces byte-identical
    responses, the same canonical graph records, and the same final
    version store as the cache-disabled run.  A hit draws run/query
    identity in uncached order and a cache flush brackets the repair, so
    even the raw id streams line up — but we compare canonically anyway
    so a future id-allocation change can't silently weaken the test."""
    shape_p, plain, plain_result, plain_sched, plain_responses = _online_run(seed)
    shape_c, cached, cached_result, cached_sched, cached_responses = _online_run(
        seed, response_cache=True
    )
    assert shape_p == shape_c
    assert plain_result.ok and cached_result.ok
    # Same deterministic interleaving on both arms: the cooperative
    # schedule is a pure function of the seed, so op-for-op comparison
    # is meaningful.
    assert [op.index for op in plain_sched.serialization()] == [
        op.index for op in cached_sched.serialization()
    ]
    assert cached_responses == plain_responses, "a cached response diverged"
    assert _counts(cached_result) == _counts(plain_result)
    assert _canonical_db(cached.warp) == _canonical_db(plain.warp), (
        "final version stores diverged with the response cache on"
    )
    assert _canonical_graph(cached.warp.graph) == _canonical_graph(plain.warp.graph), (
        "graph records diverged with the response cache on"
    )
    assert cached.warp.graph.store.pending_gate_queue == {}


def test_cached_interleavings_exercise_the_hit_path():
    """Across the 20 equivalence seeds the cache must actually serve hits
    — otherwise the sweep silently degenerates into 20 uncached runs."""
    hits = 0
    for seed in range(20):
        _, outcome, _, _, _ = _online_run(seed, response_cache=True)
        hits += outcome.warp.response_cache.stats()["hits"]
    assert hits > 0


# ---------------------------------------------------------------------------
# real-thread stress smoke (CI satellite)
# ---------------------------------------------------------------------------


class TestThreadStress:
    def test_eight_threads_during_repair_no_losses_no_503(self):
        outcome = run_multi_tenant_scenario(
            n_tenants=16, users_per_tenant=1, attacked_tenants=1, seed=77
        )
        warp = outcome.warp
        warp.enable_online_repair()
        clients = make_load_clients(
            outcome.wiki, warp.server, [f"lg{i}" for i in range(16)]
        )
        pages = [outcome.tenant_page(t) for t in range(16)]
        gen = LoadGen(clients, pages, seed=99)
        stop = threading.Event()
        box = {}

        def drive():
            box["stats"] = gen.run_threads(8, duration=1.5, stop=stop)

        loader = threading.Thread(target=drive)
        loader.start()
        time.sleep(0.03)
        result = warp.cancel_client(outcome.attacker_client)
        stop.set()
        loader.join()
        stats = box["stats"]
        assert result.ok
        assert stats.total > 0
        assert stats.rejected == 0, "the gate must not 503 anything"
        assert stats.errors == 0
        gate_stats = result.stats.gate
        assert gate_stats["applied"] == gate_stats["queued"]
        # Every write landed exactly once (queued ones after the switch).
        text = {page: outcome.wiki.page_text(page) for page in pages}
        for marker, page in stats.writes:
            assert text[page].count(marker) == 1, (marker, page)
        assert "DEFACED" not in text[pages[0]]
        # The deployment is fully operational post-repair.
        after = clients[3].send(clients[3].request("GET", "/edit.php", {"title": pages[3]}))
        assert after.status == 200
