"""Integration tests for the browser: navigation, cookies, forms, scripts,
frames/X-Frame-Options, and WARP extension recording."""

import pytest

from repro.ahg.graph import ActionHistoryGraph
from repro.browser.browser import Browser, Network
from repro.browser.extension import WarpExtension
from repro.core.clock import LogicalClock
from repro.http.message import HttpRequest, HttpResponse

ORIGIN = "http://site.test"


def make_site(pages, deny_framing=False):
    """A tiny static-ish site; ``pages`` maps path -> body or callable."""
    calls = []

    def handler(request):
        calls.append(request)
        entry = pages.get(request.path)
        if entry is None:
            return HttpResponse(status=404, body="nope")
        body = entry(request) if callable(entry) else entry
        if isinstance(body, HttpResponse):
            response = body
        else:
            response = HttpResponse(body=body)
        if deny_framing:
            response.headers["X-Frame-Options"] = "DENY"
        return response

    network = Network()
    network.register(ORIGIN, handler)
    return network, calls


def make_browser(network, graph=None):
    graph = graph if graph is not None else ActionHistoryGraph()
    ext = WarpExtension("client-abc", graph, LogicalClock())
    return Browser(network, extension=ext), graph


class TestNavigation:
    def test_open_parses_page(self):
        network, _ = make_site({"/": "<html><body><p id='x'>hi</p></body></html>"})
        browser, _ = make_browser(network)
        visit = browser.open(f"{ORIGIN}/")
        assert visit.document.get_element_by_id("x").text_content() == "hi"

    def test_click_link_creates_dependent_visit(self):
        network, _ = make_site(
            {"/": "<body><a id='go' href='/next'>next</a></body>", "/next": "<body>there</body>"}
        )
        browser, _ = make_browser(network)
        first = browser.open(f"{ORIGIN}/")
        second = browser.click("#go")
        assert second.parent_visit == first.visit_id
        assert second.visit_id != first.visit_id
        assert "there" in second.document.body_text()

    def test_404_for_unknown_path(self):
        network, _ = make_site({})
        browser, _ = make_browser(network)
        visit = browser.open(f"{ORIGIN}/missing")
        assert visit.response.status == 404

    def test_no_server_gives_502(self):
        browser, _ = make_browser(Network())
        visit = browser.open("http://ghost.test/")
        assert visit.response.status == 502


class TestCookies:
    def test_set_cookie_persists_across_visits(self):
        def login(request):
            response = HttpResponse(body="<body>ok</body>")
            response.set_cookies["sess"] = "tok123"
            return response

        def check(request):
            return HttpResponse(body=f"<body>{request.cookies.get('sess', 'none')}</body>")

        network, _ = make_site({"/login": login, "/check": check})
        browser, _ = make_browser(network)
        browser.open(f"{ORIGIN}/login")
        visit = browser.open(f"{ORIGIN}/check")
        assert "tok123" in visit.document.body_text()

    def test_cookie_deletion(self):
        def setc(request):
            response = HttpResponse(body="x")
            response.set_cookies["sess"] = "tok"
            return response

        def delc(request):
            response = HttpResponse(body="x")
            response.set_cookies["sess"] = None
            return response

        network, _ = make_site({"/set": setc, "/del": delc})
        browser, _ = make_browser(network)
        browser.open(f"{ORIGIN}/set")
        assert browser.cookies_for(ORIGIN) == {"sess": "tok"}
        browser.open(f"{ORIGIN}/del")
        assert browser.cookies_for(ORIGIN) == {}

    def test_cookies_scoped_by_origin(self):
        def setc(request):
            response = HttpResponse(body="x")
            response.set_cookies["sess"] = "tok"
            return response

        network, _ = make_site({"/set": setc})
        other_hits = []
        network.register(
            "http://other.test",
            lambda req: (other_hits.append(dict(req.cookies)), HttpResponse(body="y"))[1],
        )
        browser, _ = make_browser(network)
        browser.open(f"{ORIGIN}/set")
        browser.open("http://other.test/")
        assert other_hits == [{}]


class TestForms:
    FORM_PAGE = (
        "<body><form action='/save' method='post'>"
        "<input type='text' name='title' value='orig'>"
        "<input type='hidden' name='token' value='tk9'>"
        "<textarea name='body'>old text</textarea>"
        "<input type='submit' name='go' value='Save'>"
        "</form></body>"
    )

    def test_type_and_submit_posts_fields(self):
        posted = {}

        def save(request):
            posted.update(request.params)
            return HttpResponse(body="<body>saved</body>")

        network, _ = make_site({"/form": self.FORM_PAGE, "/save": save})
        browser, _ = make_browser(network)
        browser.open(f"{ORIGIN}/form")
        browser.type_into("textarea", "new text")
        result = browser.click("input[name=go]")
        assert posted["title"] == "orig"
        assert posted["body"] == "new text"
        assert posted["token"] == "tk9"  # hidden fields ride along
        assert posted["go"] == "Save"
        assert "saved" in result.document.body_text()

    def test_submit_visit_depends_on_form_visit(self):
        network, _ = make_site({"/form": self.FORM_PAGE, "/save": "<body>ok</body>"})
        browser, _ = make_browser(network)
        first = browser.open(f"{ORIGIN}/form")
        second = browser.submit("form")
        assert second.parent_visit == first.visit_id


class TestScripts:
    def test_page_script_issues_http_request(self):
        hits = []

        def ping(request):
            hits.append(request.params)
            return HttpResponse(body="pong")

        page = "<body><script>http_get('/ping');</script></body>"
        network, _ = make_site({"/": page, "/ping": ping})
        browser, _ = make_browser(network)
        browser.open(f"{ORIGIN}/")
        assert len(hits) == 1

    def test_script_reads_dom_and_posts(self):
        posted = {}

        def save(request):
            posted.update(request.params)
            return HttpResponse(body="ok")

        page = (
            "<body><span id='username'>alice</span>"
            "<script>var u = doc_text('#username');"
            "http_post('/save', {'page': u + '_notes'});</script></body>"
        )
        network, _ = make_site({"/": page, "/save": save})
        browser, _ = make_browser(network)
        browser.open(f"{ORIGIN}/")
        assert posted == {"page": "alice_notes"}

    def test_escaped_script_does_not_run(self):
        hits = []
        page = "<body>&lt;script&gt;http_get('/ping');&lt;/script&gt;</body>"
        network, _ = make_site({"/": page, "/ping": lambda r: hits.append(1) or HttpResponse()})
        browser, _ = make_browser(network)
        browser.open(f"{ORIGIN}/")
        assert hits == []

    def test_script_error_does_not_break_page(self):
        page = "<body><script>nonsense(;</script><p id='p'>fine</p></body>"
        network, _ = make_site({"/": page})
        browser, _ = make_browser(network)
        visit = browser.open(f"{ORIGIN}/")
        assert visit.document.get_element_by_id("p") is not None
        assert visit.script_errors


class TestFrames:
    def test_iframe_loads_child_visit(self):
        network, _ = make_site({"/inner": "<body><p>inner</p></body>"})
        attacker = Network()
        attacker._servers.update(network._servers)
        attacker.register(
            "http://attacker.test",
            lambda req: HttpResponse(body=f"<body><iframe src='{ORIGIN}/inner'></iframe></body>"),
        )
        browser, _ = make_browser(attacker)
        outer = browser.open("http://attacker.test/")
        inner = browser.framed_visit(outer)
        assert inner is not None
        assert inner.framed
        assert "inner" in inner.document.body_text()

    def test_x_frame_options_deny_blocks_framed_load(self):
        network, _ = make_site({"/inner": "<body>secret</body>"}, deny_framing=True)
        network.register(
            "http://attacker.test",
            lambda req: HttpResponse(body=f"<body><iframe src='{ORIGIN}/inner'></iframe></body>"),
        )
        browser, _ = make_browser(network)
        outer = browser.open("http://attacker.test/")
        inner = browser.framed_visit(outer)
        assert inner.blocked
        assert "secret" not in inner.document.body_text()

    def test_x_frame_options_allows_toplevel_load(self):
        network, _ = make_site({"/inner": "<body>secret</body>"}, deny_framing=True)
        browser, _ = make_browser(network)
        visit = browser.open(f"{ORIGIN}/inner")
        assert not visit.blocked
        assert "secret" in visit.document.body_text()


class TestExtensionRecording:
    def test_headers_attached(self):
        network, calls = make_site({"/": "<body>x</body>"})
        browser, _ = make_browser(network)
        browser.open(f"{ORIGIN}/")
        request = calls[0]
        assert request.client_id == "client-abc"
        assert request.visit_id == 1
        assert request.request_id == 1

    def test_request_ids_increment_within_visit(self):
        page = "<body><script>http_get('/a'); http_get('/b');</script></body>"
        network, calls = make_site({"/": page, "/a": "x", "/b": "y"})
        browser, _ = make_browser(network)
        browser.open(f"{ORIGIN}/")
        assert [c.request_id for c in calls] == [1, 2, 3]

    def test_visit_log_uploaded(self):
        network, _ = make_site({"/": TestForms.FORM_PAGE, "/save": "<body>ok</body>"})
        browser, graph = make_browser(network)
        browser.open(f"{ORIGIN}/")
        browser.type_into("textarea", "edited")
        browser.submit("form")
        record = graph.visits[("client-abc", 1)]
        types = [event.etype for event in record.events]
        assert types == ["input", "submit"]
        input_event = record.events[0]
        assert input_event.data["base"] == "old text"
        assert input_event.data["value"] == "edited"
        assert input_event.data["tag"] == "textarea"

    def test_no_extension_no_headers(self):
        network, calls = make_site({"/": "<body>x</body>"})
        browser = Browser(network)
        browser.open(f"{ORIGIN}/")
        assert calls[0].client_id is None

    def test_cookie_snapshots_recorded(self):
        def login(request):
            response = HttpResponse(body="x")
            response.set_cookies["sess"] = "tok"
            return response

        network, _ = make_site({"/login": login})
        browser, graph = make_browser(network)
        browser.open(f"{ORIGIN}/login")
        record = graph.visits[("client-abc", 1)]
        assert record.cookies_before == {}
        assert record.cookies_after[ORIGIN]["sess"] == "tok"
