"""Unit tests for XPath addressing and the three-way merge (paper §5)."""

import pytest

from repro.browser.html import parse_html
from repro.browser.merge import MergeConflict, three_way_merge
from repro.browser.xpath import resolve_target, resolve_xpath, xpath_of


PAGE = """
<html><body>
  <div id="nav"><a href="/a">A</a><a href="/b">B</a></div>
  <form action="/edit.php" method="post" id="editform">
    <input type="text" name="title" value="Home">
    <textarea name="body">text</textarea>
    <input type="submit" name="save" value="Save">
  </form>
</body></html>
"""


class TestXPath:
    def test_xpath_roundtrip(self):
        doc = parse_html(PAGE)
        for selector in ("#nav", "textarea", "input[name=save]"):
            el = doc.select(selector)
            path = xpath_of(el)
            assert resolve_xpath(doc, path) is el

    def test_sibling_indexing(self):
        doc = parse_html(PAGE)
        links = doc.select("#nav").find_all("a")
        assert xpath_of(links[0]).endswith("/a[1]")
        assert xpath_of(links[1]).endswith("/a[2]")

    def test_resolve_missing_returns_none(self):
        doc = parse_html(PAGE)
        assert resolve_xpath(doc, "/html[1]/body[1]/table[1]") is None

    def test_resolve_target_exact(self):
        doc = parse_html(PAGE)
        el = doc.select("textarea")
        assert resolve_target(doc, xpath_of(el), {"name": "body"}, "textarea") is el

    def test_resolve_target_fallback_by_attrs(self):
        # The page changed shape: XPath is stale but name attribute survives.
        doc = parse_html(PAGE)
        el = doc.select("textarea")
        stale = "/html[1]/body[1]/div[9]/textarea[4]"
        assert resolve_target(doc, stale, {"name": "body"}, "textarea") is el

    def test_resolve_target_ambiguous_fallback_fails(self):
        doc = parse_html("<input name='x'><div><input name='x'></div>")
        assert resolve_target(doc, "/nope[1]", {"name": "x"}, "input") is None

    def test_resolve_target_missing(self):
        doc = parse_html(PAGE)
        assert resolve_target(doc, "/nope[1]", {"name": "zz"}, "input") is None


class TestThreeWayMerge:
    def test_ours_unchanged_returns_theirs(self):
        assert three_way_merge("base", "base", "fixed") == "fixed"

    def test_theirs_unchanged_returns_ours(self):
        assert three_way_merge("base", "edited", "base") == "edited"

    def test_same_change_both_sides(self):
        assert three_way_merge("base", "x", "x") == "x"

    def test_user_edit_survives_attack_removal(self):
        # Table 4 append-only scenario: the user saw the attacked page
        # (original + appended attack), edited an unrelated line; repair
        # removed the appended text.
        original = "line one\nline two\nline three\n"
        attacked = original + "ATTACK APPENDED\n"
        user_edit = "line one\nline two EDITED\nline three\nATTACK APPENDED\n"
        merged = three_way_merge(attacked, user_edit, original)
        assert merged == "line one\nline two EDITED\nline three\n"

    def test_user_edit_inside_attacked_region_conflicts(self):
        base = "hello\nATTACK\nworld\n"
        ours = "hello\nATTACK edited by user\nworld\n"
        theirs = "hello\nworld\n"
        with pytest.raises(MergeConflict):
            three_way_merge(base, ours, theirs)

    def test_total_overwrite_conflicts(self):
        # Table 4 overwrite scenario: nothing in common between base and
        # repaired content, user edited the corrupted text.
        base = "CORRUPTED PAGE CONTENT\n"
        ours = "CORRUPTED PAGE CONTENT plus user words\n"
        theirs = "the original restored text\n"
        with pytest.raises(MergeConflict):
            three_way_merge(base, ours, theirs)

    def test_disjoint_edits_merge(self):
        base = "a\nb\nc\nd\n"
        ours = "a EDITED\nb\nc\nd\n"
        theirs = "a\nb\nc\nd CHANGED\n"
        assert three_way_merge(base, ours, theirs) == "a EDITED\nb\nc\nd CHANGED\n"

    def test_multiline_user_insert(self):
        base = "one\ntwo\n"
        ours = "one\nnew line\ntwo\n"
        theirs = "one\ntwo\nthree\n"
        assert three_way_merge(base, ours, theirs) == "one\nnew line\ntwo\nthree\n"
