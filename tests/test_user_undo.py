"""User-initiated repair semantics (paper §5.5).

A regular user may cancel their own past page visits, but the repair
aborts if it would create conflicts for *other* users — unless the undo
resolves a conflict already reported to that user, in which case cascading
is allowed.  Administrators may always proceed.
"""

import pytest

from repro.workload.scenarios import WIKI, WikiDeployment


@pytest.fixture
def deployment():
    d = WikiDeployment(n_users=3)
    for user in d.users:
        d.login(user)
    return d


class TestOwnActionUndo:
    def test_user_can_undo_their_own_isolated_edit(self, deployment):
        user = deployment.users[0]
        deployment.append_to_page(user, f"{user}_notes", "\nregret this")
        assert "regret this" in deployment.wiki.page_text(f"{user}_notes")
        # The edit-form visit is the one whose events produced the save.
        browser = deployment.browser(user)
        form_visit_id = browser.current.parent_visit
        result = deployment.warp.cancel_visit(
            deployment.client_id(user), form_visit_id, initiated_by_admin=False
        )
        assert result.ok and not result.aborted
        assert "regret this" not in deployment.wiki.page_text(f"{user}_notes")

    def test_undo_preserves_other_users_unrelated_work(self, deployment):
        user_a, user_b = deployment.users[0], deployment.users[1]
        deployment.append_to_page(user_a, f"{user_a}_notes", "\nmine")
        deployment.append_to_page(user_b, f"{user_b}_notes", "\ntheirs")
        browser_b = deployment.browser(user_b)
        form_visit_id = browser_b.current.parent_visit
        result = deployment.warp.cancel_visit(
            deployment.client_id(user_b), form_visit_id, initiated_by_admin=False
        )
        assert result.ok
        assert "mine" in deployment.wiki.page_text(f"{user_a}_notes")
        assert "theirs" not in deployment.wiki.page_text(f"{user_b}_notes")


class TestAbortOnCascade:
    def _entangle(self, deployment):
        """user0 edits a shared page; user1 then edits *that* content so
        that undoing user0's visit conflicts with user1's replay."""
        user_a, user_b = deployment.users[0], deployment.users[1]
        deployment.edit_page(user_a, "Projects", "CONTENT FROM A\nsecond line")
        browser_a = deployment.browser(user_a)
        visit_a = browser_a.current.parent_visit
        # user_b edits the first line A wrote — entangled with A's edit.
        browser_b = deployment.browser(user_b)
        visit = browser_b.open(f"{WIKI}/edit.php?title=Projects")
        current = visit.document.select("textarea").value
        browser_b.type_into("textarea", current.replace("CONTENT FROM A", "CONTENT FROM A (improved by B)"))
        browser_b.click("input[name=save]")
        return user_a, user_b, visit_a

    def test_user_undo_aborts_when_it_conflicts_others(self, deployment):
        user_a, user_b, visit_a = self._entangle(deployment)
        before = deployment.wiki.page_text("Projects")
        result = deployment.warp.cancel_visit(
            deployment.client_id(user_a), visit_a, initiated_by_admin=False
        )
        assert result.aborted
        # Nothing changed: the repair generation was discarded.
        assert deployment.wiki.page_text("Projects") == before
        assert not deployment.warp.conflicts.pending()

    def test_admin_undo_proceeds_despite_conflicts(self, deployment):
        user_a, user_b, visit_a = self._entangle(deployment)
        result = deployment.warp.cancel_visit(
            deployment.client_id(user_a), visit_a, initiated_by_admin=True
        )
        assert result.ok and not result.aborted
        assert deployment.warp.conflicts.pending(deployment.client_id(user_b))

    def test_conflict_resolution_may_cascade(self, deployment):
        """§5.5's exception: resolving one's own reported conflict may
        propagate conflicts to others."""
        user_a, user_b, visit_a = self._entangle(deployment)
        deployment.warp.cancel_visit(
            deployment.client_id(user_a), visit_a, initiated_by_admin=True
        )
        conflicts = deployment.warp.conflicts.pending(deployment.client_id(user_b))
        assert conflicts
        result = deployment.warp.resolve_conflict_by_cancel(conflicts[0])
        assert result.ok
        assert not deployment.warp.conflicts.pending(deployment.client_id(user_b))


class TestConflictQueue:
    def test_one_conflict_per_visit(self):
        from repro.repair.conflicts import Conflict, ConflictQueue

        queue = ConflictQueue()
        queue.add(Conflict("c1", 1, "/a", "first"))
        queue.add(Conflict("c1", 1, "/a", "duplicate"))
        queue.add(Conflict("c1", 2, "/b", "other visit"))
        assert len(queue.pending("c1")) == 2

    def test_resolution_clears_pending(self):
        from repro.repair.conflicts import Conflict, ConflictQueue

        queue = ConflictQueue()
        conflict = Conflict("c1", 1, "/a", "x")
        queue.add(conflict)
        queue.resolve(conflict)
        assert queue.pending("c1") == []
        assert queue.pending_count("c1") == 0

    def test_clients_with_conflicts(self):
        from repro.repair.conflicts import Conflict, ConflictQueue

        queue = ConflictQueue()
        queue.add(Conflict("c1", 1, "/a", "x"))
        queue.add(Conflict("c2", 1, "/a", "y"))
        assert queue.clients_with_conflicts() == {"c1", "c2"}
