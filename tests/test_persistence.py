"""Durability: a persisted WarpSystem keeps its repair capability.

The acceptance bar (ISSUE 1): a deployment saved to disk and reloaded in
a *fresh process* must run ``retroactive_patch`` and produce the same
``RepairStats`` counters as the original in-memory instance.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.apps.wiki.app import WikiApp
from repro.apps.wiki.common import make_common
from repro.warp import WarpSystem

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))

COUNTERS = (
    "visits_reexecuted",
    "runs_reexecuted",
    "runs_pruned",
    "runs_canceled",
    "queries_reexecuted",
    "nondet_misses",
    "conflicts",
    "total_visits",
    "total_runs",
    "total_queries",
)


def counters(result):
    return {name: getattr(result.stats, name) for name in COUNTERS}


def build_workload(wal_path=None):
    """A small wiki deployment with browsing, editing and login traffic."""
    warp = WarpSystem(wal_path=wal_path)
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    wiki.seed_user("alice", "alicepw")
    wiki.seed_user("bob", "bobpw", admin=True)
    wiki.seed_page("Home", "welcome", "bob", editors=["alice"])
    wiki.seed_page("News", "nothing yet", "bob")

    alice = warp.client("alice-laptop")
    alice.open("http://wiki.test/login.php")
    alice.type_into("input[name=wpName]", "alice")
    alice.type_into("input[name=wpPassword]", "alicepw")
    alice.submit("#loginform")
    alice.open("http://wiki.test/index.php?title=Home")
    alice.open("http://wiki.test/edit.php?title=Home")
    alice.type_into("textarea", "welcome, edited by alice")
    alice.submit("form")

    bob = warp.client("bob-desktop")
    bob.open("http://wiki.test/index.php?title=News")
    bob.open("http://wiki.test/index.php?title=Home")
    return warp, wiki


CHILD_SCRIPT = """
import json, sys
from repro.warp import WarpSystem
from repro.apps.wiki.app import WikiApp
from repro.apps.wiki.common import make_common

warp = WarpSystem.load(sys.argv[1])
wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
wiki.register_code()
result = warp.retroactive_patch("common.php", make_common(send_frame_options=True))
names = %r
print(json.dumps({name: getattr(result.stats, name) for name in names}))
""" % (COUNTERS,)


class TestWarpSystemPersistence:
    def test_reloaded_system_repairs_identically_in_fresh_process(self, tmp_path):
        warp, _ = build_workload()
        path = str(tmp_path / "warp.json")
        warp.save(path)

        original = warp.retroactive_patch(
            "common.php", make_common(send_frame_options=True)
        )
        assert original.ok

        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-c", CHILD_SCRIPT, path],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout.strip()) == counters(original)

    def test_reloaded_system_repairs_identically_in_process(self, tmp_path):
        warp, _ = build_workload()
        path = str(tmp_path / "warp.json")
        warp.save(path)

        reloaded = WarpSystem.load(path)
        wiki2 = WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server)
        wiki2.register_code()

        original = warp.retroactive_patch(
            "common.php", make_common(send_frame_options=True)
        )
        again = reloaded.retroactive_patch(
            "common.php", make_common(send_frame_options=True)
        )
        assert counters(again) == counters(original)
        # The repaired database state matches too.
        assert wiki2.page_text("Home") == "welcome, edited by alice"

    def test_reloaded_system_keeps_serving_and_recording(self, tmp_path):
        warp, _ = build_workload()
        path = str(tmp_path / "warp.json")
        warp.save(path)

        reloaded = WarpSystem.load(path)
        WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server).register_code()
        runs_before = reloaded.graph.n_runs
        carol = reloaded.client("carol-phone")
        carol.open("http://wiki.test/index.php?title=News")
        assert reloaded.graph.n_runs == runs_before + 1
        # Fresh run ids do not collide with restored ones.
        assert len(set(reloaded.graph.runs)) == reloaded.graph.n_runs

    def test_wal_restores_post_snapshot_actions(self, tmp_path):
        wal_path = str(tmp_path / "records.wal")
        warp, _ = build_workload(wal_path=wal_path)
        path = str(tmp_path / "warp.json")
        warp.save(path)  # snapshot truncates the WAL

        eve = warp.client("eve-tablet")
        eve.open("http://wiki.test/index.php?title=Home")
        n_total = warp.graph.n_runs

        reloaded = WarpSystem.load(path, wal_path=wal_path)
        assert reloaded.graph.n_runs == n_total
        assert ("eve-tablet", 1) in reloaded.graph.visits

        # Regression: id allocation must continue past WAL-replayed records
        # (which postdate the snapshot's persisted counters) — a colliding
        # fresh run id would silently overwrite a restored record.
        WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server).register_code()
        frank = reloaded.client("frank-laptop")
        frank.open("http://wiki.test/index.php?title=Home")
        assert reloaded.graph.n_runs == n_total + 1
        assert len(set(reloaded.graph.runs)) == reloaded.graph.n_runs

    def test_wal_preserves_visit_logs_accumulated_after_upload(self, tmp_path):
        """Events, request ids and cookie snapshots accumulate on the visit
        record after add_visit; crash recovery must see the full log."""
        wal_path = str(tmp_path / "records.wal")
        warp, _ = build_workload(wal_path=wal_path)
        live = warp.graph.visits[("alice-laptop", 1)]
        assert live.events and live.request_ids  # the login page interaction

        # Crash without ever saving a snapshot: recover from the WAL alone.
        from repro.store.recordstore import RecordStore

        store = RecordStore.recover(wal_path=wal_path)
        restored = store.visits[("alice-laptop", 1)]
        assert [e.etype for e in restored.events] == [e.etype for e in live.events]
        assert restored.request_ids == live.request_ids
        assert restored.cookies_after == live.cookies_after

    def test_wal_preserves_cancellations(self, tmp_path):
        wal_path = str(tmp_path / "records.wal")
        warp, _ = build_workload(wal_path=wal_path)
        result = warp.cancel_visit("bob-desktop", 1)
        assert result.ok and result.stats.runs_canceled > 0

        from repro.store.recordstore import RecordStore

        store = RecordStore.recover(wal_path=wal_path)
        canceled = [r.run_id for r in store.runs.values() if r.canceled]
        assert canceled == [
            r.run_id for r in warp.graph.runs.values() if r.canceled
        ]

    def test_returning_client_does_not_reuse_visit_ids(self, tmp_path):
        warp, _ = build_workload()
        path = str(tmp_path / "warp.json")
        warp.save(path)

        reloaded = WarpSystem.load(path)
        WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server).register_code()
        old_visit = reloaded.graph.visits[("alice-laptop", 1)]
        alice_again = reloaded.client("alice-laptop")
        alice_again.open("http://wiki.test/index.php?title=News")
        # The restored visit 1 is untouched; the new visit got a fresh id.
        assert reloaded.graph.visits[("alice-laptop", 1)] is old_visit
        new_ids = [v.visit_id for v in reloaded.graph.client_visits("alice-laptop")]
        assert len(new_ids) == len(set(new_ids))
        assert max(new_ids) > 1

    def test_fresh_system_refuses_dirty_wal(self, tmp_path):
        from repro.core.errors import RepairError

        wal_path = str(tmp_path / "records.wal")
        build_workload(wal_path=wal_path)  # leaves entries in the log
        with pytest.raises(RepairError, match="already contains entries"):
            WarpSystem(wal_path=wal_path)

    def test_resave_before_reregistering_keeps_version_guard(self, tmp_path):
        from repro.core.errors import RepairError

        warp, _ = build_workload()
        assert warp.retroactive_patch(
            "common.php", make_common(send_frame_options=True)
        ).ok
        p1 = str(tmp_path / "one.json")
        warp.save(p1)

        loaded = WarpSystem.load(p1)
        p2 = str(tmp_path / "two.json")
        loaded.save(p2)  # checkpoint before any code was re-registered

        final = WarpSystem.load(p2)
        WikiApp(final.ttdb, final.scripts, final.server).register_code()
        with pytest.raises(RepairError, match="re-apply"):
            final.cancel_client("bob-desktop")

    def test_conflicts_and_cookie_invalidation_survive_reload(self, tmp_path):
        from repro.repair.conflicts import Conflict

        warp, _ = build_workload()
        warp.conflicts.add(
            Conflict(client_id="alice-laptop", visit_id=2, url="/edit.php", reason="merge failed")
        )
        warp.server.cookie_invalidation.add("alice-laptop")
        path = str(tmp_path / "warp.json")
        warp.save(path)

        reloaded = WarpSystem.load(path)
        WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server).register_code()
        pending = reloaded.conflicts.pending("alice-laptop")
        assert [c.reason for c in pending] == ["merge failed"]
        assert "alice-laptop" in reloaded.server.cookie_invalidation
        # The queued deletion still happens on the client's next contact.
        alice = reloaded.client("alice-laptop")
        visit = alice.open("http://wiki.test/index.php?title=Home")
        assert "alice-laptop" not in reloaded.server.cookie_invalidation
        assert visit.response.headers.get("X-Warp-Conflicts") == "1"

    def test_clock_advances_past_wal_replayed_records(self, tmp_path):
        wal_path = str(tmp_path / "records.wal")
        warp, _ = build_workload(wal_path=wal_path)
        path = str(tmp_path / "warp.json")
        warp.save(path)
        eve = warp.client("eve-tablet")
        eve.open("http://wiki.test/index.php?title=Home")
        ts_live = warp.clock.now()

        reloaded = WarpSystem.load(path, wal_path=wal_path)
        assert reloaded.clock.now() >= ts_live
        # New actions timestamp strictly after everything recorded.
        assert reloaded.clock.tick() > max(
            r.ts_end for r in reloaded.graph.runs.values()
        )

    def test_unnamed_client_tokens_do_not_collide_after_reload(self, tmp_path):
        wal_path = str(tmp_path / "records.wal")
        warp, _ = build_workload(wal_path=wal_path)
        path = str(tmp_path / "warp.json")
        warp.save(path)
        anon = warp.client()  # token drawn after the save rewound state
        anon.open("http://wiki.test/index.php?title=Home")

        reloaded = WarpSystem.load(path, wal_path=wal_path)
        WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server).register_code()
        anon_again = reloaded.client()  # rng rewound: would re-draw same token
        assert anon_again.extension.client_id != anon.extension.client_id

    def test_load_refuses_wal_truncated_against_other_snapshot(self, tmp_path):
        from repro.core.errors import ReproError

        wal_path = str(tmp_path / "records.wal")
        warp, _ = build_workload(wal_path=wal_path)
        p1 = str(tmp_path / "one.json")
        warp.save(p1)
        eve = warp.client("eve-tablet")
        eve.open("http://wiki.test/index.php?title=Home")
        p2 = str(tmp_path / "two.json")
        warp.save(p2)  # truncates the WAL against snapshot two

        with pytest.raises(ReproError, match="different snapshot"):
            WarpSystem.load(p1, wal_path=wal_path)
        assert WarpSystem.load(p2, wal_path=wal_path).graph.n_runs == warp.graph.n_runs

    def test_crash_between_snapshot_and_truncate_replays_nothing_twice(
        self, tmp_path, monkeypatch
    ):
        from repro.store.wal import RecordWal

        wal_path = str(tmp_path / "records.wal")
        warp, _ = build_workload(wal_path=wal_path)
        warp.save(str(tmp_path / "one.json"))
        eve = warp.client("eve-tablet")
        eve.open("http://wiki.test/index.php?title=Home")

        def crash(self):
            raise RuntimeError("simulated crash before truncate")

        monkeypatch.setattr(RecordWal, "truncate", crash)
        p2 = str(tmp_path / "two.json")
        with pytest.raises(RuntimeError):
            warp.save(p2)
        monkeypatch.undo()

        reloaded = WarpSystem.load(p2, wal_path=wal_path)
        assert reloaded.graph.n_runs == warp.graph.n_runs
        for key, visit in warp.graph.visits.items():
            assert len(reloaded.graph.visits[key].events) == len(visit.events)
            assert reloaded.graph.visits[key].request_ids == visit.request_ids

    def test_save_refuses_mid_repair(self, tmp_path):
        warp, _ = build_workload()
        warp.ttdb.begin_repair()
        with pytest.raises(Exception):
            warp.save(str(tmp_path / "warp.json"))

    def test_snapshot_ids_unique_even_for_identical_state(self, tmp_path):
        """Regression: a crash between a repeat-save's pre-write marker and
        its snapshot write must not make recovery skip entries the on-disk
        (older) snapshot lacks — ids carry a nonce, never repeating."""
        warp, _ = build_workload()
        p1, p2 = str(tmp_path / "one.json"), str(tmp_path / "two.json")
        warp.save(p1)
        warp.save(p2)  # no state change in between
        ids = {json.load(open(p))["snapshot_id"] for p in (p1, p2)}
        assert len(ids) == 2

    def test_snapshotless_load_recovers_action_log_from_wal(self, tmp_path):
        """Crash before the first save: the journaled action history is
        recoverable with load(None, wal_path=...)."""
        wal_path = str(tmp_path / "records.wal")
        warp, _ = build_workload(wal_path=wal_path)
        n_runs, n_visits = warp.graph.n_runs, warp.graph.n_visits

        recovered = WarpSystem.load(None, wal_path=wal_path)
        assert recovered.graph.n_runs == n_runs
        assert recovered.graph.n_visits == n_visits
        # Counters and clock continue past the recovered records.
        assert recovered.clock.now() >= max(
            r.ts_end for r in recovered.graph.runs.values()
        )
        assert recovered.ids.peek("run") == max(recovered.graph.runs)

    def test_torn_only_wal_does_not_block_fresh_start(self, tmp_path):
        wal_path = str(tmp_path / "records.wal")
        with open(wal_path, "w", encoding="utf-8") as fh:
            fh.write('{"kind": "run", "da')  # crash during the very first append
        warp = WarpSystem(wal_path=wal_path)  # must not raise
        assert warp.graph.n_runs == 0

    def test_crash_between_switch_and_queue_drain_loses_no_queued_request(
        self, tmp_path, monkeypatch
    ):
        """Crash injection for the online-repair gate: the process dies
        after the generation switch but before ``repair_active`` clearing
        finished its work (the queued-request drain).  Recovery must see
        every queued request exactly once — journaled ``gate_queue``
        entries with no matching ``gate_apply`` — and re-application after
        reload must not duplicate one, even across repeated WAL replays."""
        from repro.repair.controller import RepairController
        from repro.workload.loadgen import LoadClient, make_load_clients

        wal_path = str(tmp_path / "records.wal")
        warp, wiki = build_workload(wal_path=wal_path)
        attacker = LoadClient("attacker-lc", warp.server)
        wiki.seed_user("attacker-lc", "pw-attacker-lc")
        assert attacker.login("pw-attacker-lc").status == 200
        assert attacker.send(
            attacker.request(
                "POST", "/edit.php", {"title": "News", "append": "\nDEFACED."}
            )
        ).status == 200
        (bystander,) = make_load_clients(wiki, warp.server, ["bys"])
        snapshot = str(tmp_path / "warp.json")
        warp.save(snapshot)

        warp.enable_online_repair()
        queued_tickets = []

        def hook():
            if not queued_tickets:
                response = bystander.send(
                    bystander.request(
                        "POST", "/edit.php", {"title": "News", "append": "\nrecover-me."}
                    )
                )
                assert response.status == 202
                queued_tickets.append(int(response.headers["X-Warp-Queued"]))

        # The crash: the drain (the tail of repair_active clearing) never
        # runs — the generation switch itself completed.
        monkeypatch.setattr(
            RepairController, "_drain_gate_queue", lambda self: None
        )
        controller = warp._controller()
        controller.step_hook = hook
        result = controller.cancel_client(attacker.client_id)
        assert result.ok and queued_tickets
        assert warp.graph.store.pending_gate_queue  # journaled, undrained
        monkeypatch.undo()

        # Fresh process: recover snapshot + WAL.
        reloaded = WarpSystem.load(snapshot, wal_path=wal_path)
        WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server).register_code()
        recovered = reloaded.recovered_queued_requests()
        assert [ticket for ticket, _ in recovered] == queued_tickets
        # The database is only as fresh as the snapshot: re-run the repair,
        # then re-apply the recovered queue exactly once.
        assert reloaded.cancel_client(attacker.client_id).ok
        responses = reloaded.reapply_recovered_requests()
        assert responses[queued_tickets[0]].status == 200
        text = WikiApp(
            reloaded.ttdb, reloaded.scripts, reloaded.server
        ).page_text("News")
        assert "DEFACED." not in text
        assert text.count("recover-me.") == 1
        assert reloaded.graph.store.pending_gate_queue == {}
        assert reloaded.recovered_queued_requests() == []

        # WAL replay stays idempotent through the gate entries: another
        # recovery sees the ticket consumed, never re-pending.
        again = WarpSystem.load(snapshot, wal_path=wal_path)
        assert again.recovered_queued_requests() == []

    def test_snapshotless_crash_recovers_gate_queue_exactly_once(
        self, tmp_path, monkeypatch
    ):
        """ISSUE 5 satellite: the *snapshotless* crash path combined with
        the gate queue.  The process dies mid-repair before the first
        ``save`` ever happened — recovery is ``load(None, wal_path=...)``
        — and the journaled queued request must surface through
        ``recovered_queued_requests`` and re-apply exactly once, across
        repeated WAL replays."""
        from repro.repair.controller import RepairController
        from repro.workload.loadgen import LoadClient, make_load_clients

        wal_path = str(tmp_path / "records.wal")
        warp, wiki = build_workload(wal_path=wal_path)
        attacker = LoadClient("attacker-lc", warp.server)
        wiki.seed_user("attacker-lc", "pw-attacker-lc")
        assert attacker.login("pw-attacker-lc").status == 200
        assert attacker.send(
            attacker.request(
                "POST", "/edit.php", {"title": "News", "append": "\nDEFACED."}
            )
        ).status == 200

        warp.enable_online_repair()
        (bystander,) = make_load_clients(wiki, warp.server, ["bys"])
        queued_tickets = []

        def hook():
            if not queued_tickets:
                response = bystander.send(
                    bystander.request(
                        "POST",
                        "/edit.php",
                        {"title": "News", "append": "\nrecover-me."},
                    )
                )
                assert response.status == 202
                queued_tickets.append(int(response.headers["X-Warp-Queued"]))

        # The crash: the queue drain never runs, and no snapshot exists.
        monkeypatch.setattr(
            RepairController, "_drain_gate_queue", lambda self: None
        )
        controller = warp._controller()
        controller.step_hook = hook
        assert controller.cancel_client(attacker.client_id).ok
        assert queued_tickets
        assert warp.graph.store.pending_gate_queue
        monkeypatch.undo()

        # Fresh process, WAL only: the action log is rebuilt but the
        # database starts empty — the application is *reinstalled*.
        recovered = WarpSystem.load(None, wal_path=wal_path)
        wiki2 = WikiApp(recovered.ttdb, recovered.scripts, recovered.server)
        wiki2.install()
        entries = recovered.recovered_queued_requests()
        assert [ticket for ticket, _ in entries] == queued_tickets
        assert entries[0][1].params["append"] == "\nrecover-me."

        responses = recovered.reapply_recovered_requests()
        assert set(responses) == set(queued_tickets)
        # Exactly once: the ticket is journaled applied and never re-pends.
        assert recovered.graph.store.pending_gate_queue == {}
        assert recovered.recovered_queued_requests() == []
        assert recovered.reapply_recovered_requests() == {}

        # Idempotent across another full WAL replay.
        again = WarpSystem.load(None, wal_path=wal_path)
        assert again.recovered_queued_requests() == []
        assert again.graph.store.pending_gate_queue == {}

    def test_repair_refuses_until_code_is_reregistered(self, tmp_path):
        from repro.core.errors import RepairError

        warp, _ = build_workload()
        path = str(tmp_path / "warp.json")
        warp.save(path)

        reloaded = WarpSystem.load(path)
        # No register_code(): repairing would re-execute with missing code.
        with pytest.raises(RepairError, match="missing"):
            reloaded.retroactive_patch(
                "common.php", make_common(send_frame_options=True)
            )

    def test_repair_refuses_stale_script_versions_after_load(self, tmp_path):
        from repro.core.errors import RepairError

        warp, _ = build_workload()
        patched = warp.retroactive_patch(
            "common.php", make_common(send_frame_options=True)
        )
        assert patched.ok
        path = str(tmp_path / "warp.json")
        warp.save(path)

        reloaded = WarpSystem.load(path)
        wiki2 = WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server)
        wiki2.register_code()  # baseline code only: common.php back at v0
        with pytest.raises(RepairError, match="re-apply"):
            reloaded.cancel_client("bob-desktop")
        # Re-applying the pre-save patch restores repair capability.
        reloaded.scripts.patch("common.php", make_common(send_frame_options=True))
        assert reloaded.cancel_client("bob-desktop").ok
