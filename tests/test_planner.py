"""Unit tests for the query planner layer: plan caching and invalidation,
compiled predicates, index access paths, read-set templates, the bounded
value index, and the O(footprint) repair-abort journal."""

import pytest

from repro.core.clock import INFINITY, LogicalClock
from repro.core.errors import SqlError
from repro.db.executor import ExecContext, Executor
from repro.db.sql.compile import compile_expr, compile_predicate
from repro.db.sql.eval import evaluate, truthy
from repro.db.sql.parser import parse
from repro.db.storage import Column, Database, TableSchema
from repro.ttdb.partitions import ReadSetPlanner, read_partitions
from repro.ttdb.timetravel import TimeTravelDB


def pages_schema(**overrides):
    defaults = dict(
        name="pages",
        columns=(
            Column("page_id", "int"),
            Column("title"),
            Column("body"),
            Column("score", "int"),
        ),
        row_id_column="page_id",
        partition_columns=("title",),
        unique_keys=(),
    )
    defaults.update(overrides)
    return TableSchema(**defaults)


def make_ttdb(schema=None):
    tt = TimeTravelDB(Database(), LogicalClock())
    tt.create_table(schema or pages_schema())
    return tt


def ctx(ts, gen=0):
    return ExecContext(ts=ts, gen=gen, current_gen=gen)


# -- plan cache ---------------------------------------------------------------


class TestPlanCache:
    def test_plan_reused_across_executions(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title) VALUES (1, 'A')")
        tt.execute("SELECT * FROM pages WHERE title = ?", ("A",))
        plan_one = tt.executor._plan_cache["SELECT * FROM pages WHERE title = ?"]
        tt.execute("SELECT * FROM pages WHERE title = ?", ("B",))
        plan_two = tt.executor._plan_cache["SELECT * FROM pages WHERE title = ?"]
        assert plan_one is plan_two

    def test_plan_invalidated_by_ddl(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title) VALUES (1, 'A')")
        tt.execute("SELECT * FROM pages WHERE title = 'A'")
        stale = tt.executor._plan_cache["SELECT * FROM pages WHERE title = 'A'"]
        tt.create_table(pages_schema(name="other"))
        tt.execute("SELECT * FROM pages WHERE title = 'A'")
        fresh = tt.executor._plan_cache["SELECT * FROM pages WHERE title = 'A'"]
        assert fresh is not stale
        assert fresh.epoch == tt.database.ddl_epoch

    def test_plan_invalidated_by_restore(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title) VALUES (1, 'A')")
        tt.execute("SELECT * FROM pages WHERE title = 'A'")
        epoch_before = tt.database.ddl_epoch
        tt.database.restore(tt.database.to_dict())
        assert tt.database.ddl_epoch > epoch_before
        res = tt.execute("SELECT title FROM pages WHERE title = 'A'")
        assert res.rows == [{"title": "A"}]

    def test_plan_cache_bounded(self):
        from repro.db import executor as executor_module

        tt = make_ttdb()
        old_max = executor_module._PLAN_CACHE_MAX
        executor_module._PLAN_CACHE_MAX = 8
        try:
            for index in range(30):
                tt.execute(f"SELECT * FROM pages WHERE title = 'u{index}'")
            assert len(tt.executor._plan_cache) <= 8
        finally:
            executor_module._PLAN_CACHE_MAX = old_max

    def test_plan_keyed_by_statement_without_sql(self):
        db = Database()
        db.create_table(pages_schema())
        ex = Executor(db)
        stmt = parse("SELECT * FROM pages WHERE title = 'A'")
        ex.execute(stmt, (), ctx(1))
        assert stmt in ex._plan_cache


# -- compiled expressions ------------------------------------------------------


TRICKY_EXPRESSIONS = [
    ("title = 'A'", {"title": "A"}, ()),
    ("title = 'A'", {"title": None}, ()),
    ("score + 1 > ?", {"score": 3}, (3,)),
    ("score / 0 IS NULL", {"score": 3}, ()),
    ("score % 0 IS NULL", {"score": 3}, ()),
    ("NOT (title = 'A' OR score > 2)", {"title": "B", "score": 1}, ()),
    ("title IS NOT NULL AND score IS NULL", {"title": "A", "score": None}, ()),
    ("title IN ('A', NULL)", {"title": "B"}, ()),
    ("title NOT IN ('A', NULL)", {"title": "B"}, ()),
    ("title LIKE 'a%b'", {"title": "aXXb"}, ()),
    ("title LIKE ?", {"title": "a_b"}, ("a!_b",)),
    ("score BETWEEN 1 AND ?", {"score": 2}, (5,)),
    ("LOWER(title) = 'a'", {"title": "A"}, ()),
    ("COALESCE(body, title) = 'A'", {"body": None, "title": "A"}, ()),
    ("LENGTH(title) = 3", {"title": "abc"}, ()),
    ("SUBSTR(title, 2, 2) = 'bc'", {"title": "abcd"}, ()),
    ("title || body = 'ab'", {"title": "a", "body": "b"}, ()),
    ("-score = -4", {"score": 4}, ()),
    ("score = NULL", {"score": None}, ()),
]


class TestCompiledExpressions:
    @pytest.mark.parametrize("sql_where,row,params", TRICKY_EXPRESSIONS)
    def test_compiled_matches_tree_walk(self, sql_where, row, params):
        stmt = parse(f"SELECT * FROM pages WHERE {sql_where}")
        compiled = compile_expr(stmt.where)
        assert compiled(row, params) == evaluate(stmt.where, row, params)
        predicate = compile_predicate(stmt.where)
        assert predicate(row, params) == truthy(evaluate(stmt.where, row, params))

    def test_compiled_error_parity_unknown_column(self):
        stmt = parse("SELECT * FROM pages WHERE nosuch = 1")
        compiled = compile_expr(stmt.where)
        with pytest.raises(SqlError):
            compiled({"title": "A"}, ())
        with pytest.raises(SqlError):
            evaluate(stmt.where, {"title": "A"}, ())

    def test_compiled_error_parity_missing_param(self):
        stmt = parse("SELECT * FROM pages WHERE title = ?")
        compiled = compile_expr(stmt.where)
        with pytest.raises(SqlError):
            compiled({"title": "A"}, ())

    def test_compiled_error_parity_type_mismatch(self):
        stmt = parse("SELECT * FROM pages WHERE score > 'x'")
        compiled = compile_expr(stmt.where)
        with pytest.raises(SqlError):
            compiled({"score": 3}, ())


# -- access paths --------------------------------------------------------------


class TestAccessPaths:
    def test_equality_probe_planned(self):
        tt = make_ttdb()
        for index in range(20):
            tt.execute(
                "INSERT INTO pages (page_id, title, score) VALUES (?, ?, ?)",
                (index + 1, f"T{index % 5}", index),
            )
        plan = tt.executor.plan_for(parse("SELECT * FROM pages WHERE title = ?"))
        assert [column for column, _ in plan.eq_probes] == ["title"]
        res = tt.execute("SELECT page_id FROM pages WHERE title = ?", ("T2",))
        assert sorted(r["page_id"] for r in res.rows) == [3, 8, 13, 18]

    def test_range_probe_uses_ordered_index(self):
        tt = make_ttdb(pages_schema(partition_columns=("title", "score")))
        for index in range(20):
            tt.execute(
                "INSERT INTO pages (page_id, title, score) VALUES (?, ?, ?)",
                (index + 1, f"T{index}", index),
            )
        plan = tt.executor.plan_for(
            parse("SELECT * FROM pages WHERE score >= 5 AND score < 8")
        )
        assert plan.range_probe is not None
        assert plan.range_probe[0] == "score"
        table = tt.database.table("pages")
        candidates = table.range_candidate_row_ids("score", 5, True, 8, False)
        assert candidates == {6, 7, 8}
        res = tt.execute("SELECT page_id FROM pages WHERE score >= 5 AND score < 8")
        assert sorted(r["page_id"] for r in res.rows) == [6, 7, 8]

    def test_range_scan_refused_on_mixed_type_column(self):
        tt = make_ttdb(pages_schema(partition_columns=("title", "score")))
        tt.execute("INSERT INTO pages (page_id, title, score) VALUES (1, 'A', 5)")
        tt.execute("INSERT INTO pages (page_id, title, score) VALUES (2, 'B', 'oops')")
        table = tt.database.table("pages")
        assert table.range_candidate_row_ids("score", 1, True, 9, True) is None

    def test_order_by_index_parity_with_limit(self):
        tt = make_ttdb()
        naive = make_ttdb()
        naive.executor.use_planner = False
        for db in (tt, naive):
            for index in range(30):
                db.execute(
                    "INSERT INTO pages (page_id, title, score) VALUES (?, ?, ?)",
                    (index + 1, f"T{index % 7}", index % 4),
                )
        for sql in (
            "SELECT page_id, title FROM pages ORDER BY title",
            "SELECT page_id, title FROM pages ORDER BY title DESC",
            "SELECT page_id, title FROM pages ORDER BY title LIMIT 5",
            "SELECT title FROM pages WHERE score = 2 ORDER BY title DESC LIMIT 3",
        ):
            assert tt.execute(sql).rows == naive.execute(sql).rows, sql

    def test_ordered_index_reflects_deletes(self):
        tt = make_ttdb()
        for index in range(6):
            tt.execute(
                "INSERT INTO pages (page_id, title) VALUES (?, ?)",
                (index + 1, f"T{index}"),
            )
        tt.execute("DELETE FROM pages WHERE title = 'T3'")
        rows = tt.execute("SELECT title FROM pages ORDER BY title").rows
        assert [r["title"] for r in rows] == ["T0", "T1", "T2", "T4", "T5"]


# -- read-set templates --------------------------------------------------------


class TestReadSetTemplates:
    def check(self, sql, params, schema=None):
        schema = schema or pages_schema()
        stmt = parse(sql)
        planner = ReadSetPlanner()
        templated = planner.read_set_for(sql, stmt, params, schema, epoch=1)
        reference = read_partitions(stmt, params, schema)
        assert templated.to_dict() == reference.to_dict(), sql
        # Second execution with different parameters still matches.
        return planner

    def test_const_shapes(self):
        self.check("SELECT * FROM pages", ())
        self.check("SELECT * FROM pages WHERE title = 'A'", ())
        self.check("INSERT INTO pages (page_id) VALUES (1)", ())
        self.check("SELECT * FROM pages WHERE LENGTH(body) > 3", ())

    def test_templated_params(self):
        schema = pages_schema(partition_columns=("title", "score"))
        planner = ReadSetPlanner()
        sql = "SELECT * FROM pages WHERE title = ? AND score = ?"
        stmt = parse(sql)
        for params in (("A", 1), ("B", 2), ("B", None)):
            got = planner.read_set_for(sql, stmt, params, schema, epoch=1)
            assert got.to_dict() == read_partitions(stmt, params, schema).to_dict()
        sql_in = "SELECT * FROM pages WHERE title IN (?, ?, 'C')"
        stmt_in = parse(sql_in)
        for params in (("A", "B"), ("A", "A")):
            got = planner.read_set_for(sql_in, stmt_in, params, schema, epoch=1)
            assert (
                got.to_dict() == read_partitions(stmt_in, params, schema).to_dict()
            )

    def test_duplicate_param_columns_fall_back_to_dynamic(self):
        # title = ?0 AND title = ?1: the merged disjunct survives only when
        # the runtime values are equal — value-dependent, so the template
        # must not be trusted.
        sql = "SELECT * FROM pages WHERE title = ? AND title = ?"
        stmt = parse(sql)
        planner = ReadSetPlanner()
        schema = pages_schema()
        for params in (("A", "A"), ("A", "B")):
            got = planner.read_set_for(sql, stmt, params, schema, epoch=1)
            assert got.to_dict() == read_partitions(stmt, params, schema).to_dict()
        assert planner._cache[(sql, "pages")].mode == "dynamic"

    def test_missing_params_fall_back(self):
        sql = "SELECT * FROM pages WHERE title = ?"
        stmt = parse(sql)
        planner = ReadSetPlanner()
        schema = pages_schema()
        got = planner.read_set_for(sql, stmt, (), schema, epoch=1)
        assert got.to_dict() == read_partitions(stmt, (), schema).to_dict()

    def test_epoch_invalidates_template(self):
        sql = "SELECT * FROM pages WHERE title = ?"
        stmt = parse(sql)
        planner = ReadSetPlanner()
        schema = pages_schema()
        planner.read_set_for(sql, stmt, ("A",), schema, epoch=1)
        first = planner._cache[(sql, "pages")]
        planner.read_set_for(sql, stmt, ("A",), schema, epoch=2)
        assert planner._cache[(sql, "pages")] is not first


# -- bounded value index -------------------------------------------------------


class TestValueIndexPurge:
    def test_gc_purges_stale_index_entries(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title) VALUES (1, 'v0')")
        for index in range(1, 50):
            tt.execute(
                "UPDATE pages SET title = ? WHERE page_id = 1", (f"v{index}",)
            )
        table = tt.database.table("pages")
        assert len(table._value_index["title"]) == 50
        tt.gc(tt.clock.now() + 1)
        assert set(table._value_index["title"]) == {"v49"}
        # The purged index still answers correctly.
        assert tt.execute("SELECT title FROM pages").rows == [{"title": "v49"}]
        assert tt.execute("SELECT * FROM pages WHERE title = 'v0'").rows == []

    def test_delete_purges_index_under_churn(self):
        tt = make_ttdb()
        for index in range(40):
            tt.execute(
                "INSERT INTO pages (page_id, title) VALUES (?, ?)",
                (index + 1, f"T{index}"),
            )
            tt.execute("DELETE FROM pages WHERE page_id = ?", (index + 1,))
        tt.gc(tt.clock.now() + 1)
        table = tt.database.table("pages")
        # One surviving (tombstone) version per row remains indexed; the
        # index is bounded by retained versions, not by all history.
        assert len(table._value_index["title"]) <= 40
        for bucket in table._value_index["title"].values():
            assert len(bucket) == 1

    def test_plain_mode_update_reindexes(self):
        db = Database()
        db.create_table(pages_schema())
        ex = Executor(db, versioned=False)
        ex.execute(
            parse("INSERT INTO pages (page_id, title) VALUES (1, 'old')"), (), ctx(1)
        )
        ex.execute(
            parse("UPDATE pages SET title = 'new' WHERE page_id = 1"), (), ctx(2)
        )
        table = db.table("pages")
        assert table.candidate_row_ids("title", "new") == {1}
        assert table.candidate_row_ids("title", "old") == set()
        res = ex.execute(
            parse("SELECT page_id FROM pages WHERE title = 'new'"), (), ctx(3)
        )
        assert res.rows == [{"page_id": 1}]


# -- O(footprint) abort --------------------------------------------------------


class TestJournaledAbort:
    def test_abort_uses_journal(self):
        tt = make_ttdb()
        first = tt.execute(
            "INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')"
        )
        tt.execute("UPDATE pages SET body = 'v2' WHERE page_id = 1")
        before = {
            (v.row_id, v.start_ts, v.end_ts, v.start_gen, v.end_gen, tuple(v.data.items()))
            for v in tt.database.table("pages").all_versions()
        }
        tt.begin_repair()
        assert tt._journal is not None
        tt.rollback_row("pages", 1, first.ts + 1)
        tt.execute_at(
            "UPDATE pages SET body = 'repaired' WHERE page_id = 1", (), ts=first.ts + 1
        )
        tt.execute_at("INSERT INTO pages (page_id, title) VALUES (9, 'new')", (), ts=2)
        assert tt._journal.created and tt._journal.fenced
        tt.abort_repair()
        after = {
            (v.row_id, v.start_ts, v.end_ts, v.start_gen, v.end_gen, tuple(v.data.items()))
            for v in tt.database.table("pages").all_versions()
        }
        assert after == before
        assert tt._journal is None

    def test_journal_matches_full_scan_abort(self):
        def scenario(tt):
            a = tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'x')")
            tt.execute("INSERT INTO pages (page_id, title, body) VALUES (2, 'B', 'y')")
            tt.execute("UPDATE pages SET body = 'x2' WHERE page_id = 1")
            tt.begin_repair()
            tt.rollback_row("pages", 1, a.ts + 1)
            tt.execute_at("DELETE FROM pages WHERE page_id = 2", (), ts=a.ts + 1)
            tt.execute_at("UPDATE pages SET body = 'fix' WHERE page_id = 1", (), ts=a.ts + 2)

        journaled = make_ttdb()
        scenario(journaled)
        journaled.abort_repair()

        scanned = make_ttdb()
        scenario(scanned)
        scanned._journal = None  # force the fallback full scan
        scanned.abort_repair()

        def dump(tt):
            return sorted(
                (v.row_id, v.start_ts, v.end_ts, v.start_gen, v.end_gen,
                 tuple(sorted(v.data.items())))
                for v in tt.database.table("pages").all_versions()
            )

        assert dump(journaled) == dump(scanned)

    def test_live_traffic_during_repair_survives_abort(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title) VALUES (1, 'A')")
        tt.begin_repair()
        tt.execute("INSERT INTO pages (page_id, title) VALUES (2, 'live')")
        tt.execute_at("UPDATE pages SET title = 'redone' WHERE page_id = 1", (), ts=1)
        tt.abort_repair()
        rows = tt.execute("SELECT title FROM pages ORDER BY title").rows
        assert [r["title"] for r in rows] == ["A", "live"]


# -- RepairQueryRunner._find ---------------------------------------------------


class TestFindIndex:
    def make_runner(self, sqls):
        from repro.ahg.records import AppRunRecord, QueryRecord
        from repro.http.message import HttpRequest, HttpResponse
        from repro.repair.controller import RepairQueryRunner
        from repro.ttdb.partitions import ReadSet

        queries = [
            QueryRecord(
                qid=index,
                run_id=1,
                seq=index,
                ts=index + 10,
                sql=sql,
                params=(),
                kind="select",
                table="pages",
                read_set=ReadSet("pages", disjuncts=None),
                snapshot=(),
                written_row_ids=(),
                written_partitions=(),
                full_table_write=False,
            )
            for index, sql in enumerate(sqls)
        ]
        run = AppRunRecord(
            run_id=1,
            ts_start=1,
            ts_end=99,
            script="s",
            loaded_files={},
            request=HttpRequest(method="GET", path="/"),
            response=HttpResponse(),
            queries=queries,
        )

        class StubController:
            pass

        return RepairQueryRunner(StubController(), run)

    def test_find_matches_in_order_with_duplicates(self):
        runner = self.make_runner(["A", "B", "A", "C", "A"])
        assert runner._find("A") == 0
        runner._cursor = 1
        assert runner._find("A") == 2
        runner._cursor = 3
        assert runner._find("A") == 4
        runner._cursor = 5
        assert runner._find("A") is None

    def test_find_wraparound_picks_earliest_unmatched(self):
        runner = self.make_runner(["A", "B", "A"])
        runner._cursor = 99
        assert runner._find("A") == 0  # wraparound: earliest unmatched
        assert runner._find("A") == 2
        assert runner._find("A") is None

    def test_find_mirrors_seed_linear_scan(self):
        import random

        rng = random.Random(7)
        sqls = [rng.choice("ABCD") for _ in range(40)]
        runner = self.make_runner(sqls)

        matched = [False] * len(sqls)

        def seed_find(cursor, sql):
            for index in range(cursor, len(sqls)):
                if not matched[index] and sqls[index] == sql:
                    return index
            for index in range(0, cursor):
                if not matched[index] and sqls[index] == sql:
                    return index
            return None

        cursor = 0
        for _ in range(60):
            sql = rng.choice("ABCDE")
            expected = seed_find(cursor, sql)
            got = runner._find(sql)
            assert got == expected, (sql, cursor)
            if got is not None:
                matched[got] = True
                cursor = got + 1
                runner._cursor = cursor


# -- fast visibility paths -----------------------------------------------------


class TestVisibilityFastPaths:
    def test_visible_version_bisects_deep_chains(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v0')")
        stamps = []
        for index in range(100):
            res = tt.execute(
                "UPDATE pages SET body = ? WHERE page_id = 1", (f"v{index + 1}",)
            )
            stamps.append(res.ts)
        table = tt.database.table("pages")
        # Historical reads land on the right version.
        for probe in (0, 25, 50, 99):
            version = table.visible_version(1, stamps[probe], 0)
            assert version.data["body"] == f"v{probe + 1}"
        # Current read takes the live-map path.
        now = tt.clock.now() + 5
        assert table.visible_version(1, now, 0).data["body"] == "v100"

    def test_live_map_stays_exact_through_repair_cycle(self):
        tt = make_ttdb()
        first = tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'x')")
        tt.begin_repair()
        tt.execute_at("UPDATE pages SET body = 'fixed' WHERE page_id = 1", (), ts=first.ts + 1)
        tt.finalize_repair()
        table = tt.database.table("pages")
        open_versions = [v for v in table.all_versions() if v.end_ts == INFINITY]
        live = [v for vs in table._live.values() for v in vs]
        assert sorted(id(v) for v in open_versions) == sorted(id(v) for v in live)
        assert tt.execute("SELECT body FROM pages").one()["body"] == "fixed"
