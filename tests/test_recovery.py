"""End-to-end intrusion recovery tests: the six scenarios of Table 2/3.

Each test stages an attack amid legitimate traffic, repairs (retroactive
patch or admin-initiated undo), and asserts the paper's ground truth:
attack effects gone, legitimate changes preserved, and the exact conflict
counts of Table 3.
"""

import pytest

from repro.workload.scenarios import WIKI, XSS_APPEND, run_scenario


def distinct_conflict_clients(result):
    return {c.client_id for c in result.conflicts}


class TestStoredXss:
    @pytest.fixture(scope="class")
    def repaired(self):
        outcome = run_scenario("stored-xss", n_users=8, n_victims=3)
        # Pre-repair sanity: the attack actually fired.
        for victim in outcome.victims:
            text = outcome.wiki.page_text(f"{victim}_notes")
            assert "xss-attack-line" in text
        result = outcome.repair()
        return outcome, result

    def test_attack_text_removed_from_victim_pages(self, repaired):
        outcome, _ = repaired
        for victim in outcome.victims:
            assert "xss-attack-line" not in outcome.wiki.page_text(f"{victim}_notes")

    def test_victim_legit_edits_preserved(self, repaired):
        outcome, _ = repaired
        for victim in outcome.victims:
            assert outcome.legit_appends[victim] in outcome.wiki.page_text(
                f"{victim}_notes"
            )

    def test_bystander_edits_preserved(self, repaired):
        outcome, _ = repaired
        for user, text in outcome.legit_appends.items():
            if user in outcome.bystanders:
                assert text in outcome.wiki.page_text(f"{user}_notes")

    def test_block_page_now_escaped(self, repaired):
        outcome, _ = repaired
        browser = outcome.warp.client("post-repair-checker")
        visit = browser.open(f"{WIKI}/special_block.php?ip=6.6.6.6")
        assert not visit.document.scripts()

    def test_zero_conflicts(self, repaired):
        _, result = repaired
        assert distinct_conflict_clients(result) == set()

    def test_repair_completed(self, repaired):
        _, result = repaired
        assert result.ok and not result.aborted


class TestReflectedXss:
    @pytest.fixture(scope="class")
    def repaired(self):
        outcome = run_scenario("reflected-xss", n_users=8, n_victims=3)
        for victim in outcome.victims:
            assert "xss-attack-line" in outcome.wiki.page_text(f"{victim}_notes")
        result = outcome.repair()
        return outcome, result

    def test_attack_text_removed(self, repaired):
        outcome, _ = repaired
        for victim in outcome.victims:
            assert "xss-attack-line" not in outcome.wiki.page_text(f"{victim}_notes")

    def test_victim_edits_preserved(self, repaired):
        outcome, _ = repaired
        for victim in outcome.victims:
            assert outcome.legit_appends[victim] in outcome.wiki.page_text(
                f"{victim}_notes"
            )

    def test_zero_conflicts(self, repaired):
        _, result = repaired
        assert distinct_conflict_clients(result) == set()


class TestSqlInjection:
    @pytest.fixture(scope="class")
    def repaired(self):
        outcome = run_scenario("sql-injection", n_users=8, n_victims=3)
        assert outcome.wiki.page_text("Main_Page").endswith("attack")
        result = outcome.repair()
        return outcome, result

    def test_injected_suffix_removed_everywhere(self, repaired):
        outcome, _ = repaired
        assert "attack" not in outcome.wiki.page_text("Main_Page")
        for user in outcome.deployment.users:
            assert "attack" not in outcome.wiki.page_text(f"{user}_notes")

    def test_legit_edits_preserved(self, repaired):
        outcome, _ = repaired
        for user, text in outcome.legit_appends.items():
            assert text in outcome.wiki.page_text(f"{user}_notes")

    def test_zero_conflicts(self, repaired):
        _, result = repaired
        assert distinct_conflict_clients(result) == set()


class TestCsrf:
    @pytest.fixture(scope="class")
    def repaired(self):
        outcome = run_scenario("csrf", n_users=8, n_victims=3)
        # Pre-repair: victims' edits landed, attributed to the attacker.
        text = outcome.wiki.page_text("Projects")
        for victim in outcome.victims:
            assert f"csrf-edit-{victim}" in text
        assert outcome.wiki.page_editor("Projects") == "attacker"
        result = outcome.repair()
        return outcome, result

    def test_victim_edits_reattributed(self, repaired):
        outcome, _ = repaired
        text = outcome.wiki.page_text("Projects")
        for victim in outcome.victims:
            assert f"csrf-edit-{victim}" in text
        # The final edit is now attributed to the victim who made it.
        assert outcome.wiki.page_editor("Projects") in outcome.victims

    def test_attacker_sessions_removed(self, repaired):
        outcome, _ = repaired
        rows = outcome.warp.ttdb.execute(
            "SELECT user_name FROM sessions WHERE user_name = 'attacker'"
        ).rows
        # Only the attacker's own login survives (from planting the attack).
        assert len(rows) <= 1

    def test_victim_cookies_queued_for_invalidation(self, repaired):
        outcome, _ = repaired
        invalidated = outcome.warp.server.cookie_invalidation
        for victim in outcome.victims:
            assert outcome.deployment.client_id(victim) in invalidated

    def test_zero_conflicts(self, repaired):
        _, result = repaired
        assert distinct_conflict_clients(result) == set()


class TestClickjacking:
    @pytest.fixture(scope="class")
    def repaired(self):
        outcome = run_scenario("clickjacking", n_users=8, n_victims=3)
        assert "clickjacked spam" in outcome.wiki.page_text("Projects")
        result = outcome.repair()
        return outcome, result

    def test_three_victims_have_conflicts(self, repaired):
        outcome, result = repaired
        expected = {outcome.deployment.client_id(v) for v in outcome.victims}
        assert distinct_conflict_clients(result) == expected

    def test_resolving_conflicts_by_cancel_removes_spam(self, repaired):
        outcome, result = repaired
        for conflict in list(outcome.warp.conflicts.pending()):
            outcome.warp.resolve_conflict_by_cancel(conflict)
        assert "clickjacked spam" not in outcome.wiki.page_text("Projects")

    def test_bystander_edits_survive_resolution(self, repaired):
        outcome, _ = repaired
        for user, text in outcome.legit_appends.items():
            assert text in outcome.wiki.page_text(f"{user}_notes")


class TestAclError:
    @pytest.fixture(scope="class")
    def repaired(self):
        outcome = run_scenario("acl-error", n_users=8)
        assert outcome.wiki.page_text("Secret") == "mallory took over this page"
        result = outcome.repair()
        return outcome, result

    def test_unauthorized_edit_reverted(self, repaired):
        outcome, _ = repaired
        assert outcome.wiki.page_text("Secret") == "restricted plans"

    def test_grant_removed(self, repaired):
        outcome, _ = repaired
        assert outcome.victims[0] not in outcome.wiki.acl_users("Secret")

    def test_exactly_one_conflict_for_mallory(self, repaired):
        outcome, result = repaired
        mallory = outcome.victims[0]
        assert distinct_conflict_clients(result) == {
            outcome.deployment.client_id(mallory)
        }

    def test_bystander_edits_preserved(self, repaired):
        outcome, _ = repaired
        for user, text in outcome.legit_appends.items():
            assert text in outcome.wiki.page_text(f"{user}_notes")
