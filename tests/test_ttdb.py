"""Tests for the time-travel database facade: versioning, generations,
rollback, abort, GC, and the multi-statement (injection) path."""

import pytest

from repro.core.clock import INFINITY, LogicalClock
from repro.core.errors import RepairError
from repro.db.storage import Column, Database, TableSchema
from repro.ttdb.timetravel import TimeTravelDB, split_statements


def make_ttdb(enabled=True):
    db = Database()
    clock = LogicalClock()
    tt = TimeTravelDB(db, clock, enabled=enabled)
    tt.create_table(
        TableSchema(
            name="pages",
            columns=(Column("page_id", "int"), Column("title"), Column("body")),
            row_id_column="page_id",
            partition_columns=("title",),
        )
    )
    return tt


class TestNormalExecution:
    def test_insert_select_roundtrip(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        res = tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        assert res.rows == [{"body": "v1"}]
        assert res.read_set.disjuncts == (frozenset({("title", "A")}),)

    def test_timestamps_strictly_increase(self):
        tt = make_ttdb()
        a = tt.execute("INSERT INTO pages (page_id, title) VALUES (1, 'A')")
        b = tt.execute("SELECT * FROM pages")
        assert b.ts > a.ts

    def test_helpers_one_and_scalar(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title) VALUES (1, 'A')")
        assert tt.execute("SELECT COUNT(*) FROM pages").scalar() == 1
        assert tt.execute("SELECT title FROM pages").one() == {"title": "A"}
        assert tt.execute("SELECT * FROM pages WHERE title = 'zz'").one() is None

    def test_full_table_write_flagged(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'x')")
        res = tt.execute("UPDATE pages SET body = body || '!'")
        assert res.full_table_write
        res2 = tt.execute("UPDATE pages SET body = 'y' WHERE title = 'A'")
        assert not res2.full_table_write


class TestScriptExecution:
    def test_split_statements(self):
        parts = split_statements("SELECT * FROM a; UPDATE b SET x = 1;")
        assert parts == ["SELECT * FROM a", "UPDATE b SET x = 1"]

    def test_split_respects_strings(self):
        parts = split_statements("SELECT * FROM a WHERE x = 'a;b'; SELECT * FROM c")
        assert len(parts) == 2
        assert "a;b" in parts[0]

    def test_split_drops_pure_comment_pieces(self):
        parts = split_statements("SELECT * FROM a; -- nothing here")
        assert parts == ["SELECT * FROM a"]

    def test_injection_piggyback_executes(self):
        # The §8.5 SQL-injection payload: a second statement rides along.
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'text')")
        results = tt.execute_script(
            "SELECT * FROM pages WHERE title = 'en'; "
            "UPDATE pages SET body = body || 'attack'"
        )
        assert len(results) == 2
        assert tt.execute("SELECT body FROM pages").one()["body"] == "textattack"


class TestRepairGenerations:
    def test_begin_repair_increments_generation(self):
        tt = make_ttdb()
        gen = tt.begin_repair()
        assert gen == 1
        assert tt.current_gen == 0

    def test_cannot_begin_twice(self):
        tt = make_ttdb()
        tt.begin_repair()
        with pytest.raises(RepairError):
            tt.begin_repair()

    def test_repair_requires_enabled(self):
        tt = make_ttdb(enabled=False)
        with pytest.raises(RepairError):
            tt.begin_repair()

    def test_execute_at_requires_repair(self):
        tt = make_ttdb()
        with pytest.raises(RepairError):
            tt.execute_at("SELECT * FROM pages", (), ts=1)

    def test_repair_then_finalize_switches_view(self):
        tt = make_ttdb()
        first = tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'bad')")
        tt.begin_repair()
        tt.execute_at("UPDATE pages SET body = 'good' WHERE page_id = 1", (), ts=first.ts)
        # Live view unchanged during repair.
        assert tt.execute("SELECT body FROM pages").one()["body"] == "bad"
        tt.finalize_repair()
        assert tt.execute("SELECT body FROM pages").one()["body"] == "good"

    def test_abort_restores_exact_state(self):
        tt = make_ttdb()
        first = tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        tt.execute("UPDATE pages SET body = 'v2' WHERE page_id = 1")
        before = tt.database.table("pages").version_count
        tt.begin_repair()
        tt.rollback_row("pages", 1, first.ts + 1)
        tt.execute_at("UPDATE pages SET body = 'repaired' WHERE page_id = 1", (), ts=first.ts + 1)
        tt.abort_repair()
        assert tt.database.table("pages").version_count == before
        assert tt.execute("SELECT body FROM pages").one()["body"] == "v2"
        # History intact too: read at the old time still sees v1.
        versions = tt.database.table("pages").row_versions(1)
        assert any(v.data["body"] == "v1" for v in versions)

    def test_rollback_restores_older_value_in_repair_gen(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        second = tt.execute("UPDATE pages SET body = 'v2' WHERE page_id = 1")
        tt.begin_repair()
        touched = tt.rollback_row("pages", 1, second.ts)
        assert ("pages", "title", "A") in touched
        tt.finalize_repair()
        assert tt.execute("SELECT body FROM pages").one()["body"] == "v1"

    def test_rollback_of_row_created_after_ts_removes_it(self):
        tt = make_ttdb()
        created = tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'x')")
        tt.begin_repair()
        tt.rollback_row("pages", 1, created.ts)
        tt.finalize_repair()
        assert tt.execute("SELECT * FROM pages").rows == []

    def test_live_generation_sees_no_repair_effects_mid_repair(self):
        tt = make_ttdb()
        created = tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'x')")
        tt.begin_repair()
        tt.rollback_row("pages", 1, created.ts)
        assert len(tt.execute("SELECT * FROM pages").rows) == 1

    def test_historical_read_during_repair_uses_continuous_versioning(self):
        # Re-executed reads on untouched rows see the value from *their*
        # original time (paper §4.2).
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        mid = tt.execute("SELECT * FROM pages")
        tt.execute("UPDATE pages SET body = 'v2' WHERE page_id = 1")
        tt.begin_repair()
        res = tt.execute_at("SELECT body FROM pages WHERE title = 'A'", (), ts=mid.ts)
        assert res.one()["body"] == "v1"

    def test_second_repair_round_trip(self):
        tt = make_ttdb()
        first = tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        tt.clock.advance(10)  # repairs below re-execute at *historical* times
        tt.begin_repair()
        tt.execute_at("UPDATE pages SET body = 'r1' WHERE page_id = 1", (), ts=first.ts + 1)
        tt.finalize_repair()
        tt.begin_repair()
        tt.execute_at("UPDATE pages SET body = 'r2' WHERE page_id = 1", (), ts=first.ts + 2)
        tt.finalize_repair()
        assert tt.current_gen == 2
        assert tt.execute("SELECT body FROM pages").one()["body"] == "r2"


class TestGc:
    def test_gc_drops_old_versions(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        for i in range(5):
            tt.execute("UPDATE pages SET body = ? WHERE page_id = 1", (f"v{i+2}",))
        horizon = tt.clock.now() + 1
        removed = tt.gc(horizon)
        assert removed == 5
        assert tt.execute("SELECT body FROM pages").one()["body"] == "v6"

    def test_gc_drops_superseded_generations(self):
        tt = make_ttdb()
        first = tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        tt.begin_repair()
        tt.execute_at("UPDATE pages SET body = 'fixed' WHERE page_id = 1", (), ts=first.ts + 1)
        tt.finalize_repair()
        tt.gc(0)
        # Old-generation fenced versions are gone; repaired value remains.
        assert tt.execute("SELECT body FROM pages").one()["body"] == "fixed"
        for version in tt.database.table("pages").all_versions():
            assert version.end_gen >= tt.current_gen
