"""Deterministic interleaving harness for online repair.

``CoopSchedule`` drives load-generator traffic and repair worklist steps
in a *seeded cooperative interleaving*: it installs itself as the repair
controller's ``step_hook`` and, after every worklist item, issues a
seeded number of traffic operations inline.  No real threads — the whole
interleaving is a deterministic function of the seed, so a failing seed
replays exactly.

The harness also captures the **serialization order** the online run
induces: requests served during the repair in service order, then the
queued requests in arrival order (re-applied at finalize), then whatever
traffic was issued after the repair returned.  The equivalence property
(tests/test_online_repair.py) replays that same serialization against an
identically-staged deployment that repaired *quiesced*, and compares the
final version store, the canonically-renumbered graph, the re-execution
counters and every response byte.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.http.message import HttpRequest, HttpResponse


class TrafficOp:
    """One scripted request: deterministic content, replayable anywhere."""

    def __init__(self, index: int, client_name: str, request: HttpRequest) -> None:
        self.index = index
        self.client_name = client_name
        self.request = request
        #: Filled by the run that issues the op.
        self.status: Optional[int] = None
        self.ticket: Optional[int] = None
        self.response: Optional[HttpResponse] = None
        self.during_repair = False

    def issue(self, clients: Dict[str, object]) -> HttpResponse:
        client = clients[self.client_name]
        response = client.send(self.request.copy())
        self.status = response.status
        self.response = response
        if response.status == 202 and "X-Warp-Queued" in response.headers:
            self.ticket = int(response.headers["X-Warp-Queued"])
        return response


def scripted_ops(
    rng: random.Random,
    client_names: List[str],
    pages: List[str],
    n_ops: int,
    cookies: Dict[str, Dict[str, str]],
    append_weight: int = 1,
    view_weight: int = 2,
) -> List[TrafficOp]:
    """Build a deterministic traffic script.  Each client edits only its
    pinned page (``client_names`` and ``pages`` zip round-robin), so the
    script itself is free of app-level write races."""
    ops: List[TrafficOp] = []
    kinds = ["append"] * append_weight + ["view"] * view_weight
    for index in range(n_ops):
        who = rng.randrange(len(client_names))
        name = client_names[who]
        page = pages[who % len(pages)]
        kind = rng.choice(kinds)
        if kind == "append":
            request = HttpRequest(
                "POST",
                "/edit.php",
                params={"title": page, "append": f"\nop{index}."},
                cookies=dict(cookies[name]),
                headers={"X-Warp-Client": f"{name}-load"},
            )
        else:
            # Reads are marker-free: repeat GETs must be byte-identical so
            # the response cache sees realistic repeat traffic (and cached
            # vs uncached runs can be compared op-for-op).
            request = HttpRequest(
                "GET",
                "/edit.php",
                params={"title": page},
                cookies=dict(cookies[name]),
                headers={"X-Warp-Client": f"{name}-load"},
            )
        ops.append(TrafficOp(index, name, request))
    return ops


class CoopSchedule:
    """Seeded cooperative interleaver of repair steps and traffic ops."""

    def __init__(
        self,
        seed: int,
        ops: List[TrafficOp],
        clients: Dict[str, object],
        max_burst: int = 2,
    ) -> None:
        self._rng = random.Random(seed)
        self._ops = ops
        self._clients = clients
        self._max_burst = max_burst
        self._cursor = 0
        #: Ops in the order they were issued *and served* (not queued).
        self.served: List[TrafficOp] = []
        #: Ops that came back 202 with a ticket, in issue order.
        self.queued: List[TrafficOp] = []
        self.during_repair = 0

    # -- step_hook --------------------------------------------------------

    def hook(self) -> None:
        """Called after each repair worklist item: issue 0..max_burst ops."""
        for _ in range(self._rng.randint(0, self._max_burst)):
            if not self._issue_next(during_repair=True):
                return

    def drain(self) -> None:
        """Issue whatever the repair window didn't consume (post-repair)."""
        while self._issue_next(during_repair=False):
            pass

    def _issue_next(self, during_repair: bool) -> bool:
        if self._cursor >= len(self._ops):
            return False
        op = self._ops[self._cursor]
        self._cursor += 1
        op.during_repair = during_repair
        op.issue(self._clients)
        if during_repair:
            self.during_repair += 1
        if op.ticket is not None:
            self.queued.append(op)
        else:
            self.served.append(op)
        return True

    def serialization(self) -> List[TrafficOp]:
        """The serial order the online execution is equivalent to: ops
        served during the repair in service order, then the queued ops at
        their re-application point (finalize drains them before the repair
        entry point returns), then the post-repair ops."""
        in_repair = [op for op in self.served if op.during_repair]
        post = [op for op in self.served if not op.during_repair]
        return in_repair + self.queued + post
