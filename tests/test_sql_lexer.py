"""Unit tests for the SQL tokenizer."""

import pytest

from repro.core.errors import SqlError
from repro.db.sql.lexer import Token, tokenize


def kinds(sql):
    return [tok.kind for tok in tokenize(sql)]


def values(sql):
    return [tok.value for tok in tokenize(sql)[:-1]]


class TestTokenize:
    def test_simple_select(self):
        toks = tokenize("SELECT a FROM t")
        assert [t.kind for t in toks] == ["KEYWORD", "IDENT", "KEYWORD", "IDENT", "EOF"]

    def test_keywords_case_insensitive(self):
        assert values("select") == ["SELECT"]
        assert values("SeLeCt") == ["SELECT"]

    def test_identifiers_preserve_case(self):
        assert values("PageContent") == ["PageContent"]

    def test_integer_literal(self):
        toks = tokenize("42")
        assert toks[0].kind == "NUMBER"
        assert toks[0].value == 42
        assert isinstance(toks[0].value, int)

    def test_float_literal(self):
        toks = tokenize("4.25")
        assert toks[0].value == pytest.approx(4.25)
        assert isinstance(toks[0].value, float)

    def test_string_literal(self):
        toks = tokenize("'hello world'")
        assert toks[0].kind == "STRING"
        assert toks[0].value == "hello world"

    def test_string_with_escaped_quote(self):
        toks = tokenize("'it''s'")
        assert toks[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_concat_operator(self):
        assert values("a || b") == ["a", "||", "b"]

    def test_not_equal_variants(self):
        assert values("a <> b") == ["a", "<>", "b"]
        assert values("a != b") == ["a", "!=", "b"]

    def test_comparison_operators(self):
        assert values("< <= > >= =") == ["<", "<=", ">", ">=", "="]

    def test_question_mark_param(self):
        toks = tokenize("WHERE a = ?")
        assert toks[3].is_op("?")

    def test_line_comment_skipped(self):
        assert values("SELECT -- comment here\n a") == ["SELECT", "a"]

    def test_unexpected_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT @")

    def test_underscore_identifier(self):
        assert values("old_text") == ["old_text"]

    def test_dotted_name_tokens(self):
        assert values("t.col") == ["t", ".", "col"]

    def test_eof_token_always_last(self):
        assert tokenize("")[-1].kind == "EOF"
        assert tokenize("a")[-1].kind == "EOF"

    def test_is_keyword_helper(self):
        tok = Token("KEYWORD", "SELECT", 0)
        assert tok.is_keyword("SELECT")
        assert not tok.is_keyword("FROM")
