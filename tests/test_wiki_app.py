"""Functional tests for the wiki application under normal execution."""

import pytest

from repro.apps.wiki import WikiApp, patch_for
from repro.warp import WarpSystem

WIKI = "http://wiki.test"


@pytest.fixture
def deployment():
    warp = WarpSystem()
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    wiki.seed_user("alice", "pw-alice")
    wiki.seed_user("bob", "pw-bob")
    wiki.seed_user("admin", "pw-admin", admin=True)
    wiki.seed_page("Main_Page", "welcome to the wiki", owner="admin", public=True)
    wiki.seed_page("Secret", "classified", owner="admin", public=False)
    return warp, wiki


def login(warp, name, password):
    browser = warp.client(f"{name}-browser")
    browser.open(f"{WIKI}/login.php")
    browser.type_into("input[name=wpName]", name)
    browser.type_into("input[name=wpPassword]", password)
    visit = browser.submit("#loginform")
    return browser, visit


class TestViewing:
    def test_view_existing_page(self, deployment):
        warp, _ = deployment
        browser = warp.client()
        visit = browser.open(f"{WIKI}/index.php?title=Main_Page")
        assert "welcome to the wiki" in visit.document.body_text()

    def test_view_missing_page(self, deployment):
        warp, _ = deployment
        browser = warp.client()
        visit = browser.open(f"{WIKI}/index.php?title=Nope")
        assert visit.document.get_element_by_id("missing") is not None

    def test_private_page_hidden_from_anonymous(self, deployment):
        warp, _ = deployment
        browser = warp.client()
        visit = browser.open(f"{WIKI}/index.php?title=Secret")
        assert "classified" not in visit.document.body_text()

    def test_second_view_served_from_cache(self, deployment):
        warp, _ = deployment
        browser = warp.client()
        browser.open(f"{WIKI}/index.php?title=Main_Page")
        cached = warp.ttdb.execute(
            "SELECT value FROM objectcache WHERE cache_key = 'page:Main_Page'"
        ).one()
        assert cached is not None
        visit = browser.open(f"{WIKI}/index.php?title=Main_Page")
        assert "welcome to the wiki" in visit.document.body_text()


class TestLogin:
    def test_login_sets_session(self, deployment):
        warp, wiki = deployment
        browser, visit = login(warp, "alice", "pw-alice")
        assert "Welcome, alice" in visit.document.body_text()
        token = browser.cookies_for(WIKI)["sess"]
        assert wiki.session_user(token) == "alice"

    def test_bad_password_rejected(self, deployment):
        warp, _ = deployment
        browser, visit = login(warp, "alice", "wrong")
        assert visit.response.status == 403
        assert "sess" not in browser.cookies_for(WIKI)

    def test_header_shows_username_after_login(self, deployment):
        warp, _ = deployment
        browser, _ = login(warp, "alice", "pw-alice")
        visit = browser.open(f"{WIKI}/index.php?title=Main_Page")
        assert visit.document.get_element_by_id("username").text_content() == "alice"

    def test_logout_clears_session(self, deployment):
        warp, wiki = deployment
        browser, _ = login(warp, "alice", "pw-alice")
        token = browser.cookies_for(WIKI)["sess"]
        browser.open(f"{WIKI}/logout.php")
        assert "sess" not in browser.cookies_for(WIKI)
        assert wiki.session_user(token) is None


class TestEditing:
    def test_edit_public_page(self, deployment):
        warp, wiki = deployment
        browser, _ = login(warp, "alice", "pw-alice")
        browser.open(f"{WIKI}/edit.php?title=Main_Page")
        browser.type_into("textarea", "edited by alice")
        result = browser.click("input[name=save]")
        assert result.document.get_element_by_id("saved") is not None
        assert wiki.page_text("Main_Page") == "edited by alice"
        assert wiki.page_editor("Main_Page") == "alice"

    def test_edit_invalidates_cache(self, deployment):
        warp, wiki = deployment
        browser, _ = login(warp, "alice", "pw-alice")
        browser.open(f"{WIKI}/index.php?title=Main_Page")  # populate cache
        browser.open(f"{WIKI}/edit.php?title=Main_Page")
        browser.type_into("textarea", "new body")
        browser.click("input[name=save]")
        visit = browser.open(f"{WIKI}/index.php?title=Main_Page")
        assert "new body" in visit.document.body_text()

    def test_create_page_grants_creator_acl(self, deployment):
        warp, wiki = deployment
        browser, _ = login(warp, "bob", "pw-bob")
        browser.open(f"{WIKI}/edit.php?title=Bobs_Page")
        browser.type_into("textarea", "bob content")
        browser.click("input[name=save]")
        assert wiki.page_text("Bobs_Page") == "bob content"
        assert "bob" in wiki.acl_users("Bobs_Page")

    def test_edit_private_page_denied(self, deployment):
        warp, wiki = deployment
        browser, _ = login(warp, "bob", "pw-bob")
        visit = browser.open(f"{WIKI}/edit.php?title=Secret")
        assert visit.document.get_element_by_id("error") is not None
        assert wiki.page_text("Secret") == "classified"

    def test_append_mode(self, deployment):
        warp, wiki = deployment
        browser, _ = login(warp, "alice", "pw-alice")
        browser.open(f"{WIKI}/edit.php?title=Main_Page")
        browser.type_into("textarea", "base text")
        browser.click("input[name=save]")
        # The append path is what the XSS payloads use.
        import repro.http.message as msg

        browser._script_request = browser._script_request  # appease lint
        visit = browser.open(f"{WIKI}/index.php?title=Main_Page")
        assert "base text" in visit.document.body_text()


class TestAcl:
    def test_admin_can_grant(self, deployment):
        warp, wiki = deployment
        browser, _ = login(warp, "admin", "pw-admin")
        browser.open(f"{WIKI}/acl.php")
        browser.type_into("input[name=title]", "Secret")
        browser.type_into("input[name=user]", "bob")
        browser.click("input[name=apply]")
        assert "bob" in wiki.acl_users("Secret")

    def test_non_admin_cannot_grant(self, deployment):
        warp, wiki = deployment
        browser, _ = login(warp, "bob", "pw-bob")
        visit = browser.open(f"{WIKI}/acl.php")
        assert visit.response.status == 403

    def test_granted_user_can_edit(self, deployment):
        warp, wiki = deployment
        admin, _ = login(warp, "admin", "pw-admin")
        admin.open(f"{WIKI}/acl.php")
        admin.type_into("input[name=title]", "Secret")
        admin.type_into("input[name=user]", "bob")
        admin.click("input[name=apply]")

        bob, _ = login(warp, "bob", "pw-bob")
        bob.open(f"{WIKI}/edit.php?title=Secret")
        bob.type_into("textarea", "bob was here")
        bob.click("input[name=save]")
        assert wiki.page_text("Secret") == "bob was here"


class TestVulnerableSurfaces:
    def test_stored_xss_reason_rendered_raw(self, deployment):
        warp, _ = deployment
        attacker = warp.client("attacker")
        attacker.open(f"{WIKI}/special_block.php?ip=1.2.3.4")
        # Post a block whose reason carries a script payload.
        warp_req_visit = attacker.open(f"{WIKI}/special_block.php?ip=1.2.3.4")
        payload = "<script>log('pwned');</script>"
        from repro.http.message import HttpRequest

        response = warp.server.handle(
            HttpRequest("POST", "/special_block.php", params={"ip": "1.2.3.4", "reason": payload})
        )
        victim = warp.client("victim")
        visit = victim.open(f"{WIKI}/special_block.php?ip=1.2.3.4")
        assert visit.document.scripts(), "vulnerable page must embed the script"

    def test_patched_block_page_escapes_reason(self, deployment):
        warp, _ = deployment
        from repro.http.message import HttpRequest

        warp.server.handle(
            HttpRequest(
                "POST",
                "/special_block.php",
                params={"ip": "9.9.9.9", "reason": "<script>log('x');</script>"},
            )
        )
        patch = patch_for("stored-xss")
        warp.scripts.patch(patch.file, patch.build())
        victim = warp.client("victim")
        visit = victim.open(f"{WIKI}/special_block.php?ip=9.9.9.9")
        assert not visit.document.scripts()
        assert "<script>" in visit.document.body_text()

    def test_sql_injection_piggyback(self, deployment):
        warp, wiki = deployment
        attacker = warp.client("attacker")
        inject = (
            "en'; UPDATE pagecontent SET old_text = old_text || '-attack'; --"
        )
        from repro.http.message import build_url

        attacker.open(build_url(WIKI, "/special_maintenance.php", {"thelang": inject}))
        assert wiki.page_text("Main_Page").endswith("-attack")

    def test_patched_maintenance_blocks_injection(self, deployment):
        warp, wiki = deployment
        patch = patch_for("sql-injection")
        warp.scripts.patch(patch.file, patch.build())
        attacker = warp.client("attacker")
        inject = "en'; UPDATE pagecontent SET old_text = 'gone'; --"
        from repro.http.message import build_url

        attacker.open(build_url(WIKI, "/special_maintenance.php", {"thelang": inject}))
        assert wiki.page_text("Main_Page") == "welcome to the wiki"

    def test_reflected_xss_in_installer(self, deployment):
        warp, _ = deployment
        from repro.http.message import build_url

        victim = warp.client("victim")
        url = build_url(
            WIKI, "/config/index.php", {"wgDBname": "<script>log('r');</script>"}
        )
        visit = victim.open(url)
        assert visit.document.scripts()

    def test_clickjacking_header_absent_until_patched(self, deployment):
        warp, _ = deployment
        browser = warp.client()
        visit = browser.open(f"{WIKI}/index.php?title=Main_Page")
        assert "X-Frame-Options" not in visit.response.headers
        patch = patch_for("clickjacking")
        warp.scripts.patch(patch.file, patch.build())
        visit = browser.open(f"{WIKI}/index.php?title=Main_Page")
        assert visit.response.headers.get("X-Frame-Options") == "DENY"
