"""Unit tests for the logged HTTP server: routing, cookie invalidation,
conflict surfacing, suspension, and repair-concurrent bookkeeping."""

import pytest

from repro.apps.wiki import WikiApp
from repro.http.message import HttpRequest, build_url, parse_url
from repro.warp import WarpSystem

WIKI = "http://wiki.test"


@pytest.fixture
def warp():
    system = WarpSystem(origin=WIKI)
    wiki = WikiApp(system.ttdb, system.scripts, system.server)
    wiki.install()
    wiki.seed_user("alice", "pw")
    wiki.seed_page("Main_Page", "hello", owner="alice")
    return system


def request(path, **kwargs):
    return HttpRequest("GET", path, **kwargs)


class TestUrlHandling:
    def test_parse_absolute(self):
        origin, path, params = parse_url("http://wiki.test/edit.php?title=A&x=1")
        assert origin == "http://wiki.test"
        assert path == "/edit.php"
        assert params == {"title": "A", "x": "1"}

    def test_parse_relative(self):
        origin, path, params = parse_url("/index.php?title=B")
        assert origin == ""
        assert path == "/index.php"

    def test_build_roundtrip(self):
        url = build_url(WIKI, "/index.php", {"title": "My Page"})
        _, path, params = parse_url(url)
        assert params["title"] == "My Page"

    def test_request_key_ignores_headers(self):
        a = HttpRequest("GET", "/p", params={"x": "1"}, headers={"X-Warp-Client": "a"})
        b = HttpRequest("GET", "/p", params={"x": "1"}, headers={"X-Warp-Client": "b"})
        assert a.key() == b.key()


class TestRouting:
    def test_routed_request_served(self, warp):
        response = warp.server.handle(request("/index.php", params={"title": "Main_Page"}))
        assert response.status == 200
        assert "hello" in response.body

    def test_unrouted_request_404(self, warp):
        assert warp.server.handle(request("/nope.php")).status == 404

    def test_runs_recorded_in_graph(self, warp):
        before = warp.graph.n_runs
        warp.server.handle(request("/index.php", params={"title": "Main_Page"}))
        assert warp.graph.n_runs == before + 1

    def test_recording_can_be_disabled(self, warp):
        warp.server.recording = False
        before = warp.graph.n_runs
        warp.server.handle(request("/index.php", params={"title": "Main_Page"}))
        assert warp.graph.n_runs == before


class TestSuspension:
    def test_suspended_server_returns_503(self, warp):
        warp.server.suspended = True
        assert warp.server.handle(request("/index.php")).status == 503

    def test_resumes_after_suspension(self, warp):
        warp.server.suspended = True
        warp.server.suspended = False
        assert warp.server.handle(
            request("/index.php", params={"title": "Main_Page"})
        ).status == 200


class TestCookieInvalidation:
    def test_queued_invalidation_strips_and_deletes_cookie(self, warp):
        warp.server.cookie_invalidation.add("client-1")
        req = request(
            "/index.php",
            params={"title": "Main_Page"},
            cookies={"sess": "stale-token"},
            headers={"X-Warp-Client": "client-1", "X-Warp-Visit": "1", "X-Warp-Request": "1"},
        )
        response = warp.server.handle(req)
        assert response.set_cookies.get("sess", "kept") is None
        # One-shot: the next request is untouched.
        assert "client-1" not in warp.server.cookie_invalidation

    def test_other_clients_unaffected(self, warp):
        warp.server.cookie_invalidation.add("client-1")
        req = request(
            "/index.php",
            params={"title": "Main_Page"},
            cookies={"sess": "tok"},
            headers={"X-Warp-Client": "client-2", "X-Warp-Visit": "1", "X-Warp-Request": "1"},
        )
        response = warp.server.handle(req)
        assert "sess" not in response.set_cookies


class TestConflictSurfacing:
    def test_pending_conflict_advertised_in_header(self, warp):
        from repro.repair.conflicts import Conflict

        warp.conflicts.add(Conflict("client-9", 4, "/edit.php", "target gone"))
        req = request(
            "/index.php",
            params={"title": "Main_Page"},
            headers={"X-Warp-Client": "client-9", "X-Warp-Visit": "2", "X-Warp-Request": "1"},
        )
        response = warp.server.handle(req)
        assert response.headers.get("X-Warp-Conflicts") == "1"

    def test_no_header_without_conflicts(self, warp):
        req = request(
            "/index.php",
            params={"title": "Main_Page"},
            headers={"X-Warp-Client": "clean", "X-Warp-Visit": "1", "X-Warp-Request": "1"},
        )
        assert "X-Warp-Conflicts" not in warp.server.handle(req).headers


class TestRepairConcurrency:
    def test_pending_runs_tracked_during_repair(self, warp):
        warp.server.repair_active = True
        warp.server.pending_during_repair = []
        warp.server.handle(request("/index.php", params={"title": "Main_Page"}))
        assert len(warp.server.pending_during_repair) == 1

    def test_not_tracked_outside_repair(self, warp):
        warp.server.handle(request("/index.php", params={"title": "Main_Page"}))
        assert warp.server.pending_during_repair == []
