"""System-level invariants of repair.

These are the properties the paper's guarantees rest on (§2): repaired
state is deterministic for a deterministic history, repair never perturbs
the live generation until finalize, and an aborted repair is a perfect
no-op.
"""

import pytest

from repro.apps.wiki.patches import patch_for
from repro.workload.scenarios import run_scenario


class TestDeterminism:
    @pytest.mark.parametrize("attack", ["stored-xss", "csrf", "acl-error"])
    def test_repair_counts_are_deterministic(self, attack):
        rows = []
        for _trial in range(2):
            outcome = run_scenario(attack, n_users=12, n_victims=2, seed=42)
            result = outcome.repair()
            rows.append(
                (
                    result.stats.visits_reexecuted,
                    result.stats.runs_reexecuted,
                    result.stats.queries_reexecuted,
                    result.stats.runs_canceled,
                    len(result.conflicts),
                )
            )
        assert rows[0] == rows[1]

    def test_repaired_state_is_deterministic(self):
        states = []
        for _trial in range(2):
            outcome = run_scenario("stored-xss", n_users=8, n_victims=2, seed=7)
            outcome.repair()
            states.append(
                {
                    user: outcome.wiki.page_text(f"{user}_notes")
                    for user in outcome.deployment.users
                }
            )
        assert states[0] == states[1]


class TestGenerationIsolation:
    def test_live_state_untouched_until_finalize(self):
        """Mid-repair, the current generation serves the pre-repair view."""
        outcome = run_scenario("stored-xss", n_users=6, n_victims=2)
        victim = outcome.victims[0]
        attacked_text = outcome.wiki.page_text(f"{victim}_notes")
        assert "xss-attack-line" in attacked_text

        controller = outcome.warp._controller()
        controller._begin()
        spec = patch_for("stored-xss")
        controller.scripts.patch(spec.file, spec.build())
        for run in controller.graph.runs_loading_file(spec.file, 0):
            controller._escalate(run.run_id)
        controller._process()
        # Repair fully processed but not finalized: live view unchanged.
        assert outcome.wiki.page_text(f"{victim}_notes") == attacked_text
        controller._finalize()
        assert "xss-attack-line" not in outcome.wiki.page_text(f"{victim}_notes")

    def test_abort_is_a_perfect_noop_on_data(self):
        outcome = run_scenario("stored-xss", n_users=6, n_victims=2)
        before = {
            user: outcome.wiki.page_text(f"{user}_notes")
            for user in outcome.deployment.users
        }
        version_count = outcome.warp.ttdb.total_versions()

        controller = outcome.warp._controller()
        controller._begin()
        spec = patch_for("stored-xss")
        controller.scripts.patch(spec.file, spec.build())
        for run in controller.graph.runs_loading_file(spec.file, 0):
            controller._escalate(run.run_id)
        controller._process()
        controller._abort()

        after = {
            user: outcome.wiki.page_text(f"{user}_notes")
            for user in outcome.deployment.users
        }
        assert before == after
        assert outcome.warp.ttdb.total_versions() == version_count
        assert outcome.warp.ttdb.repair_gen is None
        assert outcome.warp.ttdb.current_gen == 0
