"""Unit tests for core primitives: clock, IDs, repair stats timing."""

import random

import pytest

from repro.core.clock import INFINITY, LogicalClock
from repro.core.ids import IdAllocator, random_token
from repro.repair.stats import PhaseTimer, RepairStats


class TestLogicalClock:
    def test_tick_strictly_increases(self):
        clock = LogicalClock()
        values = [clock.tick() for _ in range(5)]
        assert values == sorted(set(values))

    def test_now_does_not_advance(self):
        clock = LogicalClock()
        clock.tick()
        assert clock.now() == clock.now()

    def test_advance(self):
        clock = LogicalClock()
        clock.advance(10)
        assert clock.now() == 10
        with pytest.raises(ValueError):
            clock.advance(0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            LogicalClock(start=-1)

    def test_wall_time_monotonic(self):
        clock = LogicalClock()
        t1 = clock.wall_time()
        clock.tick()
        assert clock.wall_time() > t1

    def test_infinity_beyond_any_tick(self):
        clock = LogicalClock()
        for _ in range(1000):
            clock.tick()
        assert clock.now() < INFINITY


class TestIdAllocator:
    def test_namespaces_independent(self):
        ids = IdAllocator()
        assert ids.next("run") == 1
        assert ids.next("visit") == 1
        assert ids.next("run") == 2

    def test_peek(self):
        ids = IdAllocator()
        assert ids.peek("x") == 0
        ids.next("x")
        assert ids.peek("x") == 1

    def test_random_token_deterministic_per_seed(self):
        a = random_token(random.Random(5))
        b = random_token(random.Random(5))
        c = random_token(random.Random(6))
        assert a == b
        assert a != c
        assert len(a) == 24


class TestPhaseTimer:
    def test_single_phase(self):
        timer = PhaseTimer()
        timer.push("a")
        timer.pop()
        assert timer.get("a") >= 0.0

    def test_nested_phases_do_not_double_count(self):
        import time

        timer = PhaseTimer()
        timer.push("outer")
        timer.push("inner")
        time.sleep(0.01)
        timer.pop()
        timer.pop()
        # outer's self-time excludes inner's 10ms.
        assert timer.get("inner") >= 0.009
        assert timer.get("outer") < timer.get("inner")

    def test_phases_accumulate(self):
        timer = PhaseTimer()
        for _ in range(3):
            timer.push("x")
            timer.pop()
        assert timer.get("x") >= 0.0

    def test_stats_breakdown_adds_up(self):
        stats = RepairStats()
        stats.total_seconds = 1.0
        stats.timer.buckets.update({"init": 0.1, "db": 0.2, "app": 0.3, "firefox": 0.1})
        stats.graph_seconds = 0.1
        breakdown = stats.breakdown()
        assert breakdown["ctrl"] == pytest.approx(0.2)
        assert breakdown["total"] == 1.0

    def test_stats_row_format(self):
        stats = RepairStats()
        stats.visits_reexecuted = 3
        stats.total_visits = 10
        row = stats.row()
        assert row["visits"] == "3 / 10"
