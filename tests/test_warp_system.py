"""Tests for the WarpSystem facade: clients, repair entry points,
concurrent-repair re-application, repeated repairs, and log GC."""

import pytest

from repro.apps.wiki import WikiApp, patch_for
from repro.warp import WarpSystem
from repro.workload.scenarios import WIKI, WikiDeployment, run_scenario


class TestClients:
    def test_named_client_gets_stable_id(self):
        warp = WarpSystem()
        browser = warp.client("laptop-1")
        assert browser.extension.client_id == "laptop-1"

    def test_anonymous_client_gets_random_id(self):
        warp = WarpSystem()
        a = warp.client()
        b = warp.client()
        assert a.extension.client_id != b.extension.client_id

    def test_extensionless_client(self):
        warp = WarpSystem()
        browser = warp.client(extension=False)
        assert browser.extension is None

    def test_disabled_system_rejects_repair(self):
        warp = WarpSystem(enabled=False)
        from repro.core.errors import RepairError

        with pytest.raises(RepairError):
            warp.retroactive_patch("x.php", {"handle": lambda ctx: None})


class TestRepeatedRepairs:
    def test_two_sequential_patches(self):
        """After one repair finalizes, the merged graph supports another."""
        outcome = run_scenario("stored-xss", n_users=6, n_victims=2)
        first = outcome.repair()
        assert first.ok
        assert outcome.warp.ttdb.current_gen == 1
        # A second, unrelated retroactive patch over the repaired history.
        spec = patch_for("clickjacking")
        second = outcome.warp.retroactive_patch(spec.file, spec.build())
        assert second.ok
        assert outcome.warp.ttdb.current_gen == 2
        # The first repair's effect persists through the second.
        for victim in outcome.victims:
            assert "xss-attack-line" not in outcome.wiki.page_text(
                f"{victim}_notes"
            )

    def test_patch_then_admin_undo(self):
        deployment = WikiDeployment(n_users=4)
        user = deployment.users[0]
        deployment.login(user)
        deployment.append_to_page(user, f"{user}_notes", "\nkeep me")
        spec = patch_for("clickjacking")
        assert deployment.warp.retroactive_patch(spec.file, spec.build()).ok
        browser = deployment.browser(user)
        form_visit = browser.current.parent_visit
        result = deployment.warp.cancel_visit(
            deployment.client_id(user), form_visit, initiated_by_admin=True
        )
        assert result.ok
        assert "keep me" not in deployment.wiki.page_text(f"{user}_notes")


class TestConcurrentRepair:
    def test_mid_repair_requests_served_and_reapplied(self):
        outcome = run_scenario("csrf", n_users=10, n_victims=2)
        deployment = outcome.deployment
        live_user = deployment.users[-1]
        served = []

        def live_traffic():
            if len(served) == 3:
                deployment.append_to_page(
                    live_user, "Main_Page", "\nmid-repair edit"
                )
            visit = deployment.browser(live_user).open(
                f"{WIKI}/index.php?title=Main_Page"
            )
            served.append(visit.response.status)

        controller = outcome.warp._controller()
        controller.step_hook = live_traffic
        spec = patch_for("csrf")
        result = controller.retroactive_patch(spec.file, spec.build())
        assert result.ok
        assert served and all(status == 200 for status in served)
        assert "mid-repair edit" in outcome.wiki.page_text("Main_Page")

    def test_generation_switch_after_repair(self):
        outcome = run_scenario("stored-xss", n_users=4, n_victims=1)
        assert outcome.warp.ttdb.current_gen == 0
        outcome.repair()
        assert outcome.warp.ttdb.current_gen == 1
        assert outcome.warp.ttdb.repair_gen is None
        assert not outcome.warp.server.repair_active
        assert not outcome.warp.server.suspended


class TestGarbageCollection:
    def test_gc_trims_versions_and_log(self):
        deployment = WikiDeployment(n_users=3)
        user = deployment.users[0]
        deployment.login(user)
        for index in range(6):
            deployment.edit_page(user, f"{user}_notes", f"rev {index}")
        warp = deployment.warp
        versions_before = warp.ttdb.total_versions()
        runs_before = warp.graph.n_runs
        horizon = warp.clock.now() + 1
        removed_versions = warp.ttdb.gc(horizon)
        removed_records = warp.graph.gc(horizon)
        assert removed_versions > 0
        assert removed_records > 0
        assert warp.ttdb.total_versions() < versions_before
        assert warp.graph.n_runs < runs_before
        # The current state is untouched by GC.
        assert deployment.wiki.page_text(f"{user}_notes") == "rev 5"

    def test_repair_still_works_within_retained_window(self):
        deployment = WikiDeployment(n_users=3)
        user = deployment.users[0]
        deployment.login(user)
        deployment.read_page(user, "Main_Page")
        horizon = deployment.warp.clock.now() + 1
        deployment.warp.ttdb.gc(horizon)
        deployment.warp.graph.gc(horizon)
        # Attack + repair entirely after the GC horizon.
        attacker = deployment.login("attacker")
        attacker.open(f"{WIKI}/special_block.php?ip=1.2.3.4")
        attacker.type_into(
            "input[name=reason]",
            "<script>var u = doc_text('#username');"
            "http_post('/edit.php', {'title': u + '_notes', 'append': 'XSS'});"
            "</script>",
        )
        attacker.click("input[name=report]")
        deployment.browser(user).open(f"{WIKI}/special_block.php?ip=1.2.3.4")
        assert "XSS" in deployment.wiki.page_text(f"{user}_notes")
        result = deployment.patch("stored-xss")
        assert result.ok
        assert "XSS" not in deployment.wiki.page_text(f"{user}_notes")


class TestMetricsModule:
    def test_storage_report_shapes(self):
        from repro.workload.metrics import storage_report

        deployment = WikiDeployment(n_users=2)
        deployment.login(deployment.users[0])
        deployment.read_page(deployment.users[0], "Main_Page")
        report = storage_report(deployment)
        assert report.browser_kb > 0
        assert report.app_kb > 0
        assert report.db_kb > 0
        assert report.total_kb == pytest.approx(
            report.browser_kb + report.app_kb + report.db_kb
        )
        assert report.gb_per_day(10.0) > 0

    def test_overhead_report(self):
        from repro.workload.metrics import measure_overhead

        report = measure_overhead("read", n_visits=40)
        assert report.no_warp_rate > 0
        assert report.warp_rate > 0
        assert report.storage is not None
