"""Edge cases of the repair machinery.

Covers the paper's §6 implementation notes (INSERT uniqueness-violation
dependencies, multiple row versions coexisting under unique keys) and
replay-session request matching corners.
"""

import pytest

from repro.apps.wiki import WikiApp, patch_for
from repro.http.message import HttpRequest
from repro.warp import WarpSystem
from repro.workload.scenarios import WIKI, WikiDeployment


class TestInsertUniquenessDependency:
    """§6: 'WARP checks whether the success (or failure) of each INSERT
    query would change as a result of other rows inserted or deleted
    during repair, and rolls back that row if so.'"""

    def test_cache_populated_by_attacker_recreated_after_cancel(self):
        """MediaWiki object-caching dependency (§8.5): the attacker's view
        populated the parser cache; a legit user's view *hit* that cache
        row.  Canceling the attacker undoes the cache INSERT; the user's
        view re-executes (its cache SELECT now misses) and re-populates
        the cache itself — the uniqueness outcome of its INSERT changed
        from would-fail to succeeds (§6)."""
        deployment = WikiDeployment(n_users=2)
        warp = deployment.warp

        # The attacker views a page first (populating the parser cache)...
        deployment.login("attacker")
        deployment.read_page("attacker", "Main_Page")
        # ...then a legit user views it: cache HIT, no insert of their own.
        user = deployment.users[0]
        deployment.login(user)
        deployment.read_page(user, "Main_Page")
        user_run = warp.graph.runs_in_order()[-1]
        assert not any(q.table == "objectcache" and q.is_write for q in user_run.queries)

        # Cancel everything the attacker did.
        result = warp.cancel_client(deployment.client_id("attacker"))
        assert result.ok
        # The cache row exists again — re-created by the user's re-executed
        # view, not the attacker's canceled one.
        cached = warp.ttdb.execute(
            "SELECT value FROM objectcache WHERE cache_key = 'page:Main_Page'"
        ).one()
        assert cached is not None
        replayed = warp.graph.runs[user_run.run_id]
        assert any(
            q.table == "objectcache" and q.kind == "insert" and q.snapshot[2]
            for q in replayed.queries
        )

    def test_page_creation_conflict_resolves_after_cancel(self):
        """The attacker created a page; canceling them lets a later user's
        failed creation INSERT succeed on re-execution."""
        deployment = WikiDeployment(n_users=2)
        warp = deployment.warp
        deployment.login("attacker")
        deployment.edit_page("attacker", "Disputed", "attacker content")
        user = deployment.users[0]
        deployment.login(user)
        # The user's creation attempt hits the unique title.
        deployment.edit_page(user, "Disputed", "user content")
        # (edit of existing page = update path, so force a creation race
        # by checking current state instead)
        assert deployment.wiki.page_text("Disputed") == "user content"
        result = warp.cancel_client(deployment.client_id("attacker"))
        assert result.ok
        # The user's edit survives; the page exists under their authorship
        # (their UPDATE became the page state after the attacker's INSERT
        # was undone and the user's edit re-executed).
        text = deployment.wiki.page_text("Disputed")
        assert text == "user content"


class TestReplayMatching:
    def test_unmatched_new_navigation_executes_fresh_run(self):
        """During replay a repaired page may navigate somewhere the
        original never went; the request executes as a fresh run."""
        deployment = WikiDeployment(n_users=2)
        warp = deployment.warp
        user = deployment.users[0]
        deployment.login(user)
        deployment.read_page(user, "Main_Page")
        runs_before = warp.graph.n_runs

        # Patch index.php so every view *also* fetches Projects via script.
        from repro.apps.wiki.pages import make_index

        original = warp.scripts.exports("index.php")["handle"]

        def new_handle(ctx):
            original(ctx)
            ctx.echo(f"<script>http_get('{WIKI}/index.php?title=Projects');</script>")

        result = warp.retroactive_patch("index.php", {"handle": new_handle})
        assert result.ok
        # Replay issued the new Projects request as a fresh run, merged
        # into the graph at finalize.
        assert warp.graph.n_runs > runs_before

    def test_request_matching_is_positional_per_visit(self):
        from repro.repair.replay import ReplaySession

        deployment = WikiDeployment(n_users=2)
        warp = deployment.warp
        user = deployment.users[0]
        deployment.login(user)
        browser = deployment.browser(user)
        visit = browser.open(f"{WIKI}/index.php?title=Main_Page")

        controller = warp._controller()
        session = ReplaySession(deployment.client_id(user), controller)
        session.pending_root = visit.visit_id

        class FakeClone:
            visit_id = 101
            parent_visit = None
            framed = False
            path = "/index.php"

        session.register_clone_visit(FakeClone(), "GET", {})
        run, ts = session.match_request(
            101, HttpRequest("GET", "/index.php", params={"title": "Main_Page"})
        )
        assert run is not None
        assert ts == run.ts_start
        # Second identical request: no unmatched original remains.
        again, _ = session.match_request(
            101, HttpRequest("GET", "/index.php", params={"title": "Main_Page"})
        )
        assert again is None

    def test_unmapped_clone_visit_requests_are_fresh(self):
        from repro.repair.replay import ReplaySession

        deployment = WikiDeployment(n_users=2)
        controller = deployment.warp._controller()
        session = ReplaySession("nobody", controller)
        run, _ = session.match_request(999, HttpRequest("GET", "/index.php"))
        assert run is None


class TestCanceledRunReplay:
    def test_request_to_canceled_run_returns_410(self):
        deployment = WikiDeployment(n_users=2)
        warp = deployment.warp
        user = deployment.users[0]
        deployment.login(user)
        deployment.read_page(user, "Main_Page")
        run = warp.graph.runs_in_order()[-1]

        controller = warp._controller()
        controller._begin()
        controller.cancel_run(run)
        from repro.repair.replay import ReplaySession

        session = ReplaySession(deployment.client_id(user), controller)
        visit_record = warp.graph.visit_of_run(run)
        session.pending_root = visit_record.visit_id

        class FakeClone:
            visit_id = 55
            parent_visit = None
            framed = False
            path = "/index.php"

        session.register_clone_visit(FakeClone(), "GET", {})
        response = controller.handle_replay_request(
            session,
            warp.server.origin,
            HttpRequest(
                "GET",
                "/index.php",
                params={"title": "Main_Page"},
                headers={"X-Warp-Client": "x", "X-Warp-Visit": "55", "X-Warp-Request": "1"},
            ),
        )
        assert response.status == 410
        controller.ttdb.abort_repair()
