"""Deterministic fault injection, degraded-mode serving, self-healing.

Covers the PR 7 robustness plane:

* :class:`FaultPlane` / :class:`FaultRule` semantics and JSON schedules;
* WAL degradation: inline retry with backoff, parked writes, the
  ``group -> always -> read-only`` escalation ladder, ``heal()``;
* torn group-commit leader writes and snapshot-marker mismatches
  (the documented crash windows of DESIGN.md "Failure model");
* degraded-mode serving: writes 503 read-only, reads keep flowing,
  probe-on-write self-healing, the ``/warp/admin/health`` endpoint and
  the structured 503 on mutating admin calls while degraded;
* repair jobs under faults: bounded retry of transients, crash -> job
  reported as interrupted after reload;
* fault points in the gate drain, cache fill, and pool dispatch —
  including the acceptance bar that a fault storm crashes zero serving
  threads;
* per-request error classification in the load driver.
"""

import errno
import json
import os
import threading

import pytest

from repro.apps.wiki.app import WikiApp
from repro.core.errors import DurabilityError
from repro.faults import harness as harness_mod
from repro.faults.plane import (
    FAULT_KINDS,
    FAULT_POINTS,
    FaultPlane,
    FaultRule,
    InjectedError,
    InjectedFault,
    InjectedIOError,
    SimulatedCrash,
    TornWrite,
)
from repro.http.message import HttpRequest, HttpResponse
from repro.http.pool import ServerPool
from repro.apps.wiki import pages as wiki_pages
from repro.repair.api import CancelClientSpec, PatchSpec
from repro.store.wal import CommitTicket, RecordWal
from repro.warp import WarpSystem
from repro.workload.loadgen import LoadClient, LoadStats

PAGE = "Sandbox"


def _wiki_warp(tmp_path, plane, durability="always", **kwargs):
    warp = WarpSystem(
        wal_path=str(tmp_path / "wal.jsonl"),
        durability=durability,
        wal_flush_interval=30.0,
        fault_plane=plane,
        **kwargs,
    )
    warp.graph.store.durability_timeout = 5.0
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    wiki.seed_user("alice", "pw-alice")
    wiki.seed_user("bob", "pw-bob")
    wiki.seed_page(PAGE, "seed\n", "alice")
    client = LoadClient("alice", warp.server)
    assert client.login("pw-alice").status == 200
    return warp, wiki, client


def _append(client, marker):
    return client.send(
        client.request("POST", "/edit.php", {"title": PAGE, "append": f"\n{marker}"})
    )


def _read(client):
    return client.send(client.request("GET", "/edit.php", {"title": PAGE}))


# ---------------------------------------------------------------------------
# the plane
# ---------------------------------------------------------------------------


class TestFaultPlane:
    def test_inert_plane_is_a_noop(self):
        plane = FaultPlane()
        for point in FAULT_POINTS:
            plane.fire(point)
        assert plane.fired == []
        assert plane.status()["pending"] == 0

    def test_rule_fires_after_threshold_then_exhausts(self):
        plane = FaultPlane()
        rule = plane.arm(point="wal.fsync", kind="error", after=1, times=2)
        plane.fire("wal.fsync")  # hit 1: below threshold
        with pytest.raises(InjectedError):
            plane.fire("wal.fsync")  # hit 2
        with pytest.raises(InjectedError):
            plane.fire("wal.fsync")  # hit 3
        plane.fire("wal.fsync")  # hit 4: exhausted — the fault cleared
        assert rule.exhausted
        assert rule.fired == 2
        assert [event["hit"] for event in plane.fired] == [2, 3]
        assert plane.last_fault["point"] == "wal.fsync"

    def test_kinds_raise_the_documented_types(self):
        plane = FaultPlane()
        for kind in FAULT_KINDS:
            if kind == "stall":
                # The latency kind sleeps and returns instead of raising.
                plane.arm(point="wal.append", kind=kind, times=1, fraction=0.0)
                plane.fire("wal.append")
                assert plane.last_fault["kind"] == "stall"
                plane.clear()
                continue
            plane.arm(point="wal.append", kind=kind, times=1)
            with pytest.raises(BaseException) as info:
                plane.fire("wal.append")
            exc = info.value
            if kind == "io":
                assert isinstance(exc, InjectedIOError) and exc.errno == errno.EIO
                assert isinstance(exc, InjectedFault)
            elif kind == "disk_full":
                assert isinstance(exc, InjectedIOError)
                assert exc.errno == errno.ENOSPC
            elif kind == "error":
                assert isinstance(exc, InjectedError)
                assert isinstance(exc, InjectedFault)
            elif kind == "crash":
                assert isinstance(exc, SimulatedCrash)
                assert not isinstance(exc, Exception)  # survives except Exception
                assert not isinstance(exc, InjectedFault)  # never auto-retried
            else:
                assert isinstance(exc, TornWrite)
                assert isinstance(exc, SimulatedCrash)
            plane.clear()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("wal.append", "gremlins")

    def test_schedule_json_roundtrip(self):
        schedule = {
            "seed": 7,
            "faults": [
                {"point": "wal.fsync", "kind": "io", "after": 4, "times": 2},
                {"point": "wal.append", "kind": "torn", "fraction": 0.25},
            ],
        }
        plane = FaultPlane.from_schedule(json.dumps(schedule))
        assert plane.seed == 7
        assert plane.pending() == 3
        back = plane.to_schedule()
        assert back["seed"] == 7
        assert {rule["point"] for rule in back["faults"]} == {
            "wal.fsync",
            "wal.append",
        }
        # The armed plane actually fires.
        for _ in range(4):
            plane.fire("wal.fsync")
        with pytest.raises(InjectedIOError):
            plane.fire("wal.fsync")

    def test_harness_schedule_points_are_cataloged(self):
        # A renamed fault point must not silently orphan the generator.
        for point, kinds in harness_mod._POINT_KINDS.items():
            assert point in FAULT_POINTS
            assert set(kinds) <= set(FAULT_KINDS)

    def test_generated_schedules_are_deterministic(self):
        assert harness_mod.generate_schedule(11) == harness_mod.generate_schedule(11)
        assert harness_mod.generate_schedule(11) != harness_mod.generate_schedule(12)


# ---------------------------------------------------------------------------
# WAL degradation and healing
# ---------------------------------------------------------------------------


class TestWalDegradation:
    def test_transient_io_error_is_retried_inline(self, tmp_path):
        plane = FaultPlane()
        plane.arm(point="wal.append", kind="io", times=1)
        wal = RecordWal(
            str(tmp_path / "w.wal"), durability="always", fault_plane=plane
        )
        ticket = wal.append("mark", {"n": 1})
        assert ticket.wait(5.0)
        assert wal.retried_writes >= 1
        assert not wal.failed
        wal.close()
        assert list(RecordWal.entries(wal.path)) == [("mark", {"n": 1})]

    def test_exhausted_retries_park_and_escalate(self, tmp_path):
        plane = FaultPlane()
        plane.arm(point="wal.append", kind="io", times=None)
        degraded = []
        wal = RecordWal(
            str(tmp_path / "w.wal"), durability="group", fault_plane=plane
        )
        wal.on_degrade = degraded.append
        ticket = wal.append("mark", {"n": 1})
        assert ticket.wait(5.0) is False
        assert wal.failed
        # Escalation ladder: group -> always while the log is sick.
        assert wal.durability == "always"
        assert wal.configured_durability == "group"
        assert wal.status()["parked_entries"] == 1
        assert degraded and isinstance(degraded[0], OSError)
        # The fault clears; the next probe heals and flushes the backlog.
        plane.clear()
        assert wal.heal()
        assert not wal.failed
        assert wal.durability == "group"
        assert ticket.wait(5.0)
        wal.close()
        assert list(RecordWal.entries(wal.path)) == [("mark", {"n": 1})]

    def test_disk_full_reports_enospc(self, tmp_path):
        plane = FaultPlane()
        plane.arm(point="wal.fsync", kind="disk_full", times=None)
        wal = RecordWal(
            str(tmp_path / "w.wal"), durability="always", fault_plane=plane
        )
        assert wal.append("mark", {"n": 1}).wait(5.0) is False
        assert wal.failed
        assert isinstance(wal.last_error, OSError)
        assert wal.last_error.errno == errno.ENOSPC
        plane.clear()
        assert wal.heal()
        wal.close()

    def test_heal_replays_parked_entries_in_order(self, tmp_path):
        plane = FaultPlane()
        plane.arm(point="wal.append", kind="io", times=None)
        wal = RecordWal(
            str(tmp_path / "w.wal"), durability="always", fault_plane=plane
        )
        tickets = [wal.append("mark", {"n": i}) for i in range(3)]
        assert all(t.wait(5.0) is False for t in tickets)
        plane.clear()
        assert wal.heal()
        assert all(t.wait(5.0) for t in tickets)
        wal.close()
        assert [d["n"] for _, d in RecordWal.entries(wal.path)] == [0, 1, 2]

    def test_heal_and_inline_append_never_ack_buffered_entries(self, tmp_path):
        """Regression: an entry that raced into the group-commit buffer
        during the flusher's failure window (after the leader captured
        its doomed batch, before durability escalated to ``always``) is
        neither parked nor written.  A later heal or inline append must
        not advance the durable watermark over it — its ticket would ack
        a mutation that never reached disk."""
        plane = FaultPlane()
        wal = RecordWal(
            str(tmp_path / "w.wal"),
            durability="group",
            flush_interval=30.0,
            fault_plane=plane,
        )
        plane.arm(point="wal.append", kind="io", times=None)
        first = wal.append("mark", {"n": 1})
        assert first.wait(5.0) is False  # leader fails: seq 1 parked
        assert wal.failed and wal.durability == "always"
        # The racing entry: buffered between capture and escalation.
        with wal._lock:
            buffered_seq = wal._next_seq
            wal._next_seq += 1
            wal._buffer.append(
                (
                    buffered_seq,
                    json.dumps({"kind": "mark", "data": {"n": 2}}) + "\n",
                )
            )
        buffered = CommitTicket(buffered_seq, wal)
        plane.clear()
        # Fault cleared: the next inline append heals — replaying parked
        # AND buffered lines in seq order — then writes itself.
        third = wal.append("mark", {"n": 3})
        assert third.wait(5.0)
        assert first.wait(5.0)
        assert buffered.wait(5.0)
        wal.close()
        assert [d["n"] for _, d in RecordWal.entries(wal.path)] == [1, 2, 3]

    def test_torn_group_commit_leader_write(self, tmp_path):
        """Satellite: a torn write during the group-commit *leader's*
        batch write leaves a parseable prefix; ``RecordWal.repair`` drops
        the torn tail and recovery sees every earlier entry."""
        plane = FaultPlane()
        wal = RecordWal(
            str(tmp_path / "w.wal"),
            durability="group",
            flush_interval=30.0,
            fault_plane=plane,
        )
        assert wal.append("mark", {"n": 1}).wait(5.0)
        plane.arm(point="wal.append", kind="torn", times=1, fraction=0.5)
        ticket = wal.append("mark", {"n": 2})
        with pytest.raises(SimulatedCrash):
            # The waiter elects itself leader and performs the batch write
            # — the crash window under test.
            ticket.wait(5.0)
        # The file now ends in a torn fragment of entry 2.
        raw = open(wal.path, "rb").read()
        assert raw.decode().count("\n") >= 1
        dropped = RecordWal.repair(wal.path)
        assert dropped > 0
        assert list(RecordWal.entries(wal.path)) == [("mark", {"n": 1})]

    def test_crash_unblocks_other_waiters_with_false(self, tmp_path):
        plane = FaultPlane()
        plane.arm(point="wal.fsync", kind="crash", times=1)
        wal = RecordWal(
            str(tmp_path / "w.wal"),
            durability="group",
            flush_interval=30.0,
            fault_plane=plane,
        )
        tickets = [wal.append("mark", {"n": 1}), wal.append("mark", {"n": 2})]
        outcomes = [None, None]

        def wait_on(index):
            try:
                outcomes[index] = tickets[index].wait(5.0)
            except SimulatedCrash:
                outcomes[index] = "crashed"

        waiters = [
            threading.Thread(target=wait_on, args=(i,), daemon=True)
            for i in range(2)
        ]
        for thread in waiters:
            thread.start()
        for thread in waiters:
            thread.join(5.0)
        # Whichever waiter elected itself leader took the crash; the other
        # unblocked with False — nobody hangs on a dead log.
        assert sorted(outcomes, key=str) == [False, "crashed"]

    def test_append_after_crash_is_refused(self, tmp_path):
        plane = FaultPlane()
        plane.arm(point="wal.append", kind="crash", times=1)
        wal = RecordWal(
            str(tmp_path / "w.wal"), durability="always", fault_plane=plane
        )
        with pytest.raises(SimulatedCrash):
            wal.append("mark", {"n": 1})
        with pytest.raises(ValueError):
            wal.append("mark", {"n": 2})


# ---------------------------------------------------------------------------
# snapshot-marker crash windows (group commit)
# ---------------------------------------------------------------------------


class TestSnapshotMarkerWindows:
    def test_pre_marker_failure_aborts_before_snapshot_write(self, tmp_path):
        plane = FaultPlane()
        warp, _, client = _wiki_warp(tmp_path, plane, durability="group")
        assert _append(client, "m1.").status == 200
        snap = str(tmp_path / "snap.json")
        plane.arm(point="wal.append", kind="io", times=None)
        with pytest.raises(DurabilityError):
            warp.save(snap)
        # The snapshot must not exist: recovery could never tie a
        # truncated WAL to it without the marker.
        assert not os.path.exists(snap)
        plane.clear()
        assert warp.health.try_heal()
        warp.save(snap)
        assert os.path.exists(snap)

    def test_crash_between_marker_and_snapshot_write_recovers(self, tmp_path):
        """The documented crash window: the pre-write marker is durable
        but the snapshot file never lands.  Recovery ignores the dangling
        marker and replays the full log."""
        plane = FaultPlane()
        warp, _, client = _wiki_warp(tmp_path, plane, durability="group")
        assert _append(client, "m1.").status == 200
        runs_before = len(warp.graph.store.runs)
        snap = str(tmp_path / "snap.json")
        plane.arm(point="store.snapshot", kind="crash", times=1)
        with pytest.raises(SimulatedCrash):
            warp.save(snap)
        assert not os.path.exists(snap)
        warp.graph.store.wal._mark_crashed()
        loaded = WarpSystem.load(None, wal_path=warp.graph.store.wal.path)
        assert len(loaded.graph.store.runs) == runs_before
        loaded.graph.store.wal.close()

    def test_post_truncate_marker_failure_keeps_snapshot_usable(self, tmp_path):
        """Mismatch window on the other side: the WAL is truncated but
        the post-truncate marker cannot be journaled.  ``save`` surfaces
        the durability failure, yet the written snapshot + truncated WAL
        still load (replaying nothing)."""
        plane = FaultPlane()
        warp, _, client = _wiki_warp(tmp_path, plane, durability="group")
        assert _append(client, "m1.").status == 200
        runs_before = len(warp.graph.store.runs)
        snap = str(tmp_path / "snap.json")
        # Hit 1 is the pre-write marker (allowed through); every later
        # append — the post-truncate marker — fails.
        plane.arm(point="wal.append", kind="io", after=1, times=None)
        with pytest.raises(DurabilityError, match="post-truncate"):
            warp.save(snap)
        assert os.path.exists(snap)
        warp.graph.store.wal._mark_crashed()
        loaded = WarpSystem.load(snap, wal_path=warp.graph.store.wal.path)
        assert len(loaded.graph.store.runs) == runs_before
        loaded.graph.store.wal.close()


# ---------------------------------------------------------------------------
# degraded-mode serving + self-healing
# ---------------------------------------------------------------------------


class TestDegradedServing:
    def test_fsync_storm_degrades_to_read_only_then_self_heals(self, tmp_path):
        plane = FaultPlane()
        warp, _, client = _wiki_warp(tmp_path, plane)
        assert _append(client, "ok1.").status == 200
        # Budget: every failed write/probe burns 3 fsync hits (attempt +
        # io_retries).  1 triggering write + 3 GET park-probes + 1 refused
        # write's heal-probe = 15 hits; the 16th probe succeeds.
        plane.arm(point="wal.fsync", kind="io", times=15)

        # First write under the storm: executed but never durable -> 503.
        refused = _append(client, "lost1.")
        assert refused.status == 503
        assert refused.headers.get("X-Warp-Degraded") == "durability"
        assert refused.headers.get("Retry-After")
        assert warp.health.mode == "read_only"
        assert warp.graph.store.relaxed_durability

        # Reads keep flowing while degraded (their journal entries park).
        for _ in range(3):
            assert _read(client).status == 200
        # Writes are refused up front while the log is still sick.
        blocked = _append(client, "lost2.")
        assert blocked.status == 503
        assert blocked.headers.get("X-Warp-Degraded") == "read-only"

        # The rule exhausts ("the disk recovers"); the next write probes,
        # heals the log, flushes the parked backlog, and succeeds.
        healed = _append(client, "ok2.")
        assert healed.status == 200
        assert warp.health.mode == "normal"
        assert warp.health.heals == 1
        assert not warp.graph.store.relaxed_durability
        wal = warp.graph.store.wal
        assert not wal.failed
        assert wal.sync(5.0)
        # Nothing acknowledged was lost; parked read-side entries made it.
        kinds = [kind for kind, _ in RecordWal.entries(wal.path)]
        assert kinds.count("run") == len(warp.graph.store.runs)

    def test_health_endpoint_and_admin_refusal_while_degraded(self, tmp_path):
        plane = FaultPlane()
        warp, _, client = _wiki_warp(tmp_path, plane)

        def admin(method, path, params=None):
            return warp.server.handle(
                HttpRequest(method=method, path=path, params=dict(params or {}))
            )

        healthy = admin("GET", "/warp/admin/health")
        assert healthy.status == 200
        doc = json.loads(healthy.body)
        assert doc["mode"] == "normal"
        assert doc["wal"]["failed"] is False
        assert doc["repair"] == {"active": False, "interrupted_jobs": 0}

        plane.arm(point="wal.fsync", kind="io", times=None)
        assert _append(client, "x.").status == 503
        degraded = admin("GET", "/warp/admin/health")
        assert degraded.status == 503
        doc = json.loads(degraded.body)
        assert doc["mode"] == "read_only"
        assert doc["wal"]["failed"] is True
        assert doc["wal"]["parked_entries"] >= 1
        assert doc["last_error"]

        # Mutating admin calls get a structured 503 with the health doc.
        spec = json.dumps({"kind": "cancel_client", "client_id": "bob-load"})
        refused = admin("POST", "/warp/admin/repair", {"spec": spec})
        assert refused.status == 503
        payload = json.loads(refused.body)
        assert payload["health"]["mode"] == "read_only"
        assert "read-only" in payload["error"]
        # Status polls still work while degraded.
        assert admin("GET", "/warp/admin/repair").status == 200

        plane.clear()
        assert _append(client, "y.").status == 200
        assert admin("GET", "/warp/admin/health").status == 200

    def test_fault_storm_crashes_zero_serving_threads(self, tmp_path):
        plane = FaultPlane()
        warp, _, client = _wiki_warp(tmp_path, plane)
        pool = ServerPool(warp.server, workers=4, queue_depth=64, fault_plane=plane)
        warp.serving_pool = pool
        plane.arm(point="wal.fsync", kind="io", times=None)
        # Deterministic entry into read-only before the concurrent storm.
        assert _append(client, "trigger.").status == 503
        assert warp.health.mode == "read_only"
        pending = []
        for index in range(30):
            if index % 3 == 0:
                request = client.request(
                    "POST", "/edit.php", {"title": PAGE, "append": f"\ns{index}."}
                )
            else:
                request = client.request("GET", "/edit.php", {"title": PAGE})
            pending.append(pool.submit(request))
        responses = [p.wait(10.0) for p in pending]
        stats = pool.stats()
        assert stats["alive_workers"] == 4
        reads = [r for i, r in enumerate(responses) if i % 3 != 0]
        assert all(r.status == 200 for r in reads)
        writes = [r for i, r in enumerate(responses) if i % 3 == 0]
        assert all(r.status == 503 for r in writes)
        assert all(
            r.headers.get("X-Warp-Degraded") == "read-only" for r in writes
        )
        # Storm over: the system self-heals on the next write.
        plane.clear()
        assert pool.handle(
            client.request("POST", "/edit.php", {"title": PAGE, "append": "\nafter."})
        ).status == 200
        assert warp.health.mode == "normal"
        assert pool.stats()["alive_workers"] == 4
        pool.close()


# ---------------------------------------------------------------------------
# repair jobs under faults
# ---------------------------------------------------------------------------


def _bob_runs(tmp_path, plane, **kwargs):
    warp, wiki, alice = _wiki_warp(tmp_path, plane, **kwargs)
    bob = LoadClient("bob", warp.server)
    assert bob.login("pw-bob").status == 200
    assert _append(bob, "bobwrite.").status == 200
    return warp, alice


class TestRepairUnderFaults:
    def test_transient_fault_is_retried_then_job_succeeds(self, tmp_path):
        plane = FaultPlane()
        warp, _ = _bob_runs(tmp_path, plane)
        plane.arm(point="repair.phase_started", kind="error", times=1)
        job = warp.repair.submit(CancelClientSpec(client_id="bob-load"))
        result = job.result(30.0)
        assert job.status == "done"
        assert not result.aborted
        assert any(event == "retrying" for event, _ in job.events)

    def test_retry_budget_exhaustion_fails_the_job(self, tmp_path):
        plane = FaultPlane()
        warp, _ = _bob_runs(tmp_path, plane)
        plane.arm(point="repair.phase_started", kind="error", times=None)
        job = warp.repair.submit(CancelClientSpec(client_id="bob-load"))
        assert job.wait(30.0)
        assert job.status == "failed"
        assert isinstance(job.error, InjectedFault)
        retries = [event for event, _ in job.events if event == "retrying"]
        assert len(retries) == warp.repair_retry_limit
        # The job end was journaled: nothing reported as interrupted.
        assert warp.repair.interrupted_jobs() == []

    def test_post_switch_fault_settles_done_without_retry(self, tmp_path):
        """Regression: a transient fault firing *after* the generation
        switch (``repair.finalized``) leaves the repair committed, so a
        retry would re-apply the whole spec against already-repaired
        state and journal duplicate patch records.  The job settles as
        done-with-warning instead."""
        plane = FaultPlane()
        warp, _ = _bob_runs(tmp_path, plane)
        patches_before = len(warp.graph.patches)
        plane.arm(point="repair.finalized", kind="error", times=1)
        job = warp.repair.submit(
            PatchSpec(file="edit.php", exports=wiki_pages.make_edit())
        )
        assert job.wait(30.0)
        assert job.status == "done"
        result = job.result(5.0)
        assert result.ok and not result.aborted
        assert not any(event == "retrying" for event, _ in job.events)
        assert any(event == "post_commit_fault" for event, _ in job.events)
        # Exactly one patch record: the committed attempt did not re-run.
        assert len(warp.graph.patches) == patches_before + 1
        assert warp.repair.interrupted_jobs() == []

    def test_crash_mid_repair_is_reported_interrupted(self, tmp_path):
        plane = FaultPlane()
        warp, _ = _bob_runs(tmp_path, plane)
        plane.arm(point="repair.group_done", kind="crash", times=1)
        job = warp.repair.submit(CancelClientSpec(client_id="bob-load"))
        assert job.wait(30.0)
        assert job.status == "failed"
        assert "crashed mid-repair" in str(job.error)
        interrupted = warp.repair.interrupted_jobs()
        assert [item["job_id"] for item in interrupted] == [job.job_id]
        # ... and the report survives reload, because no end was journaled.
        warp.graph.store.wal._mark_crashed()
        loaded = WarpSystem.load(None, wal_path=warp.graph.store.wal.path)
        assert job.job_id in loaded.graph.store.pending_repair_jobs
        assert loaded.repair.acknowledge_interrupted(job.job_id)
        assert loaded.repair.interrupted_jobs() == []
        loaded.graph.store.wal.close()


# ---------------------------------------------------------------------------
# gate / cache / pool fault points
# ---------------------------------------------------------------------------


class TestPointInstrumentation:
    def test_gate_reapply_fault_leaves_entry_queued(self, tmp_path):
        plane = FaultPlane()
        warp, _, _ = _wiki_warp(tmp_path, plane)
        gate = warp.enable_online_repair()
        assert gate.faults is plane
        gate.active = True
        gate.queue.append("sentinel")
        plane.arm(point="gate.reapply", kind="error", times=1)
        with pytest.raises(InjectedError):
            gate.pop_next()
        # Nothing consumed: the drain retries and loses no queued request.
        assert gate.queue == ["sentinel"]
        assert gate.pop_next() == "sentinel"

    def test_cache_fill_fault_never_breaks_the_response(self, tmp_path):
        plane = FaultPlane()
        warp, _, client = _wiki_warp(tmp_path, plane, response_cache=True)
        plane.arm(point="cache.fill", kind="error", times=None)
        assert _read(client).status == 200
        assert _read(client).status == 200
        # Every fill was refused by the injected fault: no entries, and
        # both requests executed as misses.
        stats = warp.response_cache.stats()
        assert stats["entries"] == 0
        assert stats["hits"] == 0

    def test_pool_dispatch_fault_surfaces_to_waiter_not_worker(self, tmp_path):
        plane = FaultPlane()
        warp, _, client = _wiki_warp(tmp_path, plane)
        pool = ServerPool(warp.server, workers=2, fault_plane=plane)
        plane.arm(point="pool.dispatch", kind="error", times=1)
        pending = pool.submit(client.request("GET", "/edit.php", {"title": PAGE}))
        with pytest.raises(InjectedError):
            pending.wait(5.0)
        assert pool.stats()["alive_workers"] == 2
        assert pool.handle(
            client.request("GET", "/edit.php", {"title": PAGE})
        ).status == 200
        pool.close()

    def test_store_insert_run_fault_fires_before_mutation(self, tmp_path):
        plane = FaultPlane()
        warp, _, client = _wiki_warp(tmp_path, plane)
        runs_before = len(warp.graph.store.runs)
        plane.arm(point="store.insert_run", kind="error", times=1)
        with pytest.raises(InjectedError):
            _append(client, "never.")
        # Fired before any index was touched: store state is unchanged.
        assert len(warp.graph.store.runs) == runs_before
        assert _append(client, "after.").status == 200


# ---------------------------------------------------------------------------
# load-driver error classification
# ---------------------------------------------------------------------------


class TestLoadStatsClassification:
    def _response(self, status, headers=None):
        return HttpResponse(status=status, body="", headers=dict(headers or {}))

    def test_classify_by_degradation_headers(self):
        classify = LoadStats.classify
        assert classify(self._response(200)) is None
        assert (
            classify(self._response(503, {"X-Warp-Degraded": "read-only"}))
            == "503-degraded"
        )
        assert (
            classify(self._response(503, {"X-Warp-Overloaded": "queue"}))
            == "503-backpressure"
        )
        assert (
            classify(self._response(503, {"X-Warp-Suspended": "1"}))
            == "503-suspended"
        )
        assert classify(self._response(503)) == "503-other"
        assert classify(self._response(500)) == "500-server-error"
        assert classify(self._response(403)) is None

    def test_availability_summary_and_merge(self):
        stats = LoadStats()
        stats.note(self._response(200), 0.001)
        stats.note(self._response(200), 0.001)
        stats.note(self._response(503, {"X-Warp-Degraded": "read-only"}), 0.001)
        stats.note(self._response(503, {"X-Warp-Overloaded": "queue"}), 0.001)
        stats.note(self._response(500), 0.001)
        other = LoadStats()
        other.note(self._response(503, {"X-Warp-Degraded": "read-only"}), 0.001)
        stats.merge(other)
        assert stats.error_classes == {
            "503-degraded": 2,
            "503-backpressure": 1,
            "500-server-error": 1,
        }
        report = stats.availability()
        assert report["total"] == 6.0
        assert report["served_fraction"] == pytest.approx(2 / 6)
        assert report["degraded_fraction"] == pytest.approx(3 / 6)
        assert report["failed_fraction"] == pytest.approx(1 / 6)
