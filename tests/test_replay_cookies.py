"""Unit tests for replay-time cookie plumbing (paper §5.3): initial jar
construction, divergence tracking, and invalidation queueing."""

import pytest

from repro.ahg.records import VisitRecord
from repro.repair.replay import BrowserReplayer, ReplayConfig
from repro.workload.scenarios import WIKI, WikiDeployment


class FakeClone:
    def __init__(self, jar):
        self._jar = jar

    def jar_snapshot(self):
        return {origin: dict(values) for origin, values in self._jar.items()}


class FakeSession:
    client_id = "c1"


def make_replayer():
    deployment = WikiDeployment(n_users=2)
    controller = deployment.warp._controller()
    return BrowserReplayer(controller, ReplayConfig())


class TestInitialJar:
    def test_uses_recorded_pre_visit_cookies(self):
        replayer = make_replayer()
        visit = VisitRecord(
            "c1", 1, ts=5, url="/x",
            cookies_before={WIKI: {"sess": "orig-token"}},
        )
        assert replayer._initial_jar(visit) == {WIKI: {"sess": "orig-token"}}

    def test_overrides_take_precedence(self):
        replayer = make_replayer()
        replayer.cookie_overrides["c1"] = {WIKI: {"sess": "repaired-token"}}
        visit = VisitRecord(
            "c1", 1, ts=5, url="/x",
            cookies_before={WIKI: {"sess": "orig-token", "theme": "dark"}},
        )
        jar = replayer._initial_jar(visit)
        assert jar[WIKI]["sess"] == "repaired-token"
        assert jar[WIKI]["theme"] == "dark"

    def test_none_override_deletes_cookie(self):
        replayer = make_replayer()
        replayer.cookie_overrides["c1"] = {WIKI: {"sess": None}}
        visit = VisitRecord(
            "c1", 1, ts=5, url="/x",
            cookies_before={WIKI: {"sess": "orig-token"}},
        )
        assert "sess" not in replayer._initial_jar(visit)[WIKI]


class TestDivergenceTracking:
    def test_identical_outcome_records_nothing(self):
        replayer = make_replayer()
        visit = VisitRecord(
            "c1", 1, ts=5, url="/x",
            cookies_after={WIKI: {"sess": "same"}},
        )
        clone = FakeClone({WIKI: {"sess": "same"}})
        replayer._note_cookie_divergence(clone, FakeSession(), visit)
        assert "c1" not in replayer.diverged_clients

    def test_changed_cookie_recorded_as_override(self):
        replayer = make_replayer()
        visit = VisitRecord(
            "c1", 1, ts=5, url="/x",
            cookies_after={WIKI: {"sess": "hijacked"}},
        )
        clone = FakeClone({WIKI: {"sess": "honest"}})
        replayer._note_cookie_divergence(clone, FakeSession(), visit)
        assert replayer.cookie_overrides["c1"][WIKI]["sess"] == "honest"
        assert "c1" in replayer.diverged_clients

    def test_cookie_absent_after_replay_recorded_as_deletion(self):
        replayer = make_replayer()
        visit = VisitRecord(
            "c1", 1, ts=5, url="/x",
            cookies_after={WIKI: {"sess": "was-set"}},
        )
        clone = FakeClone({})
        replayer._note_cookie_divergence(clone, FakeSession(), visit)
        assert replayer.cookie_overrides["c1"][WIKI]["sess"] is None

    def test_divergence_flows_to_server_invalidation(self):
        """End-to-end: the CSRF repair queues exactly the diverged clients
        (asserted at unit level elsewhere; here via the facade)."""
        from repro.workload.scenarios import run_scenario

        outcome = run_scenario("csrf", n_users=6, n_victims=2)
        outcome.repair()
        invalidated = outcome.warp.server.cookie_invalidation
        expected = {
            outcome.deployment.client_id(v) for v in outcome.victims
        }
        assert expected <= invalidated
