"""Front-line detection (repro.detect) and the attack corpus
(repro.workload.attackgen): rule verdicts, the incident lifecycle over
the admin HTTP surface, durable incidents across save/load and crash
recovery, the preview-refresh locking contract, the loadgen attacker
mix, and the shard coordinator's union incidents view.

The acceptance spine is :class:`TestCorpus`: every generated scenario —
six attack classes crossed with app/tenant shapes — must detect, show
corruption, repair through the incident → preview → job path, and
recover the ground truth exactly.
"""

import json
import random
import threading
import time

import pytest

from repro.apps.wiki.app import WikiApp
from repro.detect import (
    AclSelfGrantRule,
    Detector,
    IncidentManager,
    ParamShapeRule,
    SessionMisuseRule,
    default_rules,
)
from repro.faults.plane import FaultPlane
from repro.http.message import CLIENT_HEADER, HttpRequest
from repro.shard import ShardCluster
from repro.shard.routing import TENANT_HEADER
from repro.warp import WarpSystem
from repro.workload.attackgen import (
    APP_SHAPES,
    ATTACK_CLASSES,
    INJECTION_CLASSES,
    TAUTOLOGY_PAYLOAD,
    UNION_PAYLOAD,
    describe_corpus,
    generate_corpus,
    run_scenario_end_to_end,
)
from repro.workload.loadgen import LoadClient, LoadGen, LoadStats

PAGE = "Sandbox"


def _req(method="GET", path="/index.php", params=None, cookies=None, client="c1"):
    return HttpRequest(
        method,
        path,
        params=dict(params or {}),
        cookies=dict(cookies or {}),
        headers={CLIENT_HEADER: client},
    )


def _detect_warp(plane=None, **kwargs):
    warp = WarpSystem(fault_plane=plane, **kwargs)
    warp.enable_detection()
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    for user, page in (("alice", PAGE), ("bob", "Workshop")):
        wiki.seed_user(user, f"pw-{user}")
        wiki.seed_page(page, "seed\n", user)
    clients = {}
    for user in ("alice", "bob"):
        client = LoadClient(user, warp.server)
        assert client.login(f"pw-{user}").status == 200
        clients[user] = client
    return warp, wiki, clients


def _inject(client, payload=TAUTOLOGY_PAYLOAD):
    return client.send(
        client.request("GET", "/special_maintenance.php", {"thelang": payload})
    )


def _admin(warp, method, path, **params):
    return warp.server.handle(HttpRequest(method, path, params=params))


def _admin_json(warp, method, path, **params):
    response = _admin(warp, method, path, **params)
    return response.status, json.loads(response.body)


# ---------------------------------------------------------------------------
# rule verdicts
# ---------------------------------------------------------------------------


class TestRules:
    def test_benign_request_is_not_flagged(self):
        detector = Detector()
        result = detector.score(
            _req(params={"title": "Main_Page", "append": "hello world"})
        )
        assert not result.flagged
        assert result.score == 0.0

    @pytest.mark.parametrize(
        "payload,reason",
        [
            (TAUTOLOGY_PAYLOAD, "injection:tautology"),
            (UNION_PAYLOAD, "injection:union"),
            ("en'; DELETE FROM users; --", "injection:piggyback"),
        ],
    )
    def test_injection_signatures_flag(self, payload, reason):
        result = Detector().score(_req(params={"thelang": payload}))
        assert result.flagged
        assert reason in result.reasons

    def test_cookie_values_are_scanned_too(self):
        result = Detector().score(_req(cookies={"lang": TAUTOLOGY_PAYLOAD}))
        assert result.flagged
        assert any(
            f.param == "cookie:lang" for f in result.findings
        ), result.findings

    def test_shape_anomalies_alone_stay_sub_threshold(self):
        detector = Detector(rules=[ParamShapeRule()])
        result = detector.score(_req(params={"q": "a'b;c"}))
        assert result.score == pytest.approx(0.6)
        assert not result.flagged

    def test_session_theft_flags_second_browser(self):
        detector = Detector()
        first = detector.score(_req(client="victim-c", cookies={"sess": "tok1"}))
        assert not first.flagged  # binds tok1 -> victim-c
        stolen = detector.score(_req(client="evil-c", cookies={"sess": "tok1"}))
        assert stolen.flagged
        assert "session:theft" in stolen.reasons
        again = detector.score(_req(client="victim-c", cookies={"sess": "tok1"}))
        assert not again.flagged  # the owner keeps using it freely

    def test_csrf_relogin_under_old_session_flags(self):
        detector = Detector()
        detector.score(
            _req(
                "POST",
                "/login.php",
                params={"wpName": "victim"},
                cookies={"sess": "s1"},
                client="victim-c",
            )
        )
        forged = detector.score(
            _req(
                "POST",
                "/login.php",
                params={"wpName": "attacker"},
                cookies={"sess": "s1"},
                client="victim-c",
            )
        )
        assert forged.flagged
        assert "session:csrf-login" in forged.reasons

    def test_acl_self_grant_over_stolen_session_flags(self):
        detector = Detector()
        # The attacker's browser is known to own the "mallory" account...
        detector.score(
            _req("POST", "/login.php", params={"wpName": "mallory"}, client="evil-c")
        )
        # ...the admin's session binds to the admin's browser...
        detector.score(_req(client="admin-c", cookies={"sess": "admsess"}))
        # ...and the grant rides the stolen session toward mallory.
        grant = detector.score(
            _req(
                "POST",
                "/acl.php",
                params={"action": "grant", "user": "mallory", "title": "Secret"},
                cookies={"sess": "admsess"},
                client="evil-c",
            )
        )
        assert grant.flagged
        assert "acl:self-grant" in grant.reasons
        assert "session:theft" in grant.reasons

    def test_acl_self_grant_over_own_session_is_sub_threshold(self):
        detector = Detector(rules=[SessionMisuseRule(), AclSelfGrantRule()])
        detector.score(
            _req("POST", "/login.php", params={"wpName": "mallory"}, client="evil-c")
        )
        detector.score(_req(client="evil-c", cookies={"sess": "own"}))
        grant = detector.score(
            _req(
                "POST",
                "/acl.php",
                params={"action": "grant", "user": "mallory", "title": "Pub"},
                cookies={"sess": "own"},
                client="evil-c",
            )
        )
        assert grant.score == pytest.approx(0.6)
        assert not grant.flagged

    def test_detector_counts_and_status(self):
        detector = Detector()
        detector.score(_req(params={"q": "benign"}))
        detector.score(_req(params={"q": TAUTOLOGY_PAYLOAD}))
        status = detector.status()
        assert status["scored"] == 2
        assert status["flagged"] == 1
        assert status["rules"] == [rule.name for rule in default_rules()]


# ---------------------------------------------------------------------------
# incident lifecycle over the admin HTTP surface
# ---------------------------------------------------------------------------


class TestIncidentPipeline:
    def test_incidents_route_404_without_detection(self):
        warp = WarpSystem()
        status, payload = _admin_json(warp, "GET", "/warp/admin/incidents")
        assert status == 404
        assert "not enabled" in payload["error"]

    def test_flagged_requests_open_and_merge_incidents(self):
        warp, _, clients = _detect_warp()
        response = _inject(clients["alice"])
        assert response.headers.get("X-Warp-Flagged") == "1"
        _inject(clients["alice"], UNION_PAYLOAD)  # same client, same (None) visit
        _inject(clients["bob"])
        entries = warp.incidents.list()
        assert len(entries) == 2
        merged = next(e for e in entries if e["client_id"] == "alice-load")
        assert len(merged["run_ids"]) == 2
        assert "injection:tautology" in merged["reasons"]
        assert "injection:union" in merged["reasons"]
        # Headerless load traffic presents no visit id, so the derived
        # spec falls back to cancelling the whole suspect client.
        assert merged["spec"]["kind"] == "cancel_client"

    def test_refresh_param_materializes_previews(self):
        warp, _, clients = _detect_warp()
        _inject(clients["alice"])
        status, payload = _admin_json(
            warp, "GET", "/warp/admin/incidents", refresh="1", force="1"
        )
        assert status == 200
        assert payload["n_incidents"] == 1
        preview = payload["incidents"][0]["preview"]
        assert preview is not None
        assert preview["affected_runs"] >= 1
        assert 0.0 <= preview["estimated_reexec_fraction"] <= 1.0

    def test_preview_skips_unchanged_graph_and_force_overrides(self):
        warp, _, clients = _detect_warp()
        _inject(clients["alice"])
        assert warp.incidents.refresh_once() == 1
        assert warp.incidents.refresh_once() == 0  # run-count stamp unchanged
        assert warp.incidents.refresh_once(force=True) == 1

    def test_one_click_repair_resolves_incident(self):
        warp, wiki, clients = _detect_warp()
        _inject(clients["alice"])
        incident_id = warp.incidents.list()[0]["incident_id"]
        status, accepted = _admin_json(
            warp, "POST", f"/warp/admin/incidents/{incident_id}/repair"
        )
        assert status == 202
        job_id = accepted["job_id"]
        for _ in range(500):
            _, job = _admin_json(warp, "GET", f"/warp/admin/repair/{job_id}")
            if job["status"] in ("done", "failed", "aborted", "canceled"):
                break
            time.sleep(0.01)
        assert job["status"] == "done"
        _, entry = _admin_json(
            warp, "GET", f"/warp/admin/incidents/{incident_id}"
        )
        assert entry["status"] == "resolved"
        assert warp.incidents.open_incidents() == []

    def test_dismiss_closes_without_repair(self):
        warp, _, clients = _detect_warp()
        _inject(clients["alice"])
        incident_id = warp.incidents.list()[0]["incident_id"]
        status, payload = _admin_json(
            warp, "POST", f"/warp/admin/incidents/{incident_id}/dismiss"
        )
        assert status == 200
        assert payload["status"] == "dismissed"
        assert warp.incidents.open_incidents() == []

    def test_unknown_incident_404(self):
        warp, _, _ = _detect_warp()
        status, _ = _admin_json(warp, "GET", "/warp/admin/incidents/inc-999")
        assert status == 404


# ---------------------------------------------------------------------------
# durable incidents: save/load and crash recovery
# ---------------------------------------------------------------------------


class TestIncidentDurability:
    def test_incidents_and_previews_survive_save_load(self, tmp_path):
        warp, _, clients = _detect_warp(
            wal_path=str(tmp_path / "wal.jsonl"), durability="always"
        )
        _inject(clients["alice"])
        assert warp.incidents.refresh_once(force=True) == 1
        before = warp.incidents.list()
        snap = str(tmp_path / "snap.json")
        warp.save(snap)

        reloaded = WarpSystem.load(snap, wal_path=str(tmp_path / "wal.jsonl"))
        # detection_config travels in the snapshot: the detector and the
        # incident manager come back without any caller wiring.
        assert reloaded.detector is not None
        after = reloaded.incidents.list()
        assert [e["incident_id"] for e in after] == [
            e["incident_id"] for e in before
        ]
        assert after[0]["preview"] == before[0]["preview"]
        assert after[0]["reasons"] == before[0]["reasons"]
        # The reloaded manager is live: previews keep refreshing and the
        # detector keeps flagging new traffic.
        assert reloaded.incidents.refresh_once(force=True) == 1
        wiki = WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server)
        wiki.register_code()
        evil = LoadClient("bob", reloaded.server)
        assert evil.login("pw-bob").status == 200
        _inject(evil)
        assert len(reloaded.incidents.list()) == 2

    def test_incidents_survive_crash_reload_from_wal(self, tmp_path):
        plane = FaultPlane()
        warp, _, clients = _detect_warp(
            plane=plane, wal_path=str(tmp_path / "wal.jsonl"), durability="always"
        )
        _inject(clients["alice"])
        _inject(clients["bob"], UNION_PAYLOAD)
        before = warp.incidents.list()
        assert len(before) == 2
        warp.graph.store.wal._mark_crashed()

        reloaded = WarpSystem.load(None, wal_path=str(tmp_path / "wal.jsonl"))
        # WAL-only recovery carries no snapshot config, so detection is
        # re-armed by the operator — over the replayed incident records.
        assert reloaded.detector is None
        assert sorted(reloaded.graph.store.incidents) == sorted(
            e["incident_id"] for e in before
        )
        reloaded.enable_detection()
        after = {e["incident_id"]: e for e in reloaded.incidents.list()}
        for entry in before:
            survivor = after[entry["incident_id"]]
            assert survivor["status"] == "open"
            assert survivor["reasons"] == entry["reasons"]
            assert survivor["spec"] == entry["spec"]


# ---------------------------------------------------------------------------
# the preview-refresh locking contract (no store-lock across the sweep)
# ---------------------------------------------------------------------------


class TestPreviewLockContract:
    def test_slow_plan_does_not_starve_writes_across_sweep(self, tmp_path):
        """Regression for the lock contract: refresh_once takes the store
        lock per incident, so a live write slots in between two slow
        plans instead of waiting out the whole sweep."""
        plane = FaultPlane()
        warp, _, clients = _detect_warp(plane=plane)
        _inject(clients["alice"])
        _inject(clients["bob"])
        assert len(warp.incidents.open_incidents()) == 2
        # Two stalled plans, 0.4s each: a sweep-wide lock would pin the
        # store for ~0.8s; per-incident locking releases at ~0.4s.
        plane.arm(point="detect.preview", kind="stall", times=2, fraction=0.4)

        done = {}

        def sweep():
            done["refreshed"] = warp.incidents.refresh_once(force=True)
            done["sweep_end"] = time.perf_counter()

        refresher = threading.Thread(target=sweep)
        refresher.start()
        time.sleep(0.1)  # inside the first stalled plan
        issued = time.perf_counter()
        response = clients["alice"].send(
            clients["alice"].request(
                "POST", "/edit.php", {"title": PAGE, "append": "\ninterleaved"}
            )
        )
        write_done = time.perf_counter()
        refresher.join()
        assert response.status == 200
        assert done["refreshed"] == 2
        # The write finished before the sweep did — impossible if the
        # lock were held across both plans — and waited at most one
        # stalled plan, not two.
        assert write_done < done["sweep_end"]
        assert write_done - issued < 0.65, f"write waited {write_done - issued:.2f}s"

    def test_stalled_plan_is_an_error_not_a_wedge(self):
        """A plan that *fails* (fault kind error) is captured on the
        incident and the sweep moves on."""
        plane = FaultPlane()
        warp, _, clients = _detect_warp(plane=plane)
        _inject(clients["alice"])
        plane.arm(point="detect.preview", kind="error", times=1)
        assert warp.incidents.refresh_once(force=True) == 0
        entry = warp.incidents.list()[0]
        assert entry["preview_error"]
        # Next sweep recovers and clears the error.
        assert warp.incidents.refresh_once(force=True) == 1
        assert warp.incidents.list()[0]["preview_error"] is None


# ---------------------------------------------------------------------------
# the attack corpus: coverage, determinism, exact recovery
# ---------------------------------------------------------------------------

CORPUS = generate_corpus(seed=0)


class TestCorpus:
    def test_corpus_coverage(self):
        assert len(CORPUS) >= 20
        assert len(ATTACK_CLASSES) >= 6
        assert {s.attack_class for s in CORPUS} == set(ATTACK_CLASSES)
        assert {s.app_shape for s in CORPUS} == set(APP_SHAPES)
        assert set(INJECTION_CLASSES) <= set(ATTACK_CLASSES)
        assert len({s.name for s in CORPUS}) == len(CORPUS)

    def test_generator_is_deterministic_per_seed(self):
        assert describe_corpus(5) == describe_corpus(5)
        assert describe_corpus(5) != describe_corpus(6)
        assert [s.describe() for s in generate_corpus(seed=0)] == [
            s.describe() for s in CORPUS
        ]

    @pytest.mark.parametrize("scenario", CORPUS, ids=lambda s: s.name)
    def test_scenario_recovers_exactly_through_incident_path(self, scenario):
        report = run_scenario_end_to_end(scenario)
        assert report["errors"] == [], "\n".join(report["errors"])
        assert report["incidents"] >= 1


# ---------------------------------------------------------------------------
# loadgen attacker mix
# ---------------------------------------------------------------------------


class TestLoadgenAttackMix:
    def test_invalid_rate_rejected(self):
        client = LoadClient("x", None)
        with pytest.raises(ValueError):
            LoadGen([client], ["P"], attack_rate=1.5)
        with pytest.raises(ValueError):
            LoadGen([client], ["P"], attack_rate=-0.1)

    def test_zero_rate_issues_no_attacks(self):
        warp, _, clients = _detect_warp()
        gen = LoadGen([clients["alice"]], [PAGE], seed=3)
        stats = LoadStats()
        rng = random.Random(1)
        for _ in range(30):
            gen.issue(rng, stats)
        assert stats.attacks == []
        summary = stats.detection_summary()
        assert summary["attacks"] == 0
        assert summary["false_positives"] == 0
        assert summary["recall"] == 1.0 and summary["precision"] == 1.0

    def test_attack_mix_joins_markers_against_flag_stamps(self):
        warp, _, clients = _detect_warp()
        gen = LoadGen(
            [clients["alice"], clients["bob"]],
            [PAGE, "Workshop"],
            seed=3,
            attack_rate=0.25,
        )
        stats = LoadStats()
        rng = random.Random(7)
        for _ in range(150):
            gen.issue(rng, stats)
        summary = stats.detection_summary()
        assert summary["attacks"] > 0
        assert len(stats.attacks) == summary["attacks"]
        assert summary["recall"] == 1.0, summary
        assert summary["precision"] == 1.0, summary
        assert summary["false_positives"] == 0
        # The flagged stream landed as incidents (merged per client).
        assert warp.incidents.status()["incidents"] >= 1

    def test_attack_payloads_are_state_safe(self):
        """The mixed-in payloads must not corrupt the site: benign write
        markers still land exactly once and pages carry no payload."""
        warp, wiki, clients = _detect_warp()
        gen = LoadGen([clients["alice"]], [PAGE], seed=5, attack_rate=0.3)
        stats = LoadStats()
        rng = random.Random(2)
        for _ in range(80):
            gen.issue(rng, stats)
        text = wiki.page_text(PAGE)
        for marker, page in stats.writes:
            assert text.count(marker) == 1, (marker, page)
        assert "UNION" not in text


# ---------------------------------------------------------------------------
# shard coordinator union view
# ---------------------------------------------------------------------------


class TestShardIncidentsUnion:
    # crc32 spreads 0 and 4 over the two shards (see RoutingTable).
    TENANTS = [0, 4]

    def test_union_view_stamps_owning_shard(self, tmp_path):
        cluster = ShardCluster(
            2,
            str(tmp_path),
            transport="local",
            tenants=self.TENANTS,
            shared_users=["mallory"],
        )
        try:
            for worker in cluster.workers:
                worker.warp.enable_detection()
            for tenant in self.TENANTS:
                response = cluster.handle(
                    HttpRequest(
                        "GET",
                        "/special_maintenance.php",
                        params={"thelang": TAUTOLOGY_PAYLOAD},
                        headers={
                            CLIENT_HEADER: "mallory-c",
                            TENANT_HEADER: f"tenant{tenant}",
                        },
                    )
                )
                assert response.headers.get("X-Warp-Flagged") == "1"
            response = cluster.handle(
                HttpRequest(
                    "GET",
                    "/warp/admin/shard/incidents",
                    params={"refresh": "1", "force": "1"},
                )
            )
            assert response.status == 200
            payload = json.loads(response.body)
            assert payload["n_incidents"] == 2
            assert {entry["shard"] for entry in payload["incidents"]} == {0, 1}
            for entry in payload["incidents"]:
                assert entry["preview"] is not None
            assert {
                shard: view["incidents"]
                for shard, view in payload["per_shard"].items()
            } == {"0": 1, "1": 1}
        finally:
            cluster.close()

    def test_union_view_reports_detectionless_workers(self, tmp_path):
        cluster = ShardCluster(
            2,
            str(tmp_path),
            transport="local",
            tenants=self.TENANTS,
        )
        try:
            cluster.workers[0].warp.enable_detection()
            response = cluster.handle(
                HttpRequest("GET", "/warp/admin/shard/incidents")
            )
            payload = json.loads(response.body)
            assert payload["n_incidents"] == 0
            assert payload["per_shard"]["0"]["status"] == 200
            assert payload["per_shard"]["1"]["status"] == 404
        finally:
            cluster.close()
