"""Unit tests for the application runtime: script versioning, dependency
recording, and nondeterminism record/replay (paper §3)."""

import pytest

from repro.ahg.records import NondetRecord
from repro.appserver.nondet import NondetReplayer, NondetSource
from repro.appserver.runtime import AppRuntime
from repro.appserver.scripts import ScriptStore
from repro.core.clock import LogicalClock
from repro.core.errors import ReproError
from repro.core.ids import IdAllocator
from repro.db.storage import Column, Database, TableSchema
from repro.http.message import HttpRequest
from repro.ttdb.timetravel import TimeTravelDB

import random


@pytest.fixture
def runtime():
    db = Database()
    clock = LogicalClock()
    ttdb = TimeTravelDB(db, clock)
    ttdb.create_table(
        TableSchema(
            "items",
            (Column("item_id", "int"), Column("name")),
            row_id_column="item_id",
            partition_columns=("name",),
        )
    )
    scripts = ScriptStore()
    return AppRuntime(scripts, ttdb, clock, IdAllocator(), rng=random.Random(1))


def register_page(runtime, name="page.php", handler=None):
    def default_handler(ctx):
        ctx.echo("<html><body>hello</body></html>")

    runtime.scripts.register(name, {"handle": handler or default_handler})


class TestScriptStore:
    def test_register_and_get(self, runtime):
        register_page(runtime)
        assert runtime.scripts.version("page.php") == 0

    def test_duplicate_registration_rejected(self, runtime):
        register_page(runtime)
        with pytest.raises(ReproError):
            register_page(runtime)

    def test_patch_bumps_version(self, runtime):
        register_page(runtime)
        v1 = runtime.scripts.patch("page.php", {"handle": lambda ctx: None})
        assert v1 == 1
        assert runtime.scripts.version("page.php") == 1

    def test_old_versions_still_accessible(self, runtime):
        register_page(runtime)
        old = runtime.scripts.get("page.php").at_version(0)
        runtime.scripts.patch("page.php", {"handle": lambda ctx: None})
        assert runtime.scripts.get("page.php").at_version(0) is old

    def test_unknown_script_raises(self, runtime):
        with pytest.raises(ReproError):
            runtime.scripts.get("missing.php")


class TestRunRecording:
    def test_run_records_request_and_response(self, runtime):
        register_page(runtime)
        request = HttpRequest("GET", "/page.php")
        response, record = runtime.execute("page.php", request)
        assert response.status == 200
        assert record.script == "page.php"
        assert record.request is request
        assert record.response.body.startswith("<html>")

    def test_loaded_files_recorded_with_versions(self, runtime):
        runtime.scripts.register("lib.php", {"helper": lambda: 42})

        def handler(ctx):
            lib = ctx.load("lib.php")
            ctx.echo(str(lib["helper"]()))

        register_page(runtime, handler=handler)
        _, record = runtime.execute("page.php", HttpRequest("GET", "/page.php"))
        assert record.loaded_files == {"page.php": 0, "lib.php": 0}

    def test_queries_recorded_in_order(self, runtime):
        def handler(ctx):
            ctx.query("INSERT INTO items (name) VALUES (?)", ("a",))
            ctx.query("SELECT * FROM items WHERE name = ?", ("a",))

        register_page(runtime, handler=handler)
        _, record = runtime.execute("page.php", HttpRequest("GET", "/page.php"))
        assert [q.kind for q in record.queries] == ["insert", "select"]
        assert record.queries[0].seq == 0
        assert record.queries[1].seq == 1
        assert record.queries[1].ts > record.queries[0].ts

    def test_query_read_set_recorded(self, runtime):
        def handler(ctx):
            ctx.query("SELECT * FROM items WHERE name = ?", ("x",))

        register_page(runtime, handler=handler)
        _, record = runtime.execute("page.php", HttpRequest("GET", "/page.php"))
        assert record.queries[0].read_set.disjuncts == (
            frozenset({("name", "x")}),
        )

    def test_missing_script_gives_404(self, runtime):
        response, record = runtime.execute("nope.php", HttpRequest("GET", "/nope"))
        assert response.status == 404

    def test_handler_exception_gives_500(self, runtime):
        def handler(ctx):
            ctx.query("SELECT broken syntax FROM")

        register_page(runtime, handler=handler)
        response, _ = runtime.execute("page.php", HttpRequest("GET", "/page.php"))
        assert response.status == 500

    def test_recording_disabled_skips_query_log(self, runtime):
        def handler(ctx):
            ctx.query("INSERT INTO items (name) VALUES ('a')")
            ctx.time()

        register_page(runtime, handler=handler)
        runtime.recording = False
        _, record = runtime.execute("page.php", HttpRequest("GET", "/page.php"))
        assert record.queries == []
        assert record.nondet == []

    def test_warp_headers_captured(self, runtime):
        register_page(runtime)
        request = HttpRequest(
            "GET",
            "/page.php",
            headers={
                "X-Warp-Client": "c1",
                "X-Warp-Visit": "3",
                "X-Warp-Request": "2",
            },
        )
        _, record = runtime.execute("page.php", request)
        assert record.browser_key() == ("c1", 3)
        assert record.request_id == 2


class TestNondet:
    def test_values_recorded(self, runtime):
        def handler(ctx):
            ctx.echo(str(ctx.time()))
            ctx.echo(str(ctx.rand()))
            ctx.echo(ctx.token())

        register_page(runtime, handler=handler)
        _, record = runtime.execute("page.php", HttpRequest("GET", "/page.php"))
        assert [n.func for n in record.nondet] == ["time", "rand", "token"]

    def test_replayer_returns_recorded_values_in_order(self, runtime):
        log = [
            NondetRecord("rand", 0, 111),
            NondetRecord("rand", 1, 222),
            NondetRecord("token", 0, "tok-a"),
        ]
        fallback = NondetSource(LogicalClock(), random.Random(9))
        replayer = NondetReplayer(log, fallback)
        assert replayer.call("rand") == 111
        assert replayer.call("token") == "tok-a"
        assert replayer.call("rand") == 222
        assert replayer.misses == 0

    def test_replayer_falls_back_when_exhausted(self):
        fallback = NondetSource(LogicalClock(), random.Random(9))
        replayer = NondetReplayer([NondetRecord("rand", 0, 5)], fallback)
        assert replayer.call("rand") == 5
        fresh = replayer.call("rand")
        assert isinstance(fresh, int)
        assert replayer.misses == 1

    def test_identical_reexecution_with_replay(self, runtime):
        """Re-running a handler with the recorded nondet log reproduces the
        byte-identical response (the §3.3 optimization)."""

        def handler(ctx):
            ctx.echo(f"tok={ctx.token()} t={ctx.time()}")

        register_page(runtime, handler=handler)
        request = HttpRequest("GET", "/page.php")
        response1, record1 = runtime.execute("page.php", request)
        replayer = NondetReplayer(record1.nondet, runtime.nondet_source)
        response2, _ = runtime.execute("page.php", request, nondet=replayer)
        assert response1.body == response2.body

    def test_different_without_replay(self, runtime):
        def handler(ctx):
            ctx.echo(f"tok={ctx.token()}")

        register_page(runtime, handler=handler)
        request = HttpRequest("GET", "/page.php")
        response1, _ = runtime.execute("page.php", request)
        response2, _ = runtime.execute("page.php", request)
        assert response1.body != response2.body
