"""Tests for the paper's extension features: UI conflict functions (§5.4),
per-client log quotas (§5.2), client-wide undo and retroactive credential
fixes (§2)."""

import pytest

from repro.ahg.records import VisitRecord
from repro.repair.replay import ReplayConfig
from repro.workload.scenarios import WIKI, WikiDeployment


class TestUiConflictFunction:
    def test_ui_conflict_flags_changed_displayed_data(self):
        """The paper's banking example: the page replays fine, but the
        application decides the displayed data changed materially."""

        def balance_changed(old_body, new_body):
            if old_body != new_body and "pagebody" in new_body:
                return "displayed page content changed"
            return None

        deployment = WikiDeployment(
            n_users=3,
            replay_config=ReplayConfig(ui_conflict_fn=balance_changed),
        )
        victim = deployment.users[0]
        attacker = deployment.login("attacker")
        attacker.open(f"{WIKI}/special_block.php?ip=5.5.5.5")
        attacker.type_into(
            "input[name=reason]",
            "<script>var u = doc_text('#username');"
            "http_post('/edit.php', {'title': u + '_notes', 'append': ' DEFACED'});"
            "</script>",
        )
        attacker.click("input[name=report]")
        deployment.login(victim)
        deployment.browser(victim).open(f"{WIKI}/special_block.php?ip=5.5.5.5")
        # The victim then *views* the defaced page: replay will show them
        # different content after repair — the UI conflict function fires.
        deployment.read_page(victim, f"{victim}_notes")
        result = deployment.patch("stored-xss")
        assert result.ok
        reasons = [c.reason for c in result.conflicts]
        assert any("UI conflict" in reason for reason in reasons)

    def test_no_ui_conflict_without_function(self):
        deployment = WikiDeployment(n_users=3)
        victim = deployment.users[0]
        attacker = deployment.login("attacker")
        attacker.open(f"{WIKI}/special_block.php?ip=5.5.5.5")
        attacker.type_into(
            "input[name=reason]",
            "<script>var u = doc_text('#username');"
            "http_post('/edit.php', {'title': u + '_notes', 'append': ' DEFACED'});"
            "</script>",
        )
        attacker.click("input[name=report]")
        deployment.login(victim)
        deployment.browser(victim).open(f"{WIKI}/special_block.php?ip=5.5.5.5")
        deployment.read_page(victim, f"{victim}_notes")
        result = deployment.patch("stored-xss")
        assert result.ok and not result.conflicts


class TestClientLogQuota:
    def test_quota_drops_oldest_visits(self):
        deployment = WikiDeployment(n_users=2)
        user = deployment.users[0]
        deployment.login(user)
        for _ in range(8):
            deployment.read_page(user, "Main_Page")
        graph = deployment.warp.graph
        client = deployment.client_id(user)
        before = len(graph.client_visits(client))
        dropped = graph.enforce_client_quota(max_visits_per_client=4)
        assert dropped == before - 4
        remaining = graph.client_visits(client)
        assert len(remaining) == 4
        # The newest logs are the ones kept.
        assert remaining == sorted(remaining, key=lambda v: v.ts)

    def test_quota_isolates_clients(self):
        """A chatty client's logs never evict another client's entries."""
        deployment = WikiDeployment(n_users=2)
        chatty, quiet = deployment.users[0], deployment.users[1]
        deployment.login(quiet)
        deployment.read_page(quiet, "Main_Page")
        deployment.login(chatty)
        for _ in range(10):
            deployment.read_page(chatty, "Main_Page")
        graph = deployment.warp.graph
        graph.enforce_client_quota(max_visits_per_client=3)
        assert len(graph.client_visits(deployment.client_id(quiet))) >= 2


class TestCancelClient:
    def test_all_actions_of_attacker_undone(self):
        deployment = WikiDeployment(n_users=3)
        deployment.login("attacker")
        attacker = deployment.browser("attacker")
        deployment.append_to_page("attacker", "Main_Page", "\nspam one")
        deployment.append_to_page("attacker", "Projects", "\nspam two")
        user = deployment.users[0]
        deployment.login(user)
        deployment.append_to_page(user, f"{user}_notes", "\nlegit")

        result = deployment.warp.cancel_client(deployment.client_id("attacker"))
        assert result.ok
        assert "spam one" not in deployment.wiki.page_text("Main_Page")
        assert "spam two" not in deployment.wiki.page_text("Projects")
        assert "legit" in deployment.wiki.page_text(f"{user}_notes")


class TestRetroactiveDbFix:
    def test_retroactive_password_change_invalidates_later_logins(self):
        """Paper §2: retroactively changing a stolen password undoes the
        attacker's later logins (at the risk of undoing legitimate ones)."""
        deployment = WikiDeployment(n_users=2)
        warp = deployment.warp
        leak_ts = warp.clock.now()

        # The "attacker" logs in with the stolen credentials and vandalises.
        thief = warp.client("thief-browser")
        thief.open(f"{WIKI}/login.php")
        thief.type_into("input[name=wpName]", "user1")
        thief.type_into("input[name=wpPassword]", "pw-user1")
        thief.submit("#loginform")
        deployment.browsers["thief-browser"] = thief
        visit = thief.open(f"{WIKI}/edit.php?title=Main_Page")
        thief.type_into("textarea", "stolen-credentials vandalism")
        thief.click("input[name=save]")
        assert deployment.wiki.page_text("Main_Page") == "stolen-credentials vandalism"

        # Retroactively rotate the password as of the leak time.
        result = warp.retroactive_db_fix(
            "UPDATE users SET password = ? WHERE name = ?",
            ("rotated-password", "user1"),
            ts=leak_ts + 1,
        )
        assert result.ok
        # The thief's login re-executes with the rotated password, fails,
        # and the vandalism unravels.
        assert deployment.wiki.page_text("Main_Page") == "welcome to the wiki"
        rows = warp.ttdb.execute(
            "SELECT password FROM users WHERE name = 'user1'"
        ).one()
        assert rows["password"] == "rotated-password"
