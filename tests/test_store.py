"""Unit tests for the record-store layer: indexes, mutation API, WAL."""

import json
import os
import subprocess
import sys

import pytest

from repro.ahg.records import AppRunRecord, QueryRecord, VisitRecord, PatchRecord
from repro.http.message import HttpRequest, HttpResponse
from repro.store.recordstore import RecordStore
from repro.store.wal import RecordWal
from repro.ttdb.partitions import ReadSet


def make_run(run_id, ts, files=None, client=None, visit=None, request_id=None, queries=()):
    run = AppRunRecord(
        run_id=run_id,
        ts_start=ts,
        ts_end=ts + 1,
        script="page.php",
        loaded_files=files or {"page.php": 0},
        request=HttpRequest("GET", "/page.php"),
        response=HttpResponse(body="x"),
        client_id=client,
        visit_id=visit,
        request_id=request_id,
    )
    run.queries = list(queries)
    return run


def make_query(qid, run_id, ts, table="pages", reads=None, writes=(), all_reads=False):
    if all_reads:
        read_set = ReadSet(table, disjuncts=None)
    else:
        read_set = ReadSet(
            table,
            disjuncts=tuple(frozenset({("title", r)}) for r in (reads or [])),
        )
    return QueryRecord(
        qid=qid,
        run_id=run_id,
        seq=0,
        ts=ts,
        sql="SELECT 1",
        params=("p", 1),
        kind="update" if writes else "select",
        table=table,
        read_set=read_set,
        written_row_ids=tuple(("pages", w) for w in writes),
        written_partitions=frozenset(("pages", "title", f"t{w}") for w in writes),
        full_table_write=False,
        snapshot=("select", True, (("a", 1),)),
    )


def test_store_package_imports_first():
    """Regression: ``import repro.store`` before ``repro.ahg`` must not
    trip the store↔graph circular import (the suite's own import order
    masks it in-process)."""
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
    proc = subprocess.run(
        [sys.executable, "-c", "import repro.store"],
        capture_output=True,
        text=True,
        env=dict(os.environ, PYTHONPATH=src),
    )
    assert proc.returncode == 0, proc.stderr


class TestIndexedLookups:
    def test_runs_of_visit_uses_index(self):
        store = RecordStore()
        store.add_run(make_run(1, 10, client="c1", visit=5, request_id=1))
        store.add_run(make_run(2, 20, client="c1", visit=5, request_id=2))
        store.add_run(make_run(3, 15, client="c1", visit=6, request_id=1))
        assert [r.run_id for r in store.runs_of_visit("c1", 5)] == [1, 2]
        assert store._runs_by_visit[("c1", 5)] == [1, 2]

    def test_runs_loading_file_bisects_on_ts_end(self):
        store = RecordStore()
        store.add_run(make_run(1, 10, files={"a.php": 0}))
        store.add_run(make_run(2, 30, files={"a.php": 0}))
        store.add_run(make_run(3, 50, files={"b.php": 0}))
        assert [r.run_id for r in store.runs_loading_file("a.php", 20)] == [2]
        assert [r.run_id for r in store.runs_loading_file("a.php", 0)] == [1, 2]
        assert store.runs_loading_file("c.php", 0) == []

    def test_queries_touching_is_time_ordered_without_resort(self):
        store = RecordStore()
        run = make_run(1, 5)
        run.queries = [
            make_query(3, 1, ts=30, reads=["A"]),
            make_query(1, 1, ts=10, reads=["A"]),
            make_query(2, 1, ts=20, writes=[7]),
        ]
        store.add_run(run)
        hits = store.queries_touching(
            "pages", {("pages", "title", "A"), ("pages", "title", "t7")}, since_ts=0
        )
        assert [q.qid for q in hits] == [1, 2, 3]
        hits = store.queries_touching("pages", {("pages", "title", "A")}, since_ts=10)
        assert [q.qid for q in hits] == [3]

    def test_replace_run_refreshes_file_index(self):
        store = RecordStore()
        store.add_run(make_run(1, 10, files={"a.php": 0}))
        replacement = make_run(1, 10, files={"b.php": 1})
        assert store.replace_run(1, replacement) is not None
        assert store.runs_loading_file("a.php", 0) == []
        assert [r.run_id for r in store.runs_loading_file("b.php", 0)] == [1]
        assert store.runs_in_order() == [replacement]

    def test_replace_run_rejects_mismatched_id(self):
        store = RecordStore()
        store.add_run(make_run(1, 10))
        with pytest.raises(ValueError):
            store.replace_run(1, make_run(2, 10))

    def test_replace_unknown_run_returns_none(self):
        store = RecordStore()
        assert store.replace_run(99, make_run(99, 10)) is None

    def test_query_count_tracks_mutations(self):
        store = RecordStore()
        run = make_run(1, 10, queries=[make_query(1, 1, 10), make_query(2, 1, 11)])
        store.add_run(run)
        assert store.query_count == 2
        store.replace_run(1, make_run(1, 10, queries=[make_query(3, 1, 12)]))
        assert store.query_count == 1
        store.gc(horizon_ts=100)
        assert store.query_count == 0


class TestGcAndQuotaConsistency:
    """Regression: gc + enforce_client_quota leave request_map and the
    per-client visit lists consistent with the surviving records."""

    def _consistent(self, store):
        # Every request_map entry points at a live run with that identity.
        for (client_id, visit_id, request_id), run_id in store.request_map.items():
            run = store.runs.get(run_id)
            assert run is not None
            assert (run.client_id, run.visit_id, run.request_id) == (
                client_id,
                visit_id,
                request_id,
            )
        # Every client-visit id resolves to a stored visit, and vice versa.
        listed = set()
        for client_id, visit_ids in store._client_visits.items():
            assert len(visit_ids) == len(set(visit_ids))
            for visit_id in visit_ids:
                assert (client_id, visit_id) in store.visits
                listed.add((client_id, visit_id))
        assert listed == set(store.visits)
        # The visit index only references live runs.
        for key, run_ids in store._runs_by_visit.items():
            for run_id in run_ids:
                assert run_id in store.runs

    def test_gc_drops_dead_runs_and_visits_in_one_pass(self):
        store = RecordStore()
        for i in range(1, 6):
            store.add_visit(VisitRecord("c1", i, ts=i * 10, url="/x"))
            store.add_run(
                make_run(i, i * 10, client="c1", visit=i, request_id=1)
            )
        removed = store.gc(horizon_ts=35)
        # Runs 1..3 end at 11/21/31 (< 35); their visits die with them.
        assert removed == 6
        assert sorted(store.runs) == [4, 5]
        assert sorted(v for (_, v) in store.visits) == [4, 5]
        self._consistent(store)

    def test_gc_keeps_visit_with_surviving_run(self):
        store = RecordStore()
        store.add_visit(VisitRecord("c1", 1, ts=5, url="/x"))
        store.add_run(make_run(1, 100, client="c1", visit=1, request_id=1))
        store.gc(horizon_ts=50)
        assert ("c1", 1) in store.visits
        self._consistent(store)

    def test_quota_then_gc_stay_consistent(self):
        store = RecordStore()
        for i in range(1, 11):
            store.add_visit(VisitRecord("c1", i, ts=i, url="/x"))
            store.add_run(make_run(i, i, client="c1", visit=i, request_id=1))
        dropped = store.enforce_client_quota(max_visits_per_client=4)
        assert dropped == 6
        assert [v.visit_id for v in store.client_visits("c1")] == [7, 8, 9, 10]
        self._consistent_after_quota(store)
        store.gc(horizon_ts=9)
        self._consistent_after_quota(store)

    def _consistent_after_quota(self, store):
        # Quota drops visit logs but keeps server-side runs, so request_map
        # may outlive the visit; it must still point at live runs.
        for key, run_id in store.request_map.items():
            assert run_id in store.runs
        for client_id, visit_ids in store._client_visits.items():
            for visit_id in visit_ids:
                assert (client_id, visit_id) in store.visits
        assert set(store.visits) == {
            (c, v) for c, ids in store._client_visits.items() for v in ids
        }


class TestDurability:
    def test_snapshot_round_trip(self, tmp_path):
        store = RecordStore()
        store.add_visit(VisitRecord("c1", 1, ts=5, url="/x"))
        run = make_run(1, 10, client="c1", visit=1, request_id=1)
        run.queries = [make_query(1, 1, 10, reads=["A"], writes=[2])]
        store.add_run(run)
        store.add_patch(PatchRecord(file="a.php", new_version=1, apply_ts=3))

        path = str(tmp_path / "snapshot.json")
        store.save_snapshot(path)
        loaded = RecordStore.recover(snapshot_path=path)

        assert sorted(loaded.runs) == sorted(store.runs)
        assert set(loaded.visits) == set(store.visits)
        assert [p.file for p in loaded.patches] == ["a.php"]
        assert loaded.query_count == store.query_count
        original = store.runs[1].queries[0]
        restored = loaded.runs[1].queries[0]
        assert restored.snapshot == original.snapshot
        assert restored.read_set == original.read_set
        assert restored.written_partitions == original.written_partitions
        assert restored.params == original.params
        assert [r.run_id for r in loaded.runs_loading_file("page.php", 0)] == [1]

    def test_wal_replay_restores_post_snapshot_records(self, tmp_path):
        wal_path = str(tmp_path / "records.wal")
        snap_path = str(tmp_path / "snapshot.json")
        store = RecordStore(wal=RecordWal(wal_path))
        store.add_run(make_run(1, 10))
        store.save_snapshot(snap_path)  # truncates the WAL
        store.add_run(make_run(2, 20))
        store.add_visit(VisitRecord("c1", 1, ts=5, url="/x"))

        recovered = RecordStore.recover(snapshot_path=snap_path, wal_path=wal_path)
        assert sorted(recovered.runs) == [1, 2]
        assert ("c1", 1) in recovered.visits

    def test_wal_replay_skips_torn_tail(self, tmp_path):
        wal_path = str(tmp_path / "records.wal")
        store = RecordStore(wal=RecordWal(wal_path))
        store.add_run(make_run(1, 10))
        with open(wal_path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "run", "data": {"tr')  # crash mid-append
        recovered = RecordStore.recover(wal_path=wal_path)
        assert sorted(recovered.runs) == [1]

    def test_valid_json_tail_without_newline_is_still_torn(self, tmp_path):
        """A crash can cut a write exactly at the closing brace: valid
        JSON, no newline.  Replay must treat it as torn — repair()
        truncates it, and two recoveries of the same file must agree."""
        wal_path = str(tmp_path / "records.wal")
        store = RecordStore(wal=RecordWal(wal_path))
        store.add_run(make_run(1, 10))
        with open(wal_path, "r", encoding="utf-8") as fh:
            run2_line = fh.readline().replace('"run_id": 1', '"run_id": 2')
        with open(wal_path, "a", encoding="utf-8") as fh:
            fh.write(run2_line.rstrip("\n"))  # complete JSON, missing newline

        first = RecordStore.recover(wal_path=wal_path)
        second = RecordStore.recover(wal_path=wal_path)
        assert sorted(first.runs) == sorted(second.runs) == [1]

    def test_torn_tail_is_truncated_before_new_appends(self, tmp_path):
        """Appending after a torn fragment must not weld a valid entry onto
        it (that line would be unparseable forever, losing every entry
        journaled after the first crash)."""
        wal_path = str(tmp_path / "records.wal")
        store = RecordStore(wal=RecordWal(wal_path))
        store.add_run(make_run(1, 10))
        with open(wal_path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "run", "data": {"tr')  # crash mid-append

        recovered = RecordStore.recover(wal_path=wal_path)
        recovered.add_run(make_run(2, 20))  # journaled after recovery

        again = RecordStore.recover(wal_path=wal_path)
        assert sorted(again.runs) == [1, 2]

    def test_visit_delta_entries_replay_onto_base_record(self, tmp_path):
        wal_path = str(tmp_path / "records.wal")
        store = RecordStore(wal=RecordWal(wal_path))
        visit = VisitRecord("c1", 1, ts=5, url="/x")
        store.add_visit(visit)
        from repro.ahg.records import EventRecord

        for i in range(3):
            event = EventRecord(etype="input", xpath=f"//input[{i}]")
            visit.events.append(event)
            store.log_visit_event("c1", 1, event)
        visit.request_ids.append(7)
        store.log_visit_request("c1", 1, 7)
        visit.cookies_after = {"o": {"sess": "tok"}}
        store.log_visit_cookies("c1", 1, visit.cookies_after)

        recovered = RecordStore.recover(wal_path=wal_path)
        restored = recovered.visits[("c1", 1)]
        assert [e.xpath for e in restored.events] == [e.xpath for e in visit.events]
        assert restored.request_ids == [7]
        assert restored.cookies_after == {"o": {"sess": "tok"}}
        # Delta journaling: exactly one full "visit" entry, N small deltas.
        kinds = [kind for kind, _ in RecordWal.entries(wal_path)]
        assert kinds.count("visit") == 1
        assert kinds.count("visit_event") == 3

    def test_replay_is_idempotent_over_snapshot_contents(self, tmp_path):
        """Crash window: snapshot written but WAL not yet truncated —
        replaying entries the snapshot already covers must not duplicate
        records."""
        wal_path = str(tmp_path / "records.wal")
        snap_path = str(tmp_path / "snapshot.json")
        store = RecordStore(wal=RecordWal(wal_path))
        run = make_run(1, 10, client="c1", visit=1, request_id=1)
        run.queries = [make_query(1, 1, 10)]
        store.add_run(run)
        store.add_visit(VisitRecord("c1", 1, ts=5, url="/x"))
        store.add_patch(PatchRecord(file="a.php", new_version=1, apply_ts=3))
        with open(snap_path, "w", encoding="utf-8") as fh:
            json.dump(store.to_snapshot(), fh)  # crash before wal.truncate()

        recovered = RecordStore.recover(snapshot_path=snap_path, wal_path=wal_path)
        assert len(recovered.runs_in_order()) == 1
        assert recovered.query_count == 1
        assert len(recovered.client_visits("c1")) == 1
        assert len(recovered.patches) == 1

    def test_save_snapshot_is_atomic(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        store = RecordStore()
        store.add_run(make_run(1, 10))
        store.save_snapshot(path)
        # No stray temp files; the snapshot parses.
        assert os.listdir(str(tmp_path)) == ["snapshot.json"]
        with open(path, encoding="utf-8") as fh:
            assert len(json.load(fh)["runs"]) == 1

    def test_recover_refuses_wal_truncated_against_other_snapshot(self, tmp_path):
        from repro.core.errors import ReproError

        wal_path = str(tmp_path / "records.wal")
        store = RecordStore(wal=RecordWal(wal_path))
        store.add_run(make_run(1, 10))
        p1 = str(tmp_path / "one.json")
        store.save_snapshot(p1)
        store.add_run(make_run(2, 20))
        p2 = str(tmp_path / "two.json")
        store.save_snapshot(p2)  # truncates the WAL against snapshot two

        with pytest.raises(ReproError, match="different snapshot"):
            RecordStore.recover(snapshot_path=p1, wal_path=wal_path)
        assert sorted(RecordStore.recover(snapshot_path=p2, wal_path=wal_path).runs) == [1, 2]

    def test_wal_journals_replace_and_gc(self, tmp_path):
        wal_path = str(tmp_path / "records.wal")
        store = RecordStore(wal=RecordWal(wal_path))
        store.add_run(make_run(1, 10))
        store.add_run(make_run(2, 100))
        store.replace_run(1, make_run(1, 10, files={"patched.php": 1}))
        store.gc(horizon_ts=50)

        recovered = RecordStore.recover(wal_path=wal_path)
        assert sorted(recovered.runs) == [2]
        kinds = [kind for kind, _ in RecordWal.entries(wal_path)]
        assert kinds == ["run", "run", "replace_run", "gc"]
