"""Shared test configuration: storage-backend selection.

The suite honours ``REPRO_DB_BACKEND=python|sqlite`` — every test that
builds its database through :func:`repro.db.engine.create_database`
(directly or via :class:`repro.warp.WarpSystem`) runs against the
selected engine, so CI can execute the same suites across the storage
matrix without test changes.
"""

import os

import pytest

from repro.db.engine import BACKEND_ENV, resolve_backend


def pytest_report_header(config):
    raw = os.environ.get(BACKEND_ENV)
    resolved = resolve_backend()
    suffix = f" ({BACKEND_ENV}={raw})" if raw else " (default)"
    return f"repro storage backend: {resolved}{suffix}"


@pytest.fixture
def db_backend():
    """The storage backend name the suite is running against."""
    return resolve_backend()
