"""The high-throughput serving path (PR 6).

Unit and integration coverage for the three tentpole layers and their
satellites:

* group-commit WAL semantics: commit tickets, leader-based batching,
  truncate/close interaction with the buffer, torn-tail repair;
* the per-partition statement cache: hits are indistinguishable from
  re-execution, invalidation is partition-precise, every visibility
  transition flushes;
* the dependency-invalidated response cache: keying, partition-precise
  invalidation, script-patch eviction, token-guarded fills;
* striped vs coarse record-store locking agree under 16 real threads;
* the bounded ``ServerPool`` (backpressure 503s, clean close);
* identity batching (``tick_many`` / ``next_many``) equals repeated
  single draws;
* size-triggered WAL rotation under live traffic reloads identically;
* serving-path knobs persist through ``save``/``load``.
"""

import os
import threading

import pytest

from repro.core.clock import LogicalClock
from repro.core.ids import IdAllocator
from repro.db.storage import Column, Database, TableSchema
from repro.http.message import HttpRequest, HttpResponse
from repro.http.pool import ServerPool
from repro.store.wal import RecordWal
from repro.ttdb.timetravel import TimeTravelDB
from repro.warp import WarpSystem
from repro.workload.loadgen import make_load_clients
from repro.workload.scenarios import WikiDeployment


# ---------------------------------------------------------------------------
# group-commit WAL
# ---------------------------------------------------------------------------


class TestGroupCommitWal:
    def test_always_mode_tickets_are_preresolved(self, tmp_path):
        wal = RecordWal(str(tmp_path / "a.wal"), durability="always")
        ticket = wal.append("mark", {"n": 1})
        assert ticket.done
        assert ticket.wait(0)
        wal.close()
        assert list(RecordWal.entries(wal.path)) == [("mark", {"n": 1})]

    def test_none_mode_skips_fsync_but_still_logs(self, tmp_path):
        wal = RecordWal(str(tmp_path / "n.wal"), durability="none")
        assert wal.append("mark", {"n": 1}).done
        wal.close()
        assert list(RecordWal.entries(wal.path)) == [("mark", {"n": 1})]

    def test_group_ticket_resolves_on_wait(self, tmp_path):
        wal = RecordWal(str(tmp_path / "g.wal"), durability="group")
        ticket = wal.append("mark", {"n": 1})
        assert ticket.wait(5.0)
        assert ticket.done
        assert wal.is_durable(ticket.seq)
        # Durable means readable by an independent recovery right now.
        assert ("mark", {"n": 1}) in list(RecordWal.entries(wal.path))
        wal.close()

    def test_group_sync_covers_everything_appended(self, tmp_path):
        wal = RecordWal(str(tmp_path / "s.wal"), durability="group")
        tickets = [wal.append("mark", {"n": i}) for i in range(10)]
        assert wal.sync(5.0)
        assert all(t.done for t in tickets)
        assert [d["n"] for _, d in RecordWal.entries(wal.path)] == list(range(10))
        wal.close()

    def test_concurrent_committers_share_batches_in_seq_order(self, tmp_path):
        wal = RecordWal(
            str(tmp_path / "c.wal"), durability="group", flush_interval=60.0
        )
        n_threads, per_thread = 8, 25
        failures = []

        def commit(worker):
            for i in range(per_thread):
                ticket = wal.append("mark", {"w": worker, "i": i})
                if not ticket.wait(10.0):
                    failures.append((worker, i))

        threads = [
            threading.Thread(target=commit, args=(w,)) for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        entries = list(RecordWal.entries(wal.path))
        assert len(entries) == n_threads * per_thread
        # Per-thread order is preserved (the file is in append/seq order).
        for w in range(n_threads):
            mine = [d["i"] for _, d in entries if d["w"] == w]
            assert mine == list(range(per_thread))
        wal.close()

    def test_flusher_commits_unwaited_entries(self, tmp_path):
        wal = RecordWal(
            str(tmp_path / "f.wal"), durability="group", flush_interval=0.005
        )
        ticket = wal.append("mark", {"n": 1})  # nobody waits
        deadline = 50
        while not ticket.done and deadline:
            threading.Event().wait(0.01)
            deadline -= 1
        assert ticket.done, "background flusher never committed the buffer"
        wal.close()

    def test_truncate_drops_buffer_and_resolves_tickets(self, tmp_path):
        wal = RecordWal(
            str(tmp_path / "t.wal"), durability="group", flush_interval=60.0
        )
        ticket = wal.append("mark", {"n": 1})
        wal.truncate()
        # The entry was intentionally discarded; waiters must not hang.
        assert ticket.wait(1.0)
        assert list(RecordWal.entries(wal.path)) == []
        after = wal.append("mark", {"n": 2})
        assert after.wait(5.0)
        assert list(RecordWal.entries(wal.path)) == [("mark", {"n": 2})]
        wal.close()

    def test_close_drains_buffer(self, tmp_path):
        wal = RecordWal(
            str(tmp_path / "d.wal"), durability="group", flush_interval=60.0
        )
        wal.append("mark", {"n": 1})
        wal.close()
        assert list(RecordWal.entries(wal.path)) == [("mark", {"n": 1})]

    def test_torn_tail_repaired_and_never_replayed(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        wal = RecordWal(path, durability="always")
        wal.append("mark", {"n": 1})
        wal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "mark", "data": {"n": 2}')  # no newline: torn
        assert list(RecordWal.entries(path)) == [("mark", {"n": 1})]
        removed = RecordWal.repair(path)
        assert removed > 0
        # Re-opening repairs too, so appends never follow a torn fragment.
        wal2 = RecordWal(path, durability="always")
        wal2.append("mark", {"n": 3})
        wal2.close()
        assert list(RecordWal.entries(path)) == [
            ("mark", {"n": 1}),
            ("mark", {"n": 3}),
        ]


# ---------------------------------------------------------------------------
# per-partition statement cache
# ---------------------------------------------------------------------------


def make_ttdb():
    db = Database()
    tt = TimeTravelDB(db, LogicalClock(), enabled=True)
    tt.create_table(
        TableSchema(
            name="pages",
            columns=(Column("page_id", "int"), Column("title"), Column("body")),
            row_id_column="page_id",
            partition_columns=("title",),
        )
    )
    return tt


def spy_executions(tt):
    """Count how many SELECTs actually hit the executor (misses); cache
    hits bypass ``_run_locked`` entirely."""
    counter = {"n": 0}
    inner = tt._run_locked

    def wrapped(stmt, sql, params, ctx):
        if sql.lstrip().upper().startswith("SELECT"):
            counter["n"] += 1
        return inner(stmt, sql, params, ctx)

    tt._run_locked = wrapped
    return counter


class TestStatementCache:
    def test_hit_equals_reexecution(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        executions = spy_executions(tt)
        first = tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        second = tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        assert executions["n"] == 1, "second SELECT must be served from cache"
        assert second.rows == first.rows == [{"body": "v1"}]
        assert second.read_set == first.read_set
        assert second.ts > first.ts, "a hit still draws a fresh timestamp"
        assert second.result.snapshot() == first.result.snapshot()

    def test_invalidation_is_partition_precise(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'a1')")
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (2, 'B', 'b1')")
        tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        tt.execute("SELECT body FROM pages WHERE title = ?", ("B",))
        executions = spy_executions(tt)
        # A write to partition B must not invalidate the cached A read...
        tt.execute("UPDATE pages SET body = 'b2' WHERE title = 'B'")
        res_a = tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        assert executions["n"] == 0, "write to B invalidated the cached A read"
        assert res_a.rows == [{"body": "a1"}]
        # ...but it must invalidate the cached B read.
        res_b = tt.execute("SELECT body FROM pages WHERE title = ?", ("B",))
        assert executions["n"] == 1
        assert res_b.rows == [{"body": "b2"}]

    def test_full_table_write_invalidates_everything(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'a1')")
        tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        executions = spy_executions(tt)
        tt.execute("UPDATE pages SET body = 'flat'")
        res = tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        assert executions["n"] == 1
        assert res.rows == [{"body": "flat"}]

    def test_unpartitioned_read_invalidated_by_any_table_write(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'a1')")
        assert tt.execute("SELECT COUNT(*) FROM pages").scalar() == 1
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (2, 'B', 'b1')")
        assert tt.execute("SELECT COUNT(*) FROM pages").scalar() == 2

    def test_cached_rows_isolated_from_caller_mutation(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        first = tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        first.rows[0]["body"] = "tampered"
        second = tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        assert second.rows == [{"body": "v1"}]

    def test_generation_switch_flushes(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        tt.begin_repair()
        assert not tt._stmt_cache
        tt.execute_at(
            "UPDATE pages SET body = 'repaired' WHERE title = 'A'",
            (),
            ts=tt.clock.tick(),
        )
        tt.finalize_repair()
        assert not tt._stmt_cache
        res = tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        assert res.rows == [{"body": "repaired"}]

    def test_rollback_and_gc_flush(self):
        tt = make_ttdb()
        tt.execute("INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')")
        tt.execute("SELECT body FROM pages WHERE title = ?", ("A",))
        assert tt._stmt_cache
        tt.gc(tt.clock.now())
        assert not tt._stmt_cache

    def test_oversized_results_not_cached(self):
        tt = make_ttdb()
        for i in range(20):
            tt.execute(
                "INSERT INTO pages (page_id, title, body) VALUES "
                f"({i}, 'T{i}', 'x')"
            )
        executions = spy_executions(tt)
        tt.execute("SELECT * FROM pages")
        tt.execute("SELECT * FROM pages")
        assert executions["n"] == 2, "a 20-row result must not be cached"


# ---------------------------------------------------------------------------
# identity batching
# ---------------------------------------------------------------------------


class TestIdentityBatching:
    def test_tick_many_equals_repeated_ticks(self):
        a, b = LogicalClock(), LogicalClock()
        singles = [a.tick() for _ in range(5)]
        first = b.tick_many(5)
        assert list(range(first, first + 5)) == singles
        assert a.now() == b.now()
        # Interleaving batched and single draws stays strictly monotone.
        assert b.tick() == singles[-1] + 1

    def test_next_many_equals_repeated_next(self):
        a, b = IdAllocator(), IdAllocator()
        singles = [a.next("q") for _ in range(4)]
        first = b.next_many("q", 4)
        assert list(range(first, first + 4)) == singles
        assert a.peek("q") == b.peek("q")
        assert b.next("q") == singles[-1] + 1

    def test_batched_draws_reject_non_positive_counts(self):
        with pytest.raises(ValueError):
            LogicalClock().tick_many(0)
        with pytest.raises(ValueError):
            IdAllocator().next_many("q", 0)


# ---------------------------------------------------------------------------
# response cache
# ---------------------------------------------------------------------------


def _cached_wiki(**kwargs):
    kwargs.setdefault("response_cache", True)
    return WikiDeployment(n_users=2, seed=5, **kwargs)


class TestResponseCache:
    def _serve(self, deployment, client, method, path, params, append=None):
        request = HttpRequest(
            method,
            path,
            params=dict(params),
            cookies=dict(client.cookies),
            headers={"X-Warp-Client": f"{client.name}-load"},
        )
        return client.send(request)

    def _deploy(self, **kwargs):
        deployment = _cached_wiki(**kwargs)
        clients = make_load_clients(
            deployment.wiki, deployment.warp.server, ["c0", "c1"]
        )
        return deployment, clients

    def test_repeat_get_is_a_hit_with_identical_bytes(self):
        deployment, clients = self._deploy()
        cache = deployment.warp.response_cache
        first = self._serve(
            deployment, clients[0], "GET", "/edit.php", {"title": "Main_Page"}
        )
        second = self._serve(
            deployment, clients[0], "GET", "/edit.php", {"title": "Main_Page"}
        )
        assert first.status == second.status == 200
        assert first.key() == second.key()
        stats = cache.stats()
        assert stats["hits"] >= 1
        # The hit was journaled as a real run: the graph grew.
        runs = deployment.warp.graph.runs
        assert len(runs) >= 2

    def test_key_includes_params_and_cookies(self):
        deployment, clients = self._deploy()
        cache = deployment.warp.response_cache
        self._serve(deployment, clients[0], "GET", "/edit.php", {"title": "Main_Page"})
        # Different params: not a hit for the same script.
        self._serve(deployment, clients[0], "GET", "/edit.php", {"title": "Projects"})
        # Different cookies (another session): not a hit either.
        self._serve(deployment, clients[1], "GET", "/edit.php", {"title": "Main_Page"})
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 3

    def test_write_invalidates_only_its_partition(self):
        deployment, clients = self._deploy()
        cache = deployment.warp.response_cache
        self._serve(deployment, clients[0], "GET", "/edit.php", {"title": "Main_Page"})
        self._serve(deployment, clients[0], "GET", "/edit.php", {"title": "Projects"})
        before = len(cache)
        assert before == 2
        response = self._serve(
            deployment,
            clients[0],
            "POST",
            "/edit.php",
            {"title": "Projects", "append": "\nmore."},
        )
        assert response.status == 200
        # The Projects entry died; Main_Page survived and still hits.
        self._serve(deployment, clients[0], "GET", "/edit.php", {"title": "Main_Page"})
        assert cache.stats()["hits"] == 1
        fresh = self._serve(
            deployment, clients[0], "GET", "/edit.php", {"title": "Projects"}
        )
        assert "more." in fresh.body
        assert cache.stats()["invalidations"] >= 1

    def test_script_patch_evicts_cached_entries(self):
        deployment, clients = self._deploy()
        cache = deployment.warp.response_cache
        self._serve(deployment, clients[0], "GET", "/edit.php", {"title": "Main_Page"})
        assert len(cache) == 1
        scripts = deployment.warp.scripts
        scripts.patch("edit.php", dict(scripts.exports("edit.php")))
        self._serve(deployment, clients[0], "GET", "/edit.php", {"title": "Main_Page"})
        assert cache.stats()["hits"] == 0

    def test_repair_flushes_and_bypasses_the_cache(self):
        deployment, clients = self._deploy()
        cache = deployment.warp.response_cache
        self._serve(deployment, clients[0], "GET", "/edit.php", {"title": "Main_Page"})
        assert len(cache) == 1
        deployment.login("attacker")
        deployment.append_to_page("attacker", "Main_Page", "\nSPAM")
        result = deployment.warp.cancel_client(deployment.client_id("attacker"))
        assert result.ok
        assert len(cache) == 0, "repair must flush the response cache"
        fresh = self._serve(
            deployment, clients[0], "GET", "/edit.php", {"title": "Main_Page"}
        )
        assert "SPAM" not in fresh.body

    def test_post_responses_never_cached(self):
        deployment, clients = self._deploy()
        cache = deployment.warp.response_cache
        self._serve(
            deployment,
            clients[0],
            "POST",
            "/edit.php",
            {"title": "Main_Page", "append": "\nx."},
        )
        assert len(cache) == 0

    def test_stale_fill_token_refused(self):
        deployment, clients = self._deploy()
        cache = deployment.warp.response_cache
        response = self._serve(
            deployment, clients[0], "GET", "/edit.php", {"title": "Main_Page"}
        )
        assert response.status == 200
        # Re-filling with a token older than an intersecting write refuses.
        token = cache.write_token()
        self._serve(
            deployment,
            clients[0],
            "POST",
            "/edit.php",
            {"title": "Main_Page", "append": "\ny."},
        )
        get_record = None
        for record in deployment.warp.graph.runs.values():
            if record.request.method == "GET" and cache.cacheable(record):
                get_record = record
        assert get_record is not None
        assert not cache.put(
            "edit.php", get_record.request, get_record, token
        ), "a fill racing an intersecting write must be refused"
        assert cache.stats()["refused_fills"] >= 1


# ---------------------------------------------------------------------------
# sequential cached ≡ uncached (identity parity)
# ---------------------------------------------------------------------------


class TestCachedIdentityParity:
    def test_sequential_cached_run_ids_match_uncached(self):
        """With no concurrency, a cached deployment's id/timestamp streams
        are *byte-identical* to an uncached one's — hits draw identity in
        exactly the order an uncached execution would."""

        def drive(response_cache):
            deployment = WikiDeployment(
                n_users=1, seed=9, response_cache=response_cache
            )
            (client,) = make_load_clients(
                deployment.wiki, deployment.warp.server, ["c0"]
            )
            responses = []
            for step in range(12):
                if step % 4 == 3:
                    request = HttpRequest(
                        "POST",
                        "/edit.php",
                        params={"title": "Main_Page", "append": f"\nstep{step}."},
                        cookies=dict(client.cookies),
                        headers={"X-Warp-Client": "c0-load"},
                    )
                else:
                    request = HttpRequest(
                        "GET",
                        "/edit.php",
                        params={"title": "Main_Page"},
                        cookies=dict(client.cookies),
                        headers={"X-Warp-Client": "c0-load"},
                    )
                responses.append(client.send(request).key())
            graph = deployment.warp.graph.to_snapshot()
            clock = deployment.warp.clock.now()
            ids = deployment.warp.ids.state_dict()
            return responses, graph, clock, ids

        cached = drive(True)
        uncached = drive(False)
        assert cached[0] == uncached[0], "responses diverged"
        assert cached[2] == uncached[2], "clock diverged"
        assert cached[3] == uncached[3], "id counters diverged"
        assert cached[1] == uncached[1], "graph records diverged"


# ---------------------------------------------------------------------------
# ServerPool backpressure
# ---------------------------------------------------------------------------


class _StubServer:
    """Blocks every request on an event; counts entries."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)
        self.served = 0
        self._lock = threading.Lock()

    def handle(self, request):
        self.entered.release()
        self.release.wait(10.0)
        with self._lock:
            self.served += 1
        return HttpResponse(status=200, body="ok")


class TestServerPool:
    def test_serves_through_workers(self):
        deployment = WikiDeployment(n_users=1, seed=3)
        pool = ServerPool(deployment.warp.server, workers=2, queue_depth=8)
        try:
            (client,) = make_load_clients(deployment.wiki, pool, ["c0"])
            response = client.send(
                HttpRequest(
                    "GET",
                    "/edit.php",
                    params={"title": "Main_Page"},
                    cookies=dict(client.cookies),
                    headers={"X-Warp-Client": "c0-load"},
                )
            )
            assert response.status == 200
        finally:
            pool.close()

    def test_full_queue_sheds_load_with_503(self):
        stub = _StubServer()
        pool = ServerPool(stub, workers=1, queue_depth=1)
        try:
            blocked = pool.submit(HttpRequest("GET", "/x", params={}))
            assert stub.entered.acquire(timeout=5.0), "worker never picked up"
            queued = pool.submit(HttpRequest("GET", "/x", params={}))
            shed = pool.submit(HttpRequest("GET", "/x", params={}))
            overflow = shed.wait(1.0)
            assert overflow.status == 503
            stub.release.set()
            assert blocked.wait(5.0).status == 200
            assert queued.wait(5.0).status == 200
        finally:
            stub.release.set()
            pool.close()

    def test_close_is_idempotent_and_stops_workers(self):
        stub = _StubServer()
        stub.release.set()
        pool = ServerPool(stub, workers=2, queue_depth=4)
        pool.close()
        pool.close()


# ---------------------------------------------------------------------------
# striped vs coarse locking agreement (16 threads)
# ---------------------------------------------------------------------------


class TestLockModeAgreement:
    @pytest.mark.parametrize("lock_mode", ["striped", "coarse"])
    def test_lock_modes_reach_the_same_final_state(self, lock_mode, request):
        final = self._drive(lock_mode)
        cache = request.config.cache
        other = "coarse" if lock_mode == "striped" else "striped"
        key = f"serving_path/lockmode_{other}"
        seen = cache.get(key, None)
        if seen is not None:
            assert final == seen, "striped and coarse final states diverged"
        cache.set(f"serving_path/lockmode_{lock_mode}", final)

    @staticmethod
    def _drive(lock_mode):
        deployment = WikiDeployment(n_users=0, seed=41, lock_mode=lock_mode)
        wiki, warp = deployment.wiki, deployment.warp
        n_threads, per_thread = 16, 6
        for worker in range(n_threads):
            wiki.seed_user(f"w{worker}", f"pw-w{worker}")
            wiki.seed_page(f"P{worker}", f"page {worker}", owner=f"w{worker}")
        clients = make_load_clients(
            wiki, warp.server, [f"w{worker}" for worker in range(n_threads)]
        )
        errors = []

        def hammer(client, worker):
            try:
                for i in range(per_thread):
                    response = client.send(
                        HttpRequest(
                            "POST",
                            "/edit.php",
                            params={"title": f"P{worker}", "append": f"\nm{i}."},
                            cookies=dict(client.cookies),
                            headers={"X-Warp-Client": f"{client.name}-load"},
                        )
                    )
                    if response.status != 200:
                        errors.append((worker, i, response.status))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append((worker, repr(exc)))

        threads = [
            threading.Thread(target=hammer, args=(client, worker))
            for worker, client in enumerate(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        bodies = {}
        for worker in range(n_threads):
            res = warp.ttdb.execute(
                "SELECT old_text FROM pagecontent WHERE title = ?", (f"P{worker}",)
            )
            bodies[f"P{worker}"] = res.rows[0]["old_text"]
            for i in range(per_thread):
                assert f"m{i}." in bodies[f"P{worker}"], (
                    f"{lock_mode}: lost append m{i} on P{worker}"
                )
        return bodies


# ---------------------------------------------------------------------------
# rotation under live traffic + serving-config persistence
# ---------------------------------------------------------------------------


class TestRotationAndPersistence:
    def test_rotation_mid_traffic_reloads_identically(self, tmp_path):
        wal_path = str(tmp_path / "serve.wal")
        snapshot = str(tmp_path / "serve.snapshot.json")
        deployment = WikiDeployment(
            n_users=1,
            seed=13,
            wal_path=wal_path,
            wal_rotate_bytes=4096,
            wal_rotate_snapshot=snapshot,
            durability="group",
        )
        (client,) = make_load_clients(deployment.wiki, deployment.warp.server, ["c0"])
        for i in range(24):
            response = client.send(
                HttpRequest(
                    "POST",
                    "/edit.php",
                    params={"title": "Main_Page", "append": f"\nrot{i}."},
                    cookies=dict(client.cookies),
                    headers={"X-Warp-Client": "c0-load"},
                )
            )
            assert response.status == 200
        assert os.path.exists(snapshot), "traffic never triggered rotation"
        wal = deployment.warp.graph.store.wal
        assert wal.sync(5.0)
        reloaded = WarpSystem.load(snapshot, wal_path=wal_path)
        live = deployment.warp.graph.to_snapshot()
        assert reloaded.graph.to_snapshot() == live
        assert reloaded.durability == "group"

    def test_serving_config_round_trips(self, tmp_path):
        snapshot = str(tmp_path / "cfg.json")
        warp = WarpSystem(
            seed=7,
            durability="group",
            wal_flush_interval=0.004,
            wal_flush_max_entries=64,
            wal_rotate_bytes=1 << 20,
            lock_mode="coarse",
            response_cache=True,
            response_cache_entries=256,
            statement_cache=False,
        )
        warp.save(snapshot)
        reloaded = WarpSystem.load(snapshot)
        assert reloaded.durability == "group"
        assert reloaded.wal_flush_interval == 0.004
        assert reloaded.wal_flush_max_entries == 64
        assert reloaded.wal_rotate_bytes == 1 << 20
        assert reloaded.graph.store.lock_mode == "coarse"
        assert reloaded.response_cache is not None
        assert reloaded.response_cache.max_entries == 256
        assert reloaded.statement_cache is False
        assert reloaded.ttdb.use_statement_cache is False
