"""Unit tests for the SQL parser."""

import pytest

from repro.core.errors import SqlError
from repro.db.sql import ast
from repro.db.sql.parser import parse


class TestSelect:
    def test_select_star(self):
        stmt = parse("SELECT * FROM pages")
        assert isinstance(stmt, ast.Select)
        assert stmt.table == "pages"
        assert stmt.is_star
        assert stmt.where is None

    def test_select_columns(self):
        stmt = parse("SELECT title, body FROM pages")
        names = [item.expr.name for item in stmt.items]
        assert names == ["title", "body"]

    def test_select_alias(self):
        stmt = parse("SELECT title AS t FROM pages")
        assert stmt.items[0].alias == "t"

    def test_select_implicit_alias(self):
        stmt = parse("SELECT title t FROM pages")
        assert stmt.items[0].alias == "t"

    def test_where_equality(self):
        stmt = parse("SELECT * FROM pages WHERE title = 'Home'")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "="

    def test_where_param(self):
        stmt = parse("SELECT * FROM pages WHERE title = ?")
        assert isinstance(stmt.where.right, ast.Param)
        assert stmt.where.right.index == 0

    def test_multiple_params_indexed_in_order(self):
        stmt = parse("SELECT * FROM t WHERE a = ? AND b = ?")
        left, right = stmt.where.left, stmt.where.right
        assert left.right.index == 0
        assert right.right.index == 1

    def test_order_by_desc(self):
        stmt = parse("SELECT * FROM t ORDER BY ts DESC, id")
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False

    def test_limit_offset(self):
        stmt = parse("SELECT * FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM t")
        agg = stmt.items[0].expr
        assert isinstance(agg, ast.Aggregate)
        assert agg.name == "COUNT"
        assert agg.arg is None
        assert stmt.is_aggregate

    def test_max_column(self):
        stmt = parse("SELECT MAX(ts) FROM t")
        assert stmt.items[0].expr.name == "MAX"

    def test_in_list(self):
        stmt = parse("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_not_in_list(self):
        stmt = parse("SELECT * FROM t WHERE a NOT IN (1)")
        assert stmt.where.negated

    def test_like(self):
        stmt = parse("SELECT * FROM t WHERE a LIKE 'x%'")
        assert isinstance(stmt.where, ast.Like)

    def test_between(self):
        stmt = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(stmt.where, ast.Between)

    def test_is_null(self):
        stmt = parse("SELECT * FROM t WHERE a IS NULL")
        assert isinstance(stmt.where, ast.IsNull)
        assert not stmt.where.negated

    def test_is_not_null(self):
        stmt = parse("SELECT * FROM t WHERE a IS NOT NULL")
        assert stmt.where.negated

    def test_and_or_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # OR binds loosest: (a=1) OR ((b=2) AND (c=3))
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_parenthesized_expression(self):
        stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where.op == "AND"
        assert stmt.where.left.op == "OR"

    def test_concat_expression(self):
        stmt = parse("SELECT a || 'x' FROM t")
        assert stmt.items[0].expr.op == "||"

    def test_arith_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 + 2 * 3")
        add = stmt.where.right
        assert add.op == "+"
        assert add.right.op == "*"

    def test_qualified_column(self):
        stmt = parse("SELECT * FROM t WHERE t.a = 1")
        assert stmt.where.left.table == "t"
        assert stmt.where.left.name == "a"

    def test_scalar_function(self):
        stmt = parse("SELECT LOWER(name) FROM t")
        assert isinstance(stmt.items[0].expr, ast.FuncCall)

    def test_unknown_function_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT EVIL(name) FROM t")


class TestInsert:
    def test_basic(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ("a", "b")
        assert len(stmt.rows) == 1

    def test_multi_row(self):
        stmt = parse("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_params(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (?, ?)")
        assert stmt.rows[0][0].index == 0
        assert stmt.rows[0][1].index == 1

    def test_arity_mismatch(self):
        with pytest.raises(SqlError):
            parse("INSERT INTO t (a, b) VALUES (1)")


class TestUpdate:
    def test_basic(self):
        stmt = parse("UPDATE t SET a = 1, b = 'x' WHERE id = 3")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_no_where(self):
        stmt = parse("UPDATE t SET a = 1")
        assert stmt.where is None

    def test_self_referential_set(self):
        # The paper's SQL-injection payload shape (§8.5).
        stmt = parse("UPDATE pagecontent SET old_text = old_text || 'attack'")
        column, expr = stmt.assignments[0]
        assert column == "old_text"
        assert expr.op == "||"


class TestDelete:
    def test_basic(self):
        stmt = parse("DELETE FROM t WHERE id = 1")
        assert isinstance(stmt, ast.Delete)

    def test_no_where(self):
        assert parse("DELETE FROM t").where is None


class TestErrors:
    def test_unsupported_statement(self):
        with pytest.raises(SqlError):
            parse("CREATE TABLE t (a int)")

    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse("SELECT * FROM t garbage extra")

    def test_missing_from(self):
        with pytest.raises(SqlError):
            parse("SELECT a b c")

    def test_dangling_not(self):
        with pytest.raises(SqlError):
            parse("SELECT * FROM t WHERE a NOT 5")

    def test_parse_is_cached(self):
        assert parse("SELECT * FROM t") is parse("SELECT * FROM t")
