"""Unit tests for partition dependency analysis (paper §4.1)."""

from repro.db.sql.parser import parse
from repro.db.storage import Column, TableSchema
from repro.ttdb.partitions import ModifiedPartitions, read_partitions


SCHEMA = TableSchema(
    name="pages",
    columns=(Column("page_id", "int"), Column("title"), Column("editor"), Column("body")),
    row_id_column="page_id",
    partition_columns=("title", "editor"),
)


def rs(sql, params=()):
    return read_partitions(parse(sql), params, SCHEMA)


class TestReadPartitions:
    def test_no_where_reads_all(self):
        assert rs("SELECT * FROM pages").is_all

    def test_equality_on_partition_column(self):
        result = rs("SELECT * FROM pages WHERE title = 'Home'")
        assert not result.is_all
        assert result.disjuncts == (frozenset({("title", "Home")}),)

    def test_param_equality(self):
        result = rs("SELECT * FROM pages WHERE title = ?", ("Home",))
        assert result.disjuncts == (frozenset({("title", "Home")}),)

    def test_reversed_equality(self):
        result = rs("SELECT * FROM pages WHERE 'Home' = title")
        assert result.disjuncts == (frozenset({("title", "Home")}),)

    def test_conjunction_of_partition_columns(self):
        result = rs("SELECT * FROM pages WHERE title = 'A' AND editor = 'bob'")
        assert result.disjuncts == (
            frozenset({("title", "A"), ("editor", "bob")}),
        )

    def test_non_partition_predicate_widens_to_all(self):
        assert rs("SELECT * FROM pages WHERE body = 'x'").is_all

    def test_and_with_non_partition_predicate_keeps_constraint(self):
        result = rs("SELECT * FROM pages WHERE title = 'A' AND body = 'x'")
        assert result.disjuncts == (frozenset({("title", "A")}),)

    def test_or_of_partition_constraints(self):
        result = rs("SELECT * FROM pages WHERE title = 'A' OR title = 'B'")
        assert set(result.disjuncts) == {
            frozenset({("title", "A")}),
            frozenset({("title", "B")}),
        }

    def test_or_with_unconstrained_side_is_all(self):
        assert rs("SELECT * FROM pages WHERE title = 'A' OR body = 'x'").is_all

    def test_in_list(self):
        result = rs("SELECT * FROM pages WHERE title IN ('A', 'B')")
        assert set(result.disjuncts) == {
            frozenset({("title", "A")}),
            frozenset({("title", "B")}),
        }

    def test_contradictory_conjunction_reads_nothing(self):
        result = rs("SELECT * FROM pages WHERE title = 'A' AND title = 'B'")
        assert result.disjuncts == ()

    def test_update_where_analyzed(self):
        result = rs("UPDATE pages SET body = 'x' WHERE title = 'A'")
        assert result.disjuncts == (frozenset({("title", "A")}),)

    def test_update_without_where_is_all(self):
        assert rs("UPDATE pages SET body = 'x'").is_all

    def test_insert_reads_nothing(self):
        result = rs("INSERT INTO pages (page_id, title) VALUES (1, 'A')")
        assert not result.is_all
        assert result.disjuncts == ()

    def test_like_is_all(self):
        assert rs("SELECT * FROM pages WHERE title LIKE 'A%'").is_all

    def test_no_partition_columns_is_all(self):
        schema = TableSchema("t", (Column("a"),), partition_columns=())
        assert read_partitions(parse("SELECT * FROM t WHERE a = 1"), (), schema).is_all


class TestModifiedPartitions:
    def test_empty_affects_nothing(self):
        mods = ModifiedPartitions()
        assert not mods.affects(rs("SELECT * FROM pages WHERE title = 'A'"), 100)
        assert mods.is_empty()

    def test_exact_key_match(self):
        mods = ModifiedPartitions()
        mods.record("pages", {("pages", "title", "A")}, ts=10)
        assert mods.affects(rs("SELECT * FROM pages WHERE title = 'A'"), 10)
        assert not mods.affects(rs("SELECT * FROM pages WHERE title = 'B'"), 10)

    def test_time_filtering(self):
        # A read at time 5 cannot observe a modification first made at 10.
        mods = ModifiedPartitions()
        mods.record("pages", {("pages", "title", "A")}, ts=10)
        assert not mods.affects(rs("SELECT * FROM pages WHERE title = 'A'"), 5)
        assert mods.affects(rs("SELECT * FROM pages WHERE title = 'A'"), 15)

    def test_earliest_ts_wins(self):
        mods = ModifiedPartitions()
        mods.record("pages", {("pages", "title", "A")}, ts=10)
        mods.record("pages", {("pages", "title", "A")}, ts=4)
        assert mods.affects(rs("SELECT * FROM pages WHERE title = 'A'"), 5)

    def test_all_reader_affected_by_any_modification(self):
        mods = ModifiedPartitions()
        mods.record("pages", {("pages", "editor", "bob")}, ts=10)
        assert mods.affects(rs("SELECT * FROM pages"), 10)

    def test_whole_table_modification_affects_constrained_reader(self):
        mods = ModifiedPartitions()
        mods.record_all("pages", ts=10)
        assert mods.affects(rs("SELECT * FROM pages WHERE title = 'zzz'"), 10)

    def test_conjunction_requires_all_keys(self):
        mods = ModifiedPartitions()
        mods.record("pages", {("pages", "title", "A")}, ts=10)
        both = rs("SELECT * FROM pages WHERE title = 'A' AND editor = 'bob'")
        assert not mods.affects(both, 10)
        mods.record("pages", {("pages", "editor", "bob")}, ts=10)
        assert mods.affects(both, 10)

    def test_other_table_not_affected(self):
        mods = ModifiedPartitions()
        mods.record("users", {("users", "name", "bob")}, ts=10)
        assert not mods.affects(rs("SELECT * FROM pages"), 10)

    def test_affects_keys_for_writers(self):
        mods = ModifiedPartitions()
        mods.record("pages", {("pages", "title", "A")}, ts=10)
        assert mods.affects_keys("pages", {("pages", "title", "A")}, 10)
        assert not mods.affects_keys("pages", {("pages", "title", "B")}, 10)
