"""Randomized-but-seeded crash-recovery property (ISSUE 7 acceptance).

Each seed deterministically generates a fault schedule (faults across the
WAL, store, snapshot, repair, gate, cache, and pool layers), drives a
live wiki workload against it, simulates process death, reloads from
disk, and checks the recovery invariants:

* no acknowledged write is lost, none is applied twice;
* store indexes, the action-history graph, and the versioned DB agree;
* a repair job interrupted by the crash is reported after reload;
* the reloaded system serves requests.

The default seed range matches the CI fault-matrix job; set
``FAULT_MATRIX_SEEDS`` (e.g. ``"1-200"`` or ``"3,7,19"``) to widen or
pin the sweep.  Schedules are pure functions of the seed, so any failure
reproduces exactly with ``run_schedule(generate_schedule(seed), dir)``.
"""

import json
import os

import pytest

from repro.faults.harness import generate_schedule, run_schedule

DEFAULT_SEEDS = range(1, 31)


def _seeds():
    spec = os.environ.get("FAULT_MATRIX_SEEDS", "").strip()
    if not spec:
        return list(DEFAULT_SEEDS)
    seeds = []
    for part in spec.split(","):
        part = part.strip()
        if "-" in part:
            low, high = part.split("-", 1)
            seeds.extend(range(int(low), int(high) + 1))
        elif part:
            seeds.append(int(part))
    return seeds


@pytest.mark.parametrize("seed", _seeds())
def test_crash_recovery_invariants(seed, tmp_path):
    schedule = generate_schedule(seed)
    report = run_schedule(schedule, str(tmp_path))
    assert report.ok, (
        f"seed {seed} violated recovery invariants: {report.violations}\n"
        f"schedule: {json.dumps(schedule)}\n"
        f"faults fired: {report.fired}\nnotes: {report.notes}"
    )


def test_schedule_is_a_pure_function_of_the_seed(tmp_path):
    # The replay contract: the same seed yields the same schedule, and a
    # schedule serialized to JSON drives an identical run.
    schedule = generate_schedule(97)
    assert generate_schedule(97) == schedule
    first = run_schedule(schedule, str(tmp_path / "a"))
    second = run_schedule(json.dumps(schedule), str(tmp_path / "b"))
    assert first.ok and second.ok
    assert first.crashed == second.crashed
    assert first.acked == second.acked
    assert [f["point"] for f in first.fired] == [f["point"] for f in second.fired]


def test_report_serializes(tmp_path):
    report = run_schedule(generate_schedule(5), str(tmp_path))
    doc = report.to_dict()
    json.dumps(doc)
    assert doc["seed"] == 5
    assert "violations" in doc and not doc["violations"]
