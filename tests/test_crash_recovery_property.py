"""Randomized-but-seeded crash-recovery property (ISSUE 7 acceptance).

Each seed deterministically generates a fault schedule (faults across the
WAL, store, snapshot, repair, gate, cache, and pool layers), drives a
live wiki workload against it, simulates process death, reloads from
disk, and checks the recovery invariants:

* no acknowledged write is lost, none is applied twice;
* store indexes, the action-history graph, and the versioned DB agree;
* a repair job interrupted by the crash is reported after reload;
* the reloaded system serves requests.

The default seed range matches the CI fault-matrix job; set
``FAULT_MATRIX_SEEDS`` (e.g. ``"1-200"`` or ``"3,7,19"``) to widen or
pin the sweep.  Schedules are pure functions of the seed, so any failure
reproduces exactly with ``run_schedule(generate_schedule(seed), dir)``.
"""

import json
import os

import pytest

from repro.faults.harness import generate_schedule, run_schedule

DEFAULT_SEEDS = range(1, 31)


def _seeds():
    spec = os.environ.get("FAULT_MATRIX_SEEDS", "").strip()
    if not spec:
        return list(DEFAULT_SEEDS)
    seeds = []
    for part in spec.split(","):
        part = part.strip()
        if "-" in part:
            low, high = part.split("-", 1)
            seeds.extend(range(int(low), int(high) + 1))
        elif part:
            seeds.append(int(part))
    return seeds


@pytest.mark.parametrize("seed", _seeds())
def test_crash_recovery_invariants(seed, tmp_path):
    schedule = generate_schedule(seed)
    report = run_schedule(schedule, str(tmp_path))
    assert report.ok, (
        f"seed {seed} violated recovery invariants: {report.violations}\n"
        f"schedule: {json.dumps(schedule)}\n"
        f"faults fired: {report.fired}\nnotes: {report.notes}"
    )


def test_schedule_is_a_pure_function_of_the_seed(tmp_path):
    # The replay contract: the same seed yields the same schedule, and a
    # schedule serialized to JSON drives an identical run.
    schedule = generate_schedule(97)
    assert generate_schedule(97) == schedule
    first = run_schedule(schedule, str(tmp_path / "a"))
    second = run_schedule(json.dumps(schedule), str(tmp_path / "b"))
    assert first.ok and second.ok
    assert first.crashed == second.crashed
    assert first.acked == second.acked
    assert [f["point"] for f in first.fired] == [f["point"] for f in second.fired]


def test_report_serializes(tmp_path):
    report = run_schedule(generate_schedule(5), str(tmp_path))
    doc = report.to_dict()
    json.dumps(doc)
    assert doc["seed"] == 5
    assert "violations" in doc and not doc["violations"]


# ---------------------------------------------------------------------------
# coordinator crash mid-fan-out (repro.shard): the distributed analogue of
# the interrupted-job invariant — a coordinator that dies between shard
# dispatches must, after "reload" (a new coordinator over the same journal
# and workers), report the distributed job interrupted and resubmit it
# exactly once per shard.
# ---------------------------------------------------------------------------

from repro.faults.plane import FaultPlane, SimulatedCrash  # noqa: E402
from repro.http.message import HttpRequest  # noqa: E402
from repro.repair.api import CancelClientSpec  # noqa: E402
from repro.shard import ShardCluster  # noqa: E402


def _shard_jobs(cluster, shard):
    response = cluster.handle(
        HttpRequest("GET", "/warp/admin/repair", params={"shard": str(shard)})
    )
    return json.loads(response.body)["jobs"]


def _deface_cluster(tmp_path):
    """2-shard local cluster with a cross-shard attack in place.  Tenants
    0 and 4 hash to different shards; the attacker hits both."""
    cluster = ShardCluster(
        2, str(tmp_path), transport="local", tenants=[0, 4],
        shared_users=["mallory"],
    )
    attacker_cookies = {}
    for tenant in (0, 4):
        attacker_cookies.clear()
        for method, path, params in (
            ("POST", "/login.php", {"wpName": "mallory", "wpPassword": "pw-mallory"}),
            ("POST", "/edit.php", {"title": f"tenant{tenant}_wiki",
                                   "append": f"\nDEFACED-t{tenant}"}),
        ):
            request = HttpRequest(
                method, path, params=params, cookies=dict(attacker_cookies),
                headers={"X-Warp-Tenant": f"tenant{tenant}",
                         "X-Warp-Client": "mallory-c"},
            )
            response = cluster.handle(request)
            assert response.status == 200, response.body
            for key, value in response.set_cookies.items():
                if value is None:
                    attacker_cookies.pop(key, None)
                else:
                    attacker_cookies[key] = value
    return cluster


def _assert_ground_truth_clean(cluster):
    for tenant in (0, 4):
        home = cluster.tenant_shards[tenant]
        text = cluster.workers[home].app.page_text(f"tenant{tenant}_wiki")
        assert text is not None and "DEFACED" not in text


def test_coordinator_crash_between_dispatches_resubmits_exactly_once(tmp_path):
    cluster = _deface_cluster(tmp_path)
    try:
        spec = CancelClientSpec(client_id="mallory-c")
        plane = FaultPlane()
        # First dispatch (one shard) succeeds; the coordinator "dies" at
        # the instant it picks the second target.
        plane.arm(point="shard.dispatch", kind="crash", after=1, times=1)
        crashed = cluster.new_coordinator(fault_plane=plane)
        with pytest.raises(SimulatedCrash):
            crashed.repair(spec)

        # One shard got a job, the other never heard about the repair.
        job_counts = sorted(len(_shard_jobs(cluster, s)) for s in (0, 1))
        assert job_counts == [0, 1]

        # "Reload": a fresh coordinator over the same journal + workers
        # reports the distributed job interrupted …
        reborn = cluster.new_coordinator(fault_plane=FaultPlane())
        interrupted = reborn.interrupted()
        assert len(interrupted) == 1
        record = interrupted[0]
        assert record["spec"] == spec.to_dict()
        dispatched = [s for s, info in record["shards"].items() if info.get("job_id")]
        assert len(dispatched) == 1

        # … and resubmit finishes it: the dispatched shard is adopted
        # (still exactly one job), the untouched shard is dispatched for
        # the first time (exactly one job).
        result = reborn.resubmit(record["dist_id"])
        assert result.ok, result.to_dict()
        for shard in (0, 1):
            assert len(_shard_jobs(cluster, shard)) == 1
        assert reborn.interrupted() == []
        _assert_ground_truth_clean(cluster)
    finally:
        cluster.close()


def test_coordinator_crash_before_merge_adopts_every_shard(tmp_path):
    cluster = _deface_cluster(tmp_path)
    try:
        spec = CancelClientSpec(client_id="mallory-c")
        plane = FaultPlane()
        # Both shards dispatch and settle; the crash hits at merge time.
        plane.arm(point="shard.merge", kind="crash", times=1)
        crashed = cluster.new_coordinator(fault_plane=plane)
        with pytest.raises(SimulatedCrash):
            crashed.repair(spec)
        assert all(len(_shard_jobs(cluster, s)) == 1 for s in (0, 1))

        reborn = cluster.new_coordinator(fault_plane=FaultPlane())
        interrupted = reborn.interrupted()
        assert len(interrupted) == 1
        result = reborn.resubmit(interrupted[0]["dist_id"])
        assert result.ok
        # Exactly-once: adoption, not re-dispatch.
        for shard in (0, 1):
            jobs = _shard_jobs(cluster, shard)
            assert len(jobs) == 1 and jobs[0]["status"] == "done"
        assert result.stats["runs_canceled"] > 0
        assert reborn.interrupted() == []
        _assert_ground_truth_clean(cluster)
    finally:
        cluster.close()


def test_unacknowledged_dispatch_reconciles_against_worker_journal(tmp_path):
    # The nastiest window: the journal holds the dispatch *intent* but the
    # crash hit before the 202 was journaled.  The worker may or may not
    # hold the job; resubmit must reconcile against the worker's own job
    # list instead of blindly dispatching a duplicate.
    cluster = _deface_cluster(tmp_path)
    try:
        spec = CancelClientSpec(client_id="mallory-c")
        coordinator = cluster.new_coordinator(fault_plane=FaultPlane())
        plan = coordinator.plan(spec)
        assert plan["targets"] == [0, 1]
        # Simulate the torn window by hand: journal start + intent for
        # shard 0, actually submit the job to the worker, then "die"
        # without journaling the 202.
        coordinator._journal(
            {"event": "start", "dist": "dist-99", "spec": spec.to_dict(),
             "targets": plan["targets"]}
        )
        coordinator._journal(
            {"event": "dispatching", "dist": "dist-99", "shard": 0}
        )
        status, payload = coordinator.clients[0].admin_json(
            "POST", "/warp/admin/repair", {"spec": json.dumps(spec.to_dict())}
        )
        assert status == 202

        reborn = cluster.new_coordinator(fault_plane=FaultPlane())
        record = [r for r in reborn.interrupted() if r["dist_id"] == "dist-99"]
        assert record and record[0]["shards"][0] == {"intent": True}
        result = reborn.resubmit("dist-99")
        assert result.ok
        assert result.per_shard[0].get("adopted")  # reconciled, not duplicated
        for shard in (0, 1):
            assert len(_shard_jobs(cluster, shard)) == 1
        _assert_ground_truth_clean(cluster)
    finally:
        cluster.close()
