"""Unit tests for SQL expression evaluation."""

import pytest

from repro.core.errors import SqlError
from repro.db.sql.eval import evaluate, truthy
from repro.db.sql.parser import parse


def eval_where(sql_where, row, params=()):
    stmt = parse(f"SELECT * FROM t WHERE {sql_where}")
    return evaluate(stmt.where, row, params)


def eval_expr(sql_expr, row, params=()):
    stmt = parse(f"SELECT {sql_expr} FROM t")
    return evaluate(stmt.items[0].expr, row, params)


class TestComparisons:
    def test_equality(self):
        assert eval_where("a = 1", {"a": 1}) is True
        assert eval_where("a = 1", {"a": 2}) is False

    def test_inequality(self):
        assert eval_where("a != 'x'", {"a": "y"}) is True

    def test_ordering(self):
        assert eval_where("a < 5", {"a": 3}) is True
        assert eval_where("a >= 5", {"a": 5}) is True

    def test_null_comparison_is_null(self):
        assert eval_where("a = 1", {"a": None}) is None

    def test_incompatible_comparison_raises(self):
        with pytest.raises(SqlError):
            eval_where("a < 'x'", {"a": 1})


class TestBooleanLogic:
    def test_and(self):
        assert eval_where("a = 1 AND b = 2", {"a": 1, "b": 2}) is True
        assert eval_where("a = 1 AND b = 2", {"a": 1, "b": 3}) is False

    def test_or(self):
        assert eval_where("a = 1 OR b = 2", {"a": 0, "b": 2}) is True

    def test_not(self):
        assert eval_where("NOT a = 1", {"a": 2}) is True

    def test_and_short_circuit_false(self):
        # False AND NULL is False, not NULL.
        assert eval_where("a = 1 AND b = 2", {"a": 0, "b": None}) is False

    def test_or_with_null_true_side(self):
        assert eval_where("a = 1 OR b = 2", {"a": 1, "b": None}) is True

    def test_null_and_true_is_null(self):
        assert eval_where("a = 1 AND b = 2", {"a": None, "b": 2}) is None

    def test_truthy_boundary(self):
        assert truthy(True)
        assert not truthy(None)
        assert not truthy(False)


class TestArithmeticAndStrings:
    def test_addition(self):
        assert eval_expr("a + 1", {"a": 4}) == 5

    def test_precedence(self):
        assert eval_expr("1 + 2 * 3", {}) == 7

    def test_integer_division(self):
        assert eval_expr("7 / 2", {}) == 3

    def test_float_division(self):
        assert eval_expr("7.0 / 2", {}) == pytest.approx(3.5)

    def test_division_by_zero_is_null(self):
        assert eval_expr("1 / 0", {}) is None

    def test_modulo(self):
        assert eval_expr("7 % 3", {}) == 1

    def test_unary_minus(self):
        assert eval_expr("-a", {"a": 5}) == -5

    def test_concat(self):
        assert eval_expr("a || '-suffix'", {"a": "page"}) == "page-suffix"

    def test_concat_coerces_numbers(self):
        assert eval_expr("'v' || 2", {}) == "v2"

    def test_concat_null_is_null(self):
        assert eval_expr("a || 'x'", {"a": None}) is None


class TestPredicates:
    def test_in(self):
        assert eval_where("a IN (1, 2)", {"a": 2}) is True
        assert eval_where("a IN (1, 2)", {"a": 3}) is False

    def test_not_in(self):
        assert eval_where("a NOT IN (1, 2)", {"a": 3}) is True

    def test_in_with_null_member_unmatched(self):
        assert eval_where("a IN (1, NULL)", {"a": 3}) is None

    def test_like_percent(self):
        assert eval_where("a LIKE 'wiki%'", {"a": "wikipage"}) is True
        assert eval_where("a LIKE 'wiki%'", {"a": "my-wiki"}) is False

    def test_like_underscore(self):
        assert eval_where("a LIKE 'p_ge'", {"a": "page"}) is True

    def test_like_escapes_regex_chars(self):
        assert eval_where("a LIKE 'a.b'", {"a": "a.b"}) is True
        assert eval_where("a LIKE 'a.b'", {"a": "axb"}) is False

    def test_between(self):
        assert eval_where("a BETWEEN 1 AND 5", {"a": 3}) is True
        assert eval_where("a BETWEEN 1 AND 5", {"a": 6}) is False

    def test_is_null(self):
        assert eval_where("a IS NULL", {"a": None}) is True
        assert eval_where("a IS NOT NULL", {"a": 1}) is True


class TestParams:
    def test_param_substitution(self):
        assert eval_where("a = ?", {"a": 7}, params=(7,)) is True

    def test_missing_param_raises(self):
        with pytest.raises(SqlError):
            eval_where("a = ?", {"a": 7}, params=())


class TestFunctions:
    def test_lower_upper(self):
        assert eval_expr("LOWER(a)", {"a": "ABC"}) == "abc"
        assert eval_expr("UPPER(a)", {"a": "abc"}) == "ABC"

    def test_length(self):
        assert eval_expr("LENGTH(a)", {"a": "abcd"}) == 4

    def test_coalesce(self):
        assert eval_expr("COALESCE(a, 'dflt')", {"a": None}) == "dflt"
        assert eval_expr("COALESCE(a, 'dflt')", {"a": "v"}) == "v"

    def test_substr(self):
        assert eval_expr("SUBSTR(a, 2, 3)", {"a": "abcdef"}) == "bcd"

    def test_unknown_column_raises(self):
        with pytest.raises(SqlError):
            eval_expr("nope", {"a": 1})
