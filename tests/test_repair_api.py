"""Repair Job API v2: specs, jobs, previews, batches, and the admin HTTP
surface.

Acceptance coverage (ISSUE 5):

* spec JSON round-trip for every kind, including nested batches;
* the legacy entry points are *equivalent wrappers*: over ≥10 seeded
  scenarios, ``warp.retroactive_patch(...)`` ≡
  ``warp.repair.submit(PatchSpec(...)).result()`` on RepairStats
  counters, canonically renumbered graph records, and the final version
  store (and likewise for the other three entry points);
* ``preview()`` provably mutates nothing — version-store and graph dumps
  are byte-identical before/after;
* a ``RepairBatch`` of a multi-intrusion attack set re-executes each
  affected action at most once, in ONE generation pass, and matches the
  final state of sequential repairs;
* job lifecycle: status transitions, progress events, blocking result,
  cooperative cancel (queued and running), FIFO execution;
* the jobs journal: an interrupted job is reported after reload;
* the ``/warp/admin/*`` endpoints, including token auth and mid-repair
  availability.
"""

import json
import threading

import pytest

from repro.apps.wiki import WikiApp, patch_for
from repro.core.errors import RepairCanceled, RepairError
from repro.http.message import HttpRequest
from repro.repair.api import (
    CancelClientSpec,
    CancelVisitSpec,
    DbFixSpec,
    PatchSpec,
    RepairBatch,
    compute_plan,
    parse_spec,
)
from repro.repair.controller import RepairController
from repro.repair.jobs import RepairJobManager
from repro.warp import WarpSystem
from repro.workload.scenarios import (
    WIKI,
    run_multi_tenant_scenario,
    run_scenario,
)

from test_online_repair import _canonical_db, _canonical_graph

COUNTERS = (
    "visits_reexecuted",
    "runs_reexecuted",
    "runs_pruned",
    "runs_canceled",
    "queries_reexecuted",
    "nondet_misses",
    "conflicts",
    "total_visits",
    "total_runs",
    "total_queries",
)


def counters(result):
    return {name: getattr(result.stats, name) for name in COUNTERS}


def dumps(warp):
    """Byte-comparable dumps of the version store and the graph."""
    return (
        json.dumps(warp.database.to_dict(), sort_keys=True, default=repr),
        json.dumps(warp.graph.to_snapshot(), sort_keys=True, default=repr),
    )


# ---------------------------------------------------------------------------
# spec serialization
# ---------------------------------------------------------------------------


class TestSpecSerialization:
    def test_round_trip_all_kinds(self):
        specs = [
            PatchSpec(file="login.php", patch_name="csrf-fix", apply_ts=7),
            CancelVisitSpec(
                client_id="c1", visit_id=3, initiated_by_admin=False,
                allow_conflicts=True,
            ),
            CancelClientSpec(client_id="attacker-box"),
            DbFixSpec(sql="UPDATE users SET password = ? WHERE name = ?",
                      params=("pw", "alice"), ts=12),
        ]
        batch = RepairBatch(specs=list(specs))
        for spec in specs + [batch]:
            wire = json.loads(json.dumps(spec.to_dict()))
            rebuilt = parse_spec(wire)
            assert rebuilt == spec
            assert rebuilt.to_dict() == spec.to_dict()

    def test_nested_batches_flatten(self):
        inner = RepairBatch(specs=[CancelClientSpec("a"), CancelClientSpec("b")])
        outer = RepairBatch(specs=[inner, CancelClientSpec("c")])
        assert [spec.client_id for spec in outer.specs] == ["a", "b", "c"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(RepairError, match="unknown repair spec kind"):
            parse_spec({"kind": "frobnicate"})

    def test_malformed_spec_rejected(self):
        with pytest.raises(RepairError, match="malformed"):
            parse_spec({"kind": "cancel_visit", "client_id": "c1"})  # no visit_id

    def test_inline_exports_not_serializable(self):
        spec = PatchSpec(file="x.php", exports={"handle": lambda ctx: None})
        with pytest.raises(RepairError, match="not JSON-serializable"):
            spec.to_dict()
        # describe() is always JSON-safe (the jobs journal depends on it).
        assert json.dumps(spec.describe())

    def test_patch_spec_needs_exactly_one_source(self):
        with pytest.raises(RepairError):
            PatchSpec(file="x.php").validate()
        with pytest.raises(RepairError):
            PatchSpec(file="x.php", exports={}, patch_name="both").validate()

    def test_empty_batch_rejected(self):
        with pytest.raises(RepairError):
            RepairBatch(specs=[]).validate()


# ---------------------------------------------------------------------------
# legacy entry points are equivalent wrappers (acceptance: ≥10 scenarios)
# ---------------------------------------------------------------------------

#: (scenario kind, attack/seed) — 11 seeded scenarios across all four
#: legacy entry points.
EQUIVALENCE_CASES = [
    ("patch", "stored-xss", 0),
    ("patch", "stored-xss", 1),
    ("patch", "reflected-xss", 2),
    ("patch", "sql-injection", 3),
    ("patch", "clickjacking", 4),
    ("patch", "csrf", 5),
    ("cancel_visit", "acl-error", 6),
    ("cancel_client", None, 7),
    ("cancel_client", None, 8),
    ("db_fix", None, 9),
    ("db_fix", None, 10),
]


def _stage_pair(kind, attack, seed):
    """Two identically staged deployments and the (legacy, v2) runners."""
    if kind in ("patch", "cancel_visit"):
        a = run_scenario(attack, n_users=5, n_victims=2, seed=seed)
        b = run_scenario(attack, n_users=5, n_victims=2, seed=seed)
        if kind == "patch":
            spec_info = patch_for(attack)

            def legacy(outcome):
                return outcome.warp.retroactive_patch(
                    spec_info.file, spec_info.build()
                )

            def v2(outcome):
                return outcome.warp.repair.submit(
                    PatchSpec(file=spec_info.file, exports=spec_info.build())
                ).result()

        else:

            def legacy(outcome):
                return outcome.warp.cancel_visit(
                    outcome.admin_client,
                    outcome.acl_grant_visit,
                    initiated_by_admin=True,
                )

            def v2(outcome):
                return outcome.warp.repair.submit(
                    CancelVisitSpec(
                        client_id=outcome.admin_client,
                        visit_id=outcome.acl_grant_visit,
                    )
                ).result()

        return a, b, legacy, v2
    a = run_multi_tenant_scenario(
        n_tenants=3, users_per_tenant=2, attacked_tenants=1, seed=seed
    )
    b = run_multi_tenant_scenario(
        n_tenants=3, users_per_tenant=2, attacked_tenants=1, seed=seed
    )
    if kind == "cancel_client":

        def legacy(outcome):
            return outcome.warp.cancel_client(outcome.attacker_client)

        def v2(outcome):
            return outcome.warp.repair.submit(
                CancelClientSpec(client_id=outcome.attacker_client)
            ).result()

        return a, b, legacy, v2

    page = a.tenant_page(0)
    fix_sql = "UPDATE pagecontent SET old_text = ? WHERE title = ?"
    fix_params = ("rewritten from the past", page)
    fix_ts = 5

    def legacy(outcome):
        return outcome.warp.retroactive_db_fix(fix_sql, fix_params, fix_ts)

    def v2(outcome):
        return outcome.warp.repair.submit(
            DbFixSpec(sql=fix_sql, params=fix_params, ts=fix_ts)
        ).result()

    return a, b, legacy, v2


class TestLegacyWrapperEquivalence:
    @pytest.mark.parametrize("kind,attack,seed", EQUIVALENCE_CASES)
    def test_wrapper_equals_submit(self, kind, attack, seed):
        a, b, legacy, v2 = _stage_pair(kind, attack, seed)
        result_legacy = legacy(a)
        result_v2 = v2(b)
        assert counters(result_legacy) == counters(result_v2)
        assert result_legacy.ok == result_v2.ok
        assert _canonical_graph(a.warp.graph) == _canonical_graph(b.warp.graph)
        assert _canonical_db(a.warp) == _canonical_db(b.warp)

    def test_wrapper_propagates_failures(self):
        warp = WarpSystem(enabled=False)
        with pytest.raises(RepairError):
            warp.retroactive_patch("x.php", {"handle": lambda ctx: None})

    def test_wrapper_sets_last_repair(self):
        outcome = run_scenario("stored-xss", n_users=4, n_victims=1)
        result = outcome.repair()
        assert outcome.warp.last_repair is result


# ---------------------------------------------------------------------------
# dry-run preview
# ---------------------------------------------------------------------------


class TestPreview:
    def test_preview_mutates_nothing(self):
        """Acceptance: version-store and graph dumps byte-identical
        before/after, for every spec kind."""
        outcome = run_multi_tenant_scenario(
            n_tenants=3, users_per_tenant=2, attacked_tenants=1, seed=2
        )
        warp = outcome.warp
        visit = next(iter(warp.graph.client_visits(outcome.attacker_client)))
        specs = [
            PatchSpec(file="edit.php", exports={"x": 1}),
            CancelVisitSpec(
                client_id=outcome.attacker_client, visit_id=visit.visit_id
            ),
            CancelClientSpec(client_id=outcome.attacker_client),
            DbFixSpec(
                sql="UPDATE pagecontent SET old_text = ? WHERE title = ?",
                params=("x", outcome.tenant_page(0)),
                ts=5,
            ),
        ]
        specs.append(RepairBatch(specs=list(specs)))
        before = dumps(warp)
        gen_before = (warp.ttdb.current_gen, warp.ttdb.repair_gen)
        clock_before = warp.clock.now()
        script_versions = {
            name: warp.scripts.version(name) for name in warp.scripts.names()
        }
        for spec in specs:
            plan = warp.repair.preview(spec)
            assert plan.to_dict()["kind"] == spec.kind
        assert dumps(warp) == before
        assert (warp.ttdb.current_gen, warp.ttdb.repair_gen) == gen_before
        assert warp.clock.now() == clock_before
        assert script_versions == {
            name: warp.scripts.version(name) for name in warp.scripts.names()
        }

    def test_preview_reports_components_and_clients(self):
        outcome = run_multi_tenant_scenario(
            n_tenants=4, users_per_tenant=2, attacked_tenants=1, seed=1
        )
        warp = outcome.warp
        plan = warp.repair.preview(CancelClientSpec(outcome.attacker_client))
        # The attacker only touched tenant 0: one component, holding the
        # attacker and tenant 0's users.
        assert plan.n_groups == 1
        assert outcome.attacker_client in plan.affected_clients
        tenant0 = {f"{user}-browser" for user in outcome.tenant_users[0]}
        assert tenant0 <= set(plan.affected_clients)
        other = {
            f"{user}-browser"
            for tenant in (1, 2, 3)
            for user in outcome.tenant_users[tenant]
        }
        assert not (other & set(plan.affected_clients))
        assert 0 < plan.affected_runs < plan.total_runs
        assert plan.affected_partitions > 0
        assert not plan.futile
        assert 0.0 < plan.estimated_reexec_fraction < 1.0

    def test_preview_patch_splits_per_tenant(self):
        outcome = run_multi_tenant_scenario(
            n_tenants=3, users_per_tenant=2, attacked_tenants=1, seed=4
        )
        plan = outcome.warp.repair.preview(
            PatchSpec(file="edit.php", exports={"x": 1})
        )
        # Every tenant edits only its own page: one component per tenant
        # (the attacker rides with the attacked tenant's component).
        assert plan.n_groups == 3

    def test_preview_reports_futility(self):
        outcome = run_scenario("stored-xss", n_users=4, n_victims=1, seed=3)
        warp = outcome.warp
        spec = PatchSpec(file="special_block.php", exports={"x": 1})
        before = dumps(warp)
        plan = compute_plan(warp.graph, warp.ttdb, spec, futility_limit=3)
        assert plan.futile
        assert plan.affected_runs == plan.total_runs
        assert plan.estimated_reexec_fraction == 1.0
        assert dumps(warp) == before  # the bailed-out walk mutated nothing

    def test_preview_estimate_bounds_actual_repair(self):
        """The component membership is an upper bound on what repair
        actually re-executes."""
        outcome = run_multi_tenant_scenario(
            n_tenants=3, users_per_tenant=2, attacked_tenants=1, seed=6
        )
        warp = outcome.warp
        plan = warp.repair.preview(CancelClientSpec(outcome.attacker_client))
        result = warp.cancel_client(outcome.attacker_client)
        touched = (
            result.stats.runs_reexecuted
            + result.stats.runs_pruned
            + result.stats.runs_canceled
        )
        assert touched <= plan.affected_runs

    def test_preview_db_fix_seed_partitions(self):
        outcome = run_multi_tenant_scenario(n_tenants=2, users_per_tenant=1, seed=7)
        plan = outcome.warp.repair.preview(
            DbFixSpec(
                sql="UPDATE pagecontent SET old_text = ? WHERE title = ?",
                params=("x", outcome.tenant_page(0)),
                ts=5,
            )
        )
        assert ["pagecontent", "title", outcome.tenant_page(0)] in plan.seed_partitions
        assert plan.n_groups == 1

    def test_preview_rejects_read_only_db_fix(self):
        outcome = run_multi_tenant_scenario(n_tenants=2, users_per_tenant=1, seed=7)
        with pytest.raises(RepairError, match="write statement"):
            outcome.warp.repair.preview(
                DbFixSpec(sql="SELECT * FROM pagecontent", ts=5)
            )


# ---------------------------------------------------------------------------
# batched multi-intrusion repair
# ---------------------------------------------------------------------------


def _stage_two_intrusions(seed):
    """One deployment, two independent intrusions: a stored-XSS payload
    (springs on victims) AND a direct defacement of Main_Page by the
    attacker's browser."""
    outcome = run_scenario("stored-xss", n_users=5, n_victims=2, seed=seed)
    deployment = outcome.deployment
    deployment.append_to_page("attacker", "Main_Page", "\nDEFACED-BY-HAND")
    defaced_form_visit = deployment.browser("attacker").current.parent_visit
    # A bystander keeps editing the defaced page afterwards.
    witness = outcome.bystanders[-1]
    deployment.append_to_page(witness, "Main_Page", f"\nwitness-{witness}")
    return outcome, defaced_form_visit, witness


class TestRepairBatch:
    def test_batch_matches_sequential_final_state(self):
        """Acceptance: a batch over the multi-intrusion set matches the
        final state of sequential repairs, in ONE generation pass, with
        each affected action re-executed at most once."""
        spec_info = patch_for("stored-xss")
        seed = 11

        # -- sequential reference: patch, then cancel the defacement.
        ref, ref_visit, witness = _stage_two_intrusions(seed)
        assert ref.warp.retroactive_patch(spec_info.file, spec_info.build()).ok
        assert ref.warp.cancel_visit(
            ref.deployment.client_id("attacker"), ref_visit
        ).ok
        assert ref.warp.ttdb.current_gen == 2

        # -- batch: both intrusions in one pass, with re-execution counted
        # per run to prove at-most-once.
        batch_outcome, batch_visit, _ = _stage_two_intrusions(seed)
        assert batch_visit == ref_visit
        reexec_counts = {}
        original = RepairController._reexec_run

        def counting(self, run, request, conflict_on_change):
            reexec_counts[run.run_id] = reexec_counts.get(run.run_id, 0) + 1
            return original(self, run, request, conflict_on_change)

        RepairController._reexec_run = counting
        try:
            result = batch_outcome.warp.repair.submit(
                RepairBatch(
                    specs=[
                        PatchSpec(file=spec_info.file, exports=spec_info.build()),
                        CancelVisitSpec(
                            client_id=batch_outcome.deployment.client_id("attacker"),
                            visit_id=batch_visit,
                        ),
                    ]
                )
            ).result()
        finally:
            RepairController._reexec_run = original
        assert result.ok
        assert batch_outcome.warp.ttdb.current_gen == 1  # ONE pass

        # Each affected action re-executed at most once.
        assert reexec_counts and max(reexec_counts.values()) == 1

        # Final state matches the sequential reference.
        assert _canonical_db(batch_outcome.warp) == _canonical_db(ref.warp)
        wiki = batch_outcome.wiki
        assert "DEFACED-BY-HAND" not in wiki.page_text("Main_Page")
        assert f"witness-{witness}" in wiki.page_text("Main_Page")
        for victim in batch_outcome.victims:
            assert "xss-attack-line" not in wiki.page_text(f"{victim}_notes")
            assert batch_outcome.legit_appends[victim] in wiki.page_text(
                f"{victim}_notes"
            )

    def test_batch_cheaper_than_sequential_reexecution(self):
        """The union pass re-executes no more than the sequential total
        (overlapping actions re-execute once instead of once per attack)."""
        spec_info = patch_for("stored-xss")
        ref, ref_visit, _ = _stage_two_intrusions(21)
        first = ref.warp.retroactive_patch(spec_info.file, spec_info.build())
        second = ref.warp.cancel_visit(
            ref.deployment.client_id("attacker"), ref_visit
        )
        sequential_total = (
            first.stats.runs_reexecuted
            + first.stats.visits_reexecuted
            + second.stats.runs_reexecuted
            + second.stats.visits_reexecuted
        )
        batch_outcome, batch_visit, _ = _stage_two_intrusions(21)
        result = batch_outcome.warp.repair.submit(
            RepairBatch(
                specs=[
                    PatchSpec(file=spec_info.file, exports=spec_info.build()),
                    CancelVisitSpec(
                        client_id=batch_outcome.deployment.client_id("attacker"),
                        visit_id=batch_visit,
                    ),
                ]
            )
        ).result()
        batch_total = (
            result.stats.runs_reexecuted + result.stats.visits_reexecuted
        )
        assert batch_total <= sequential_total

    def test_batch_of_disjoint_cancel_visits_multi_tenant(self):
        """k defacements across tenant-disjoint pages: one batch pass
        undoes all of them and every tenant's legit edits survive."""
        outcome = run_multi_tenant_scenario(
            n_tenants=4, users_per_tenant=2, attacked_tenants=3, seed=9
        )
        warp = outcome.warp
        attacker = outcome.attacker_client
        # The attacker's defacement form visits, one per attacked tenant.
        defacements = [
            visit.visit_id
            for visit in warp.graph.client_visits(attacker)
            if "edit.php" in visit.url and visit.parent_visit is None
        ]
        assert len(defacements) == 3
        result = warp.repair.submit(
            RepairBatch(
                specs=[
                    CancelVisitSpec(client_id=attacker, visit_id=visit_id)
                    for visit_id in defacements
                ]
            )
        ).result()
        assert result.ok
        assert warp.ttdb.current_gen == 1
        # The three defacements share the attacker's browser, so taint
        # joins the attacked tenants into one component (run <-> client).
        assert result.stats.n_groups == 1
        for tenant in range(4):
            text = outcome.wiki.page_text(outcome.tenant_page(tenant))
            assert "DEFACED" not in text
            for user in outcome.tenant_users[tenant]:
                assert outcome.legit_appends[user] in text

    def test_batch_of_db_fixes_keeps_separate_components(self):
        """Two fixes on unrelated partitions seed separate groups (the
        key_seed_groups path), unlike one merged statement group."""
        outcome = run_multi_tenant_scenario(
            n_tenants=3, users_per_tenant=2, attacked_tenants=1, seed=13
        )
        warp = outcome.warp

        def created_ts(page):
            """Just after the run that created the tenant page."""
            return next(
                run.ts_end + 1
                for run in warp.graph.runs_in_order()
                if any(
                    query.is_write
                    and ("pagecontent", "title", page) in query.written_partitions
                    for query in run.queries
                )
            )

        result = warp.repair.submit(
            RepairBatch(
                specs=[
                    DbFixSpec(
                        sql="UPDATE pagecontent SET old_text = ? WHERE title = ?",
                        params=("fixed-zero", outcome.tenant_page(0)),
                        ts=created_ts(outcome.tenant_page(0)),
                    ),
                    DbFixSpec(
                        sql="UPDATE pagecontent SET old_text = ? WHERE title = ?",
                        params=("fixed-one", outcome.tenant_page(1)),
                        ts=created_ts(outcome.tenant_page(1)),
                    ),
                ]
            )
        ).result()
        assert result.ok
        assert result.stats.n_groups == 2
        # The untouched tenant kept its history entirely.
        assert "post-" in outcome.wiki.page_text(outcome.tenant_page(2))

    def test_empty_batch_refused_at_submit(self):
        outcome = run_multi_tenant_scenario(n_tenants=2, users_per_tenant=1)
        with pytest.raises(RepairError):
            outcome.warp.repair.submit(RepairBatch(specs=[]))

    def test_nested_submit_from_repair_context_fails_fast(self):
        """Regression: a v1 wrapper called from a step hook / listener on
        the job's worker thread must raise (the v1 fail-fast), never
        deadlock on the FIFO queue."""
        outcome = run_scenario("stored-xss", n_users=4, n_victims=1, seed=14)
        warp = outcome.warp
        spec_info = patch_for("stored-xss")
        nested_error = []
        job = warp.repair.submit(
            PatchSpec(file=spec_info.file, exports=spec_info.build())
        )

        def on_event(event, payload):
            if event == "groups_planned" and not nested_error:
                try:
                    warp.cancel_client("nobody-browser")
                except RepairError as exc:
                    nested_error.append(exc)

        job.subscribe(on_event)
        result = job.result(timeout=30)
        assert result.ok
        if nested_error:  # listener may race the worker past planning
            assert "already in progress" in str(nested_error[0])

    def test_aborted_batch_reverts_staged_patch(self):
        """Regression: an aborted batch (§5.5 guard) must leave no
        half-applied script version and no orphaned PatchRecord."""
        outcome = run_scenario(
            "stored-xss", n_users=5, n_victims=2, seed=19, victim_upload=False
        )
        warp = outcome.warp
        # A non-admin undo of the attack-planting visit changes the
        # log-less victims' responses -> conflicts for *other* clients ->
        # the §5.5 guard aborts the batch.
        attacker_client = outcome.deployment.client_id("attacker")
        plant_visit = max(
            visit.visit_id
            for visit in warp.graph.client_visits(attacker_client)
            if "special_block.php" in visit.url
        )
        spec_info = patch_for("stored-xss")
        version_before = warp.scripts.version(spec_info.file)
        patches_before = len(warp.graph.patches)
        result = warp.repair.submit(
            RepairBatch(
                specs=[
                    PatchSpec(file=spec_info.file, exports=spec_info.build()),
                    CancelVisitSpec(
                        client_id=attacker_client,
                        visit_id=plant_visit,
                        initiated_by_admin=False,
                    ),
                ]
            )
        ).result()
        assert result.aborted and not result.ok
        assert result.conflicts
        assert warp.scripts.version(spec_info.file) == version_before
        assert len(warp.graph.patches) == patches_before
        # The rollback is complete: a later admin repair starts from a
        # clean slate (no stale version, no orphaned record) and works.
        redo = warp.retroactive_patch(spec_info.file, spec_info.build())
        assert redo.ok
        assert warp.scripts.version(spec_info.file) == version_before + 1
        assert len(warp.graph.patches) == patches_before + 1

    def test_failed_batch_reverts_staged_patch(self):
        """A raising (broken) patch is popped again on unwind: current
        traffic keeps the last good code, no PatchRecord is journaled."""
        outcome = run_scenario("stored-xss", n_users=4, n_victims=1, seed=17)
        warp = outcome.warp
        version_before = warp.scripts.version("special_block.php")
        patches_before = len(warp.graph.patches)

        def broken(ctx):
            raise RuntimeError("boom")

        job = warp.repair.submit(
            PatchSpec(file="special_block.php", exports={"handle": broken})
        )
        with pytest.raises(RuntimeError, match="boom"):
            job.result()
        assert warp.scripts.version("special_block.php") == version_before
        assert len(warp.graph.patches) == patches_before

    def test_failed_batch_unwinds_cleanly(self):
        """A raising script inside a batch aborts the generation and a
        retry with fixed code works (mirrors the single-spec contract)."""
        outcome = run_scenario("stored-xss", n_users=4, n_victims=1, seed=17)
        warp = outcome.warp

        def broken(ctx):
            raise RuntimeError("boom")

        job = warp.repair.submit(
            RepairBatch(
                specs=[PatchSpec(file="special_block.php", exports={"handle": broken})]
            )
        )
        with pytest.raises(RuntimeError, match="boom"):
            job.result()
        assert job.status == "failed"
        assert warp.ttdb.repair_gen is None
        assert not warp.server.repair_active
        # Retry with the real patch succeeds.
        spec_info = patch_for("stored-xss")
        assert warp.retroactive_patch(spec_info.file, spec_info.build()).ok


# ---------------------------------------------------------------------------
# job lifecycle
# ---------------------------------------------------------------------------


class TestRepairJobs:
    def test_job_lifecycle_and_events(self):
        outcome = run_scenario("stored-xss", n_users=4, n_victims=1, seed=2)
        spec_info = patch_for("stored-xss")
        seen = []
        job = outcome.warp.repair.submit(
            PatchSpec(file=spec_info.file, exports=spec_info.build())
        )
        job.subscribe(lambda event, payload: seen.append(event))
        result = job.result(timeout=30)
        assert result.ok
        assert job.status == "done"
        assert job.finished
        events = [event for event, _ in job.events]
        assert "finalized" in events
        assert ("phase_started") in events
        phases = [
            payload["phase"]
            for event, payload in job.events
            if event == "phase_started"
        ]
        assert phases == ["init", "process", "finalize"]
        assert "groups_planned" in events
        progress = job.progress()
        assert progress["status"] == "done"
        assert progress["runs_reexecuted"] == result.stats.runs_reexecuted
        # to_dict is JSON-clean.
        assert json.dumps(job.to_dict())

    def test_group_done_fires_exactly_once_per_group(self):
        """Progress contract: one group_done per scoped component."""
        outcome = run_multi_tenant_scenario(
            n_tenants=3, users_per_tenant=2, attacked_tenants=1, seed=5
        )
        from repro.apps.wiki.pages import make_edit

        # Re-registering edit.php unchanged exercises one group per tenant.
        job = outcome.warp.repair.submit(
            PatchSpec(file="edit.php", exports=make_edit())
        )
        result = job.result(timeout=30)
        assert result.ok and result.stats.n_groups == 3
        done_groups = [
            payload["group"]
            for event, payload in job.events
            if event == "group_done"
        ]
        assert sorted(done_groups) == [1, 2, 3]
        assert job.progress()["groups_done"] == 3

    def test_conflict_found_event(self):
        """A repair that queues a conflict emits conflict_found."""
        outcome = run_scenario(
            "stored-xss", n_users=4, n_victims=1, seed=2, victim_upload=False
        )
        spec_info = patch_for("stored-xss")
        job = outcome.warp.repair.submit(
            PatchSpec(file=spec_info.file, exports=spec_info.build())
        )
        result = job.result(timeout=30)
        assert result.conflicts  # no browser log -> conflict
        conflict_events = [
            payload for event, payload in job.events if event == "conflict_found"
        ]
        assert conflict_events
        assert conflict_events[0]["client_id"]
        assert conflict_events[0]["reason"]

    def test_cancel_running_job_aborts_and_retry_works(self):
        outcome = run_scenario("stored-xss", n_users=5, n_victims=2, seed=4)
        warp = outcome.warp
        spec_info = patch_for("stored-xss")
        job = warp.repair.submit(
            PatchSpec(file=spec_info.file, exports=spec_info.build())
        )

        def on_event(event, payload):
            if event == "groups_planned":
                job.cancel()

        job.subscribe(on_event)
        # Subscribe may race the worker past planning; a late cancel can
        # still land before the worklist drains or after it finished.
        job.wait(30)
        if job.status == "canceled":
            with pytest.raises(RepairCanceled):
                job.result()
            assert warp.ttdb.repair_gen is None
            assert warp.ttdb.current_gen == 0  # generation discarded
            assert not warp.server.repair_active
            # The attack is still there; a fresh repair succeeds.
            result = warp.retroactive_patch(spec_info.file, spec_info.build())
            assert result.ok
            assert warp.ttdb.current_gen == 1
        else:
            # The job outran the cancel: it must have completed normally.
            assert job.status == "done"

    def test_cancel_queued_job(self, monkeypatch):
        outcome = run_scenario("stored-xss", n_users=4, n_victims=1, seed=6)
        warp = outcome.warp
        spec_info = patch_for("stored-xss")
        started = threading.Event()
        release = threading.Event()
        original = RepairJobManager._execute

        def slow(self, job):
            started.set()
            assert release.wait(30)
            return original(self, job)

        monkeypatch.setattr(RepairJobManager, "_execute", slow)
        first = warp.repair.submit(
            PatchSpec(file=spec_info.file, exports=spec_info.build())
        )
        assert started.wait(30)
        second = warp.repair.submit(CancelClientSpec("nobody-browser"))
        assert second.status == "queued"
        assert second.cancel()
        assert second.status == "canceled"
        with pytest.raises(RepairCanceled):
            second.result(timeout=5)
        release.set()
        assert first.result(timeout=30).ok
        # The canceled job never executed: no job_start journaled for it.
        assert second.job_id not in warp.graph.store.pending_repair_jobs

    def test_jobs_run_fifo(self, monkeypatch):
        """Two quick jobs submitted back-to-back execute in order."""
        outcome = run_multi_tenant_scenario(
            n_tenants=3, users_per_tenant=1, attacked_tenants=2, seed=5
        )
        warp = outcome.warp
        attacker = outcome.attacker_client
        order = []
        original = RepairJobManager._execute

        def tracking(self, job):
            order.append(job.job_id)
            return original(self, job)

        monkeypatch.setattr(RepairJobManager, "_execute", tracking)
        defacements = [
            visit.visit_id
            for visit in warp.graph.client_visits(attacker)
            if "edit.php" in visit.url and visit.parent_visit is None
        ]
        jobs = [
            warp.repair.submit(
                CancelVisitSpec(client_id=attacker, visit_id=visit_id)
            )
            for visit_id in defacements
        ]
        for job in jobs:
            assert job.result(timeout=30).ok
        assert order == [job.job_id for job in jobs]
        assert warp.repair.jobs() == jobs

    def test_cancel_finished_job_returns_false(self):
        outcome = run_multi_tenant_scenario(n_tenants=2, users_per_tenant=1, seed=3)
        job = outcome.warp.repair.submit(
            CancelClientSpec(outcome.attacker_client)
        )
        job.result(timeout=30)
        assert not job.cancel()

    def test_unknown_patch_name_fails_fast(self):
        outcome = run_multi_tenant_scenario(n_tenants=2, users_per_tenant=1, seed=3)
        with pytest.raises(RepairError, match="unknown patch"):
            outcome.warp.repair.submit(
                PatchSpec(file="edit.php", patch_name="never-registered")
            )

    def test_registered_patch_resolves(self):
        outcome = run_scenario("stored-xss", n_users=4, n_victims=1, seed=8)
        warp = outcome.warp
        spec_info = patch_for("stored-xss")
        warp.repair.register_patch("sxss", spec_info.file, spec_info.build())
        assert warp.repair.patch_names() == ["sxss"]
        job = warp.repair.submit(PatchSpec(file="", patch_name="sxss"))
        assert job.result(timeout=30).ok
        for victim in outcome.victims:
            assert "xss-attack-line" not in outcome.wiki.page_text(
                f"{victim}_notes"
            )


# ---------------------------------------------------------------------------
# jobs journal: interrupted jobs survive reload
# ---------------------------------------------------------------------------


class TestJobsJournal:
    def test_completed_job_leaves_no_pending_entry(self):
        outcome = run_multi_tenant_scenario(n_tenants=2, users_per_tenant=1, seed=4)
        warp = outcome.warp
        warp.repair.submit(CancelClientSpec(outcome.attacker_client)).result()
        assert warp.graph.store.pending_repair_jobs == {}
        assert warp.repair.interrupted_jobs() == []

    def test_interrupted_job_reported_after_reload(self, tmp_path):
        """A job journaled as started but never ended (the process died
        mid-repair) is reported by the reloaded deployment."""
        wal_path = str(tmp_path / "records.wal")
        warp = WarpSystem(wal_path=wal_path)
        wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
        wiki.install()
        wiki.seed_user("alice", "pw")
        alice = warp.client("alice-laptop")
        alice.open(f"{WIKI}/index.php?title=Main_Page")
        # Simulate the crash: the job start hits the WAL, the end never does.
        spec = CancelClientSpec("alice-laptop")
        warp.graph.store.log_repair_job_start(
            "job-1", spec.describe(), warp.clock.now()
        )

        recovered = WarpSystem.load(None, wal_path=wal_path)
        reports = recovered.repair.interrupted_jobs()
        assert [entry["job_id"] for entry in reports] == ["job-1"]
        assert reports[0]["spec"] == spec.describe()
        # New job ids never collide with the interrupted one.
        assert recovered.graph.store.next_repair_job_seq() == 2
        # Acknowledge clears the report durably.
        assert recovered.repair.acknowledge_interrupted("job-1")
        assert recovered.repair.interrupted_jobs() == []
        again = WarpSystem.load(None, wal_path=wal_path)
        assert again.repair.interrupted_jobs() == []

    def test_interrupted_job_survives_snapshot_round_trip(self, tmp_path):
        warp = WarpSystem()
        wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
        wiki.install()
        warp.graph.store.log_repair_job_start("job-3", {"kind": "batch"}, 7)
        path = str(tmp_path / "warp.json")
        warp.save(path)
        reloaded = WarpSystem.load(path)
        assert [e["job_id"] for e in reloaded.repair.interrupted_jobs()] == ["job-3"]


# ---------------------------------------------------------------------------
# the admin HTTP surface
# ---------------------------------------------------------------------------


def _admin(warp, method, path, token=None, **params):
    headers = {}
    if token is not None:
        headers["X-Warp-Admin-Token"] = token
    return warp.server.handle(
        HttpRequest(method, path, params=params, headers=headers)
    )


def _wait_terminal(warp, job_id, token=None, tries=500):
    import time

    for _ in range(tries):
        doc = json.loads(
            _admin(warp, "GET", f"/warp/admin/repair/{job_id}", token=token).body
        )
        if doc["status"] in ("done", "failed", "aborted", "canceled"):
            return doc
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never settled")


class TestAdminHttpSurface:
    def test_full_repair_over_http(self):
        """Acceptance: an end-to-end repair driven purely over the
        /warp/admin/repair endpoints."""
        outcome = run_scenario("stored-xss", n_users=5, n_victims=2, seed=7)
        warp = outcome.warp
        spec_info = patch_for("stored-xss")
        warp.repair.register_patch("sxss", spec_info.file, spec_info.build())
        spec_json = json.dumps(
            {"kind": "patch", "file": spec_info.file, "patch_name": "sxss"}
        )

        # Preview first (what-if), then submit, then poll to completion.
        preview = _admin(warp, "POST", "/warp/admin/repair/preview", spec=spec_json)
        assert preview.status == 200
        plan = json.loads(preview.body)
        assert plan["kind"] == "patch" and plan["seed_runs"] > 0

        submitted = _admin(warp, "POST", "/warp/admin/repair", spec=spec_json)
        assert submitted.status == 202
        job_id = json.loads(submitted.body)["job_id"]

        doc = _wait_terminal(warp, job_id)
        assert doc["status"] == "done"
        assert doc["result"]["ok"]
        assert doc["result"]["stats"]["runs_reexecuted"] > 0
        assert any(e["event"] == "finalized" for e in doc["events"])

        listing = json.loads(_admin(warp, "GET", "/warp/admin/repair").body)
        assert {"job_id": job_id, "status": "done"} in listing["jobs"]

        for victim in outcome.victims:
            assert "xss-attack-line" not in outcome.wiki.page_text(
                f"{victim}_notes"
            )

    def test_job_preview_endpoint(self):
        outcome = run_multi_tenant_scenario(n_tenants=2, users_per_tenant=1, seed=2)
        warp = outcome.warp
        spec_json = json.dumps(
            {"kind": "cancel_client", "client_id": outcome.attacker_client}
        )
        job_id = json.loads(
            _admin(warp, "POST", "/warp/admin/repair", spec=spec_json).body
        )["job_id"]
        _wait_terminal(warp, job_id)
        plan = json.loads(
            _admin(warp, "GET", f"/warp/admin/repair/{job_id}/preview").body
        )
        assert plan["kind"] == "cancel_client"

    def test_conflicts_endpoint(self):
        outcome = run_scenario(
            "stored-xss", n_users=4, n_victims=1, seed=2, victim_upload=False
        )
        result = outcome.repair()
        assert result.conflicts
        listing = json.loads(_admin(outcome.warp, "GET", "/warp/admin/conflicts").body)
        assert len(listing["pending"]) == len(result.conflicts)
        assert listing["pending"][0]["client_id"] == result.conflicts[0].client_id

    def test_cancel_endpoint(self):
        outcome = run_multi_tenant_scenario(n_tenants=2, users_per_tenant=1, seed=5)
        warp = outcome.warp
        spec_json = json.dumps(
            {"kind": "cancel_client", "client_id": outcome.attacker_client}
        )
        job_id = json.loads(
            _admin(warp, "POST", "/warp/admin/repair", spec=spec_json).body
        )["job_id"]
        response = _admin(warp, "POST", f"/warp/admin/repair/{job_id}/cancel")
        assert response.status == 200
        doc = _wait_terminal(warp, job_id)
        assert doc["status"] in ("canceled", "done")

    def test_error_paths(self):
        warp = WarpSystem()
        assert _admin(warp, "GET", "/warp/admin/nope").status == 404
        assert _admin(warp, "GET", "/warp/admin/repair/job-99").status == 404
        assert _admin(warp, "POST", "/warp/admin/repair").status == 400  # no spec
        assert (
            _admin(warp, "POST", "/warp/admin/repair", spec="{not json").status == 400
        )
        assert (
            _admin(
                warp, "POST", "/warp/admin/repair", spec='{"kind": "nope"}'
            ).status
            == 400
        )
        assert _admin(warp, "PUT", "/warp/admin/repair").status == 405
        # Admin paths are control plane: not recorded as runs.
        assert warp.graph.n_runs == 0

    def test_admin_token_enforced(self):
        warp = WarpSystem(admin_token="s3cret")
        assert _admin(warp, "GET", "/warp/admin/repair").status == 403
        assert _admin(warp, "GET", "/warp/admin/repair", token="wrong").status == 403
        assert _admin(warp, "GET", "/warp/admin/repair", token="s3cret").status == 200

    def test_admin_token_survives_reload(self, tmp_path):
        """Regression: a token-protected admin surface must not silently
        reopen after save/load."""
        warp = WarpSystem(admin_token="s3cret")
        WikiApp(warp.ttdb, warp.scripts, warp.server).install()
        path = str(tmp_path / "warp.json")
        warp.save(path)
        reloaded = WarpSystem.load(path)
        assert _admin(reloaded, "GET", "/warp/admin/repair").status == 403
        assert (
            _admin(reloaded, "GET", "/warp/admin/repair", token="s3cret").status
            == 200
        )

    def test_admin_surface_reports_bad_statements_as_400(self):
        """Regression: a StorageError from a bogus fix statement must come
        back as a JSON 400, not crash the serving thread."""
        outcome = run_multi_tenant_scenario(n_tenants=2, users_per_tenant=1, seed=1)
        bad = json.dumps(
            {"kind": "db_fix", "sql": "UPDATE nosuch SET x = 1 WHERE id = 1", "ts": 5}
        )
        response = _admin(outcome.warp, "POST", "/warp/admin/repair/preview", spec=bad)
        assert response.status == 400
        assert "nosuch" in json.loads(response.body)["error"]

    def test_admin_status_served_during_repair(self):
        """The control plane stays reachable while a repair runs (the
        whole point of the async redesign)."""
        outcome = run_scenario("stored-xss", n_users=4, n_victims=1, seed=9)
        warp = outcome.warp
        statuses = []

        def poll():
            statuses.append(_admin(warp, "GET", "/warp/admin/repair").status)

        controller = warp._controller()
        controller.step_hook = poll
        spec_info = patch_for("stored-xss")
        result = controller.retroactive_patch(spec_info.file, spec_info.build())
        assert result.ok
        assert statuses and all(status == 200 for status in statuses)


# ---------------------------------------------------------------------------
# satellite: repair configuration survives save/load
# ---------------------------------------------------------------------------


class TestRepairConfigPersistence:
    def test_gate_and_cluster_mode_survive_reload(self, tmp_path):
        """Regression (ISSUE 5 satellite): save with the online gate
        enabled -> load -> repair still gates."""
        outcome = run_multi_tenant_scenario(
            n_tenants=3, users_per_tenant=1, attacked_tenants=1, seed=3
        )
        warp = outcome.warp
        warp.cluster_mode = "parallel"
        warp.enable_online_repair(policy="global")
        path = str(tmp_path / "warp.json")
        warp.save(path)

        reloaded = WarpSystem.load(path)
        WikiApp(reloaded.ttdb, reloaded.scripts, reloaded.server).register_code()
        assert reloaded.cluster_mode == "parallel"
        assert reloaded.server.gate is not None
        assert reloaded.server.gate.policy == "global"
        # And a repair actually gates: gate counters appear in the stats.
        result = reloaded.cancel_client(outcome.attacker_client)
        assert result.ok
        assert result.stats.gate  # populated only when a gate is installed

    def test_default_config_round_trips(self, tmp_path):
        warp = WarpSystem()
        WikiApp(warp.ttdb, warp.scripts, warp.server).install()
        path = str(tmp_path / "warp.json")
        warp.save(path)
        reloaded = WarpSystem.load(path)
        assert reloaded.cluster_mode == "sequential"
        assert reloaded.server.gate is None


# ---------------------------------------------------------------------------
# satellite: drain-timeout 503s are self-describing
# ---------------------------------------------------------------------------


class TestSuspend503:
    def test_switch_window_503_is_transient_with_retry_after(self):
        warp = WarpSystem()
        WikiApp(warp.ttdb, warp.scripts, warp.server).install()
        warp.server.suspended = True
        response = warp.server.handle(HttpRequest("GET", "/index.php"))
        assert response.status == 503
        assert response.headers["Retry-After"] == "1"
        assert response.headers["X-Warp-Suspended"] == "switch"
        assert "generation switch window" in response.body

    def test_wedged_switch_503_is_distinguishable(self):
        warp = WarpSystem()
        WikiApp(warp.ttdb, warp.scripts, warp.server).install()
        warp.enable_online_repair()
        warp.server.suspended = True  # and never cleared: wedged
        warp.server.switch_wait_seconds = 0.05
        response = warp.server.handle(HttpRequest("GET", "/index.php"))
        assert response.status == 503
        assert response.headers["X-Warp-Suspended"] == "wedged"
        assert int(response.headers["Retry-After"]) > 1
        assert "wedged" in response.body


# ---------------------------------------------------------------------------
# satellite (ISSUE 9): malformed specs answer a structured 400, never a 500
# ---------------------------------------------------------------------------


class TestSpecParseHardening:
    """Every malformed spec posted to /warp/admin/repair must come back
    as a JSON 400 — a 500 means an exception class escaped parse_spec."""

    BAD_SPECS = [
        "[1, 2, 3]",  # non-dict: array
        "42",  # non-dict: number
        "null",  # non-dict: null
        '"cancel_client"',  # non-dict: bare string
        '{"kind": "nope"}',  # unknown kind
        '{"kind": {"a": 1}}',  # unhashable kind (dict) — was a TypeError/500
        '{"kind": ["cancel_client"]}',  # unhashable kind (list)
        '{"kind": 7}',  # non-string kind
        "{}",  # missing kind
        '{"kind": "cancel_visit"}',  # missing required fields
        '{"kind": "cancel_visit", "client_id": "c1", "visit_id": "xyz"}',
        '{"kind": "cancel_client"}',  # missing client_id
        '{"kind": "db_fix"}',  # missing sql
        '{"kind": "db_fix", "sql": "UPDATE t SET x=1", "params": 9}',
        '{"kind": "patch"}',  # neither exports nor patch_name
        '{"kind": "batch"}',  # empty batch
        '{"kind": "batch", "specs": 5}',  # non-list members
        '{"kind": "batch", "specs": [{"kind": "nope"}]}',  # bad member
    ]

    @pytest.mark.parametrize("raw", BAD_SPECS)
    def test_submit_answers_400(self, raw):
        warp = WarpSystem()
        for path in ("/warp/admin/repair", "/warp/admin/repair/preview"):
            response = _admin(warp, "POST", path, spec=raw)
            assert response.status == 400, (path, raw, response.body)
            assert "error" in json.loads(response.body)
        # Control plane: nothing recorded, no job admitted.
        assert warp.graph.n_runs == 0
        assert warp.repair.jobs() == []

    def test_parse_spec_raises_repair_error_only(self):
        for raw in self.BAD_SPECS:
            with pytest.raises(RepairError):
                parse_spec(json.loads(raw))


# ---------------------------------------------------------------------------
# satellite (ISSUE 9): admin-token comparison is constant-time
# ---------------------------------------------------------------------------


class TestAdminTokenTiming:
    def test_wrong_token_and_missing_token_403(self):
        warp = WarpSystem(admin_token="s3cret")
        assert _admin(warp, "GET", "/warp/admin/repair").status == 403
        assert _admin(warp, "GET", "/warp/admin/repair", token="").status == 403
        assert _admin(warp, "GET", "/warp/admin/repair", token="s3cre").status == 403
        assert (
            _admin(warp, "GET", "/warp/admin/repair", token="s3cret-x").status == 403
        )
        assert _admin(warp, "GET", "/warp/admin/repair", token="s3cret").status == 200

    def test_comparison_is_constant_time_by_construction(self):
        """The token check must go through hmac.compare_digest — an
        early-exit ``!=`` leaks the matching prefix length per probe."""
        import inspect

        from repro.http.server import HttpServer

        source = inspect.getsource(HttpServer.handle)
        assert "compare_digest" in source
        assert "!= self.admin_token" not in source


# ---------------------------------------------------------------------------
# satellite (ISSUE 9): a plain Exception escaping after the generation
# switch must not mis-settle the job as failed (double-apply bait)
# ---------------------------------------------------------------------------


from repro.faults.plane import FaultPlane as _FaultPlane


class _PlainFailurePlane(_FaultPlane):
    """Raises a *plain* RuntimeError (not an InjectedFault) at one point:
    models a non-injected bug — a listener-adjacent data structure blowing
    up, a broken metrics hook — escaping the entry after the commit."""

    def __init__(self, point):
        super().__init__()
        self._point = point

    def fire(self, point, **context):
        if point == self._point:
            raise RuntimeError(f"plain failure at {point}")
        super().fire(point, **context)


class TestPostSwitchPlainFailure:
    def test_plain_exception_after_switch_settles_done(self):
        """Failing before the ISSUE 9 fix: the repair committed (generation
        switched) but a plain RuntimeError escaping afterwards settled the
        job as ``failed`` — inviting the admin to re-submit a spec whose
        retroactive effect would then apply twice.  The job must settle
        ``done`` with a post_commit_fault event, exactly like the injected/
        storage fault kinds already did."""
        outcome = run_multi_tenant_scenario(
            n_tenants=2, users_per_tenant=1, attacked_tenants=1, seed=11
        )
        warp = outcome.warp
        warp.faults = _PlainFailurePlane("repair.finalized")
        job = warp.repair.submit(
            CancelClientSpec(client_id=outcome.attacker_client)
        )
        job.wait(30)
        assert job.status == "done", repr(job.error)
        assert job.result().ok
        assert any(event == "post_commit_fault" for event, _ in job.events)
        # The repaired state really is live: the defacement is gone.
        for tenant in outcome.attacked:
            text = outcome.wiki.page_text(outcome.tenant_page(tenant)) or ""
            assert "DEFACED" not in text
        # And the journal shows a completed job, not an interrupted one.
        assert warp.repair.interrupted_jobs() == []

    def test_cancellation_still_wins_pre_switch(self):
        """The audit's other half: RepairCanceled is never swallowed into
        the post-switch settle — a cancel honored before the switch always
        lands the job in ``canceled``."""
        outcome = run_multi_tenant_scenario(
            n_tenants=2, users_per_tenant=1, attacked_tenants=1, seed=12
        )
        warp = outcome.warp
        job = warp.repair.submit(
            CancelClientSpec(client_id=outcome.attacker_client)
        )
        job.cancel()
        job.wait(30)
        assert job.status in ("canceled", "done")
        if job.status == "canceled":
            with pytest.raises(RepairCanceled):
                job.result()
