"""Unit tests for the jsmini interpreter."""

import pytest

from repro.browser.jsmini import Interpreter
from repro.browser.jsmini.lexer import JsSyntaxError, tokenize
from repro.browser.jsmini.parser import parse_program


def run(source, extra_builtins=None):
    log = []
    builtins = {"log": log.append}
    if extra_builtins:
        builtins.update(extra_builtins)
    interp = Interpreter(builtins)
    interp.run(source)
    return log, interp


class TestBasics:
    def test_var_and_log(self):
        log, _ = run("var x = 1 + 2; log(x);")
        assert log == [3]

    def test_string_concat(self):
        log, _ = run("var u = 'alice'; log(u + '_notes');")
        assert log == ["alice_notes"]

    def test_string_number_concat(self):
        log, _ = run("log('v' + 2);")
        assert log == ["v2"]

    def test_assignment(self):
        log, _ = run("var x = 1; x = x + 1; log(x);")
        assert log == [2]

    def test_assignment_to_undeclared_is_error(self):
        log, interp = run("y = 1;")
        assert interp.errors

    def test_if_else(self):
        log, _ = run("if (1 < 2) { log('yes'); } else { log('no'); }")
        assert log == ["yes"]

    def test_while_loop(self):
        log, _ = run("var i = 0; while (i < 3) { log(i); i = i + 1; }")
        assert log == [0, 1, 2]

    def test_object_literal(self):
        log, _ = run("log({'title': 'Home', count: 2});")
        assert log == [{"title": "Home", "count": 2}]

    def test_boolean_logic(self):
        log, _ = run("log(true && false); log(true || false); log(!true);")
        assert log == [False, True, False]

    def test_equality(self):
        log, _ = run("log(1 == 1); log('a' != 'b'); log(2 === 2);")
        assert log == [True, True, True]

    def test_comments(self):
        log, _ = run("// line\n/* block */ log(1);")
        assert log == [1]

    def test_builtin_len_and_str(self):
        log, _ = run("log(len('abcd')); log(str(5) + '!');")
        assert log == [4, "5!"]


class TestErrors:
    def test_syntax_error_recorded_not_raised(self):
        _, interp = run("var = ;")
        assert interp.errors
        assert "syntax" in interp.errors[0]

    def test_undefined_variable(self):
        _, interp = run("log(nope);")
        assert interp.errors

    def test_undefined_function(self):
        _, interp = run("missiles();")
        assert "undefined function" in interp.errors[0]

    def test_division_by_zero(self):
        _, interp = run("log(1 / 0);")
        assert interp.errors

    def test_runaway_loop_is_bounded(self):
        _, interp = run("var i = 0; while (true) { i = i + 1; }")
        assert any("budget" in err for err in interp.errors)

    def test_error_stops_script_midway(self):
        log, interp = run("log('before'); boom(); log('after');")
        assert log == ["before"]
        assert interp.errors

    def test_host_exception_becomes_js_error(self):
        def bad(_arg):
            raise ValueError("host blew up")

        _, interp = run("bad(1);", {"bad": bad})
        assert "host blew up" in interp.errors[0]


class TestAttackShapedScripts:
    def test_xss_payload_shape(self):
        """The stored-XSS payload: read the username from the DOM, then
        post an append to that user's notes page."""
        posts = []

        def doc_text(selector):
            assert selector == "#username"
            return "alice"

        def http_post(url, params):
            posts.append((url, params))

        run(
            "var u = doc_text('#username');"
            "http_post('/edit.php', {'title': u + '_notes', 'append': 'XSS-APPEND'});",
            {"doc_text": doc_text, "http_post": http_post},
        )
        assert posts == [("/edit.php", {"title": "alice_notes", "append": "XSS-APPEND"})]

    def test_csrf_payload_shape(self):
        posts = []
        run(
            "http_post('http://wiki.test/login.php',"
            " {'user': 'attacker', 'password': 'attpw', 'force': '1'});",
            {"http_post": lambda url, params: posts.append((url, params))},
        )
        assert len(posts) == 1
        assert posts[0][1]["user"] == "attacker"


class TestLexer:
    def test_tokenize_operators(self):
        kinds = [t.value for t in tokenize("a && b || !c")[:-1]]
        assert kinds == ["a", "&&", "b", "||", "!", "c"]

    def test_string_escapes(self):
        toks = tokenize(r"'a\'b\n'")
        assert toks[0].value == "a'b\n"

    def test_unterminated_string(self):
        with pytest.raises(JsSyntaxError):
            tokenize("'oops")

    def test_parse_cached(self):
        assert parse_program("log(1);") is parse_program("log(1);")
