"""Unit tests for statement execution over versioned storage.

These exercise the §4.4 rewriting semantics directly: time-travel reads,
version closure on writes, repair-generation preservation, uniqueness.
"""

import pytest

from repro.core.clock import INFINITY
from repro.db.executor import ExecContext, Executor
from repro.db.sql.parser import parse
from repro.db.storage import Column, Database, TableSchema


def make_db(partition_columns=("title",), unique_keys=()):
    db = Database()
    db.create_table(
        TableSchema(
            name="pages",
            columns=(
                Column("page_id", "int"),
                Column("title"),
                Column("body"),
                Column("editor"),
            ),
            row_id_column="page_id",
            partition_columns=partition_columns,
            unique_keys=unique_keys,
        )
    )
    return db


def ctx(ts, gen=0, current_gen=0, repair=False):
    return ExecContext(ts=ts, gen=gen, current_gen=current_gen, repair=repair)


def run(executor, sql, params=(), at=None):
    return executor.execute(parse(sql), params, at)


class TestInsertSelect:
    def test_insert_then_select(self):
        ex = Executor(make_db())
        res = run(ex, "INSERT INTO pages (page_id, title, body) VALUES (1, 'Home', 'hi')", at=ctx(1))
        assert res.ok and res.rowcount == 1
        rows = run(ex, "SELECT * FROM pages", at=ctx(2)).rows
        assert rows == [{"page_id": 1, "title": "Home", "body": "hi", "editor": None}]

    def test_insert_uses_row_id_column(self):
        ex = Executor(make_db())
        res = run(ex, "INSERT INTO pages (page_id, title) VALUES (7, 'X')", at=ctx(1))
        assert res.inserted_row_ids == (7,)

    def test_insert_synthetic_row_id_when_missing(self):
        ex = Executor(make_db())
        res = run(ex, "INSERT INTO pages (title) VALUES ('X')", at=ctx(1))
        assert res.inserted_row_ids == (1,)

    def test_select_projection_and_params(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'a'), (2, 'B', 'b')", at=ctx(1))
        rows = run(ex, "SELECT body FROM pages WHERE title = ?", ("B",), at=ctx(2)).rows
        assert rows == [{"body": "b"}]

    def test_select_order_by_desc(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A'), (2, 'C'), (3, 'B')", at=ctx(1))
        rows = run(ex, "SELECT title FROM pages ORDER BY title DESC", at=ctx(2)).rows
        assert [r["title"] for r in rows] == ["C", "B", "A"]

    def test_select_limit(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A'), (2, 'B')", at=ctx(1))
        rows = run(ex, "SELECT * FROM pages LIMIT 1", at=ctx(2)).rows
        assert len(rows) == 1

    def test_count_star(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A'), (2, 'B')", at=ctx(1))
        rows = run(ex, "SELECT COUNT(*) FROM pages", at=ctx(2)).rows
        assert rows == [{"count": 2}]


class TestTimeTravelReads:
    def test_read_before_insert_sees_nothing(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A')", at=ctx(5))
        assert run(ex, "SELECT * FROM pages", at=ctx(4)).rows == []
        assert len(run(ex, "SELECT * FROM pages", at=ctx(5)).rows) == 1

    def test_read_sees_value_as_of_time(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')", at=ctx(1))
        run(ex, "UPDATE pages SET body = 'v2' WHERE page_id = 1", at=ctx(10))
        assert run(ex, "SELECT body FROM pages", at=ctx(5)).rows[0]["body"] == "v1"
        assert run(ex, "SELECT body FROM pages", at=ctx(10)).rows[0]["body"] == "v2"
        assert run(ex, "SELECT body FROM pages", at=ctx(99)).rows[0]["body"] == "v2"

    def test_deleted_row_invisible_after_delete(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A')", at=ctx(1))
        run(ex, "DELETE FROM pages WHERE page_id = 1", at=ctx(5))
        assert run(ex, "SELECT * FROM pages", at=ctx(4)).rows != []
        assert run(ex, "SELECT * FROM pages", at=ctx(6)).rows == []

    def test_update_preserves_history_chain(self):
        db = make_db()
        ex = Executor(db)
        run(ex, "INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')", at=ctx(1))
        run(ex, "UPDATE pages SET body = 'v2' WHERE page_id = 1", at=ctx(2))
        run(ex, "UPDATE pages SET body = 'v3' WHERE page_id = 1", at=ctx(3))
        versions = db.table("pages").row_versions(1)
        assert len(versions) == 3
        current = [v for v in versions if v.end_ts == INFINITY]
        assert len(current) == 1
        assert current[0].data["body"] == "v3"


class TestWriteResults:
    def test_update_reports_affected_row_ids(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A'), (2, 'A'), (3, 'B')", at=ctx(1))
        res = run(ex, "UPDATE pages SET body = 'x' WHERE title = 'A'", at=ctx(2))
        assert sorted(res.affected_row_ids) == [1, 2]
        assert res.rowcount == 2

    def test_written_partitions_cover_old_and_new_values(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'Old')", at=ctx(1))
        res = run(ex, "UPDATE pages SET title = 'New' WHERE page_id = 1", at=ctx(2))
        assert ("pages", "title", "Old") in res.written_partitions
        assert ("pages", "title", "New") in res.written_partitions

    def test_snapshot_equality_for_identical_selects(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A')", at=ctx(1))
        a = run(ex, "SELECT * FROM pages", at=ctx(2)).snapshot()
        b = run(ex, "SELECT * FROM pages", at=ctx(3)).snapshot()
        assert a == b

    def test_snapshot_differs_when_rows_differ(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A')", at=ctx(1))
        a = run(ex, "SELECT * FROM pages", at=ctx(2)).snapshot()
        run(ex, "UPDATE pages SET title = 'B' WHERE page_id = 1", at=ctx(3))
        b = run(ex, "SELECT * FROM pages", at=ctx(4)).snapshot()
        assert a != b


class TestUniqueness:
    def test_insert_unique_violation_fails_without_insert(self):
        ex = Executor(make_db(unique_keys=(("title",),)))
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A')", at=ctx(1))
        res = run(ex, "INSERT INTO pages (page_id, title) VALUES (2, 'A')", at=ctx(2))
        assert not res.ok
        assert "unique" in res.error
        assert len(run(ex, "SELECT * FROM pages", at=ctx(3)).rows) == 1

    def test_unique_allows_reuse_after_delete(self):
        # The paper's uniqueness trick: old versions must not block reuse (§6).
        ex = Executor(make_db(unique_keys=(("title",),)))
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A')", at=ctx(1))
        run(ex, "DELETE FROM pages WHERE page_id = 1", at=ctx(2))
        res = run(ex, "INSERT INTO pages (page_id, title) VALUES (2, 'A')", at=ctx(3))
        assert res.ok

    def test_batch_insert_checks_within_batch(self):
        ex = Executor(make_db(unique_keys=(("title",),)))
        res = run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A'), (2, 'A')", at=ctx(1))
        assert not res.ok

    def test_update_unique_violation(self):
        ex = Executor(make_db(unique_keys=(("title",),)))
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A'), (2, 'B')", at=ctx(1))
        res = run(ex, "UPDATE pages SET title = 'A' WHERE page_id = 2", at=ctx(2))
        assert not res.ok
        rows = run(ex, "SELECT title FROM pages WHERE page_id = 2", at=ctx(3)).rows
        assert rows[0]["title"] == "B"


class TestRepairGenerations:
    """§4.3/§4.4: repair writes in gen N+1 must not disturb gen N."""

    def test_repair_update_invisible_to_current_generation(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'orig')", at=ctx(1))
        # Repair rewrites the body at historical time 1 in generation 1.
        run(ex, "UPDATE pages SET body = 'fixed' WHERE page_id = 1",
            at=ctx(1, gen=1, current_gen=0, repair=True))
        live = run(ex, "SELECT body FROM pages", at=ctx(50, gen=0, current_gen=0)).rows
        assert live[0]["body"] == "orig"
        repaired = run(ex, "SELECT body FROM pages", at=ctx(50, gen=1, current_gen=0)).rows
        assert repaired[0]["body"] == "fixed"

    def test_repair_insert_invisible_to_current_generation(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (9, 'New')",
            at=ctx(5, gen=1, current_gen=0, repair=True))
        assert run(ex, "SELECT * FROM pages", at=ctx(50, gen=0, current_gen=0)).rows == []
        assert len(run(ex, "SELECT * FROM pages", at=ctx(50, gen=1, current_gen=0)).rows) == 1

    def test_repair_delete_preserves_current_generation(self):
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A')", at=ctx(1))
        run(ex, "DELETE FROM pages WHERE page_id = 1",
            at=ctx(1, gen=1, current_gen=0, repair=True))
        assert len(run(ex, "SELECT * FROM pages", at=ctx(50, gen=0, current_gen=0)).rows) == 1
        assert run(ex, "SELECT * FROM pages", at=ctx(50, gen=1, current_gen=0)).rows == []

    def test_normal_writes_flow_into_next_generation_verbatim(self):
        # Rows untouched by repair are "copied verbatim" into the next gen.
        ex = Executor(make_db())
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A')", at=ctx(10, gen=0))
        rows = run(ex, "SELECT * FROM pages", at=ctx(50, gen=1, current_gen=0)).rows
        assert len(rows) == 1


class TestPlainMode:
    """The "No WARP" baseline: in-place updates, no version history."""

    def test_update_in_place(self):
        db = make_db()
        ex = Executor(db, versioned=False)
        run(ex, "INSERT INTO pages (page_id, title, body) VALUES (1, 'A', 'v1')", at=ctx(1))
        run(ex, "UPDATE pages SET body = 'v2' WHERE page_id = 1", at=ctx(2))
        assert len(db.table("pages").row_versions(1)) == 1
        assert run(ex, "SELECT body FROM pages", at=ctx(0)).rows[0]["body"] == "v2"

    def test_delete_removes_version(self):
        db = make_db()
        ex = Executor(db, versioned=False)
        run(ex, "INSERT INTO pages (page_id, title) VALUES (1, 'A')", at=ctx(1))
        run(ex, "DELETE FROM pages WHERE page_id = 1", at=ctx(2))
        assert db.table("pages").version_count == 0
