"""Unit-level tests of repair machinery: two-phase write re-execution,
query undo, run cancellation, input-change detection, and the merge of
repaired runs back into the action history graph."""

import pytest

from repro.apps.wiki import WikiApp
from repro.http.message import HttpRequest
from repro.warp import WarpSystem

WIKI = "http://wiki.test"


@pytest.fixture
def warp():
    system = WarpSystem(origin=WIKI)
    wiki = WikiApp(system.ttdb, system.scripts, system.server)
    wiki.install()
    wiki.seed_user("alice", "pw")
    wiki.seed_page("P", "original", owner="alice")
    system._wiki = wiki
    return system


def server_request(warp, path, params, cookies=None, client=None, visit=1, req=1):
    headers = {}
    if client:
        headers = {
            "X-Warp-Client": client,
            "X-Warp-Visit": str(visit),
            "X-Warp-Request": str(req),
        }
    return warp.server.handle(
        HttpRequest("POST", path, params=params, cookies=cookies or {}, headers=headers)
    )


def login_session(warp, name):
    result = warp.ttdb.execute(
        "INSERT INTO sessions (sess_token, user_name) VALUES (?, ?)",
        (f"tok-{name}", name),
    )
    return f"tok-{name}"


class TestTwoPhaseReexecution:
    def test_reexec_write_restores_and_reapplies(self, warp):
        token = login_session(warp, "alice")
        server_request(
            warp, "/edit.php", {"title": "P", "wpTextbox": "edited"},
            cookies={"sess": token},
        )
        run = warp.graph.runs_in_order()[-1]
        update = next(q for q in run.queries if q.kind == "update")

        controller = warp._controller()
        controller._begin()
        result = controller.reexec_statement(
            update.sql, update.params, update.ts, update
        )
        assert result.result.snapshot() == update.snapshot
        controller.ttdb.finalize_repair()
        assert warp._wiki.page_text("P") == "edited"

    def test_reexec_with_different_params_changes_row(self, warp):
        token = login_session(warp, "alice")
        server_request(
            warp, "/edit.php", {"title": "P", "wpTextbox": "edited"},
            cookies={"sess": token},
        )
        run = warp.graph.runs_in_order()[-1]
        update = next(q for q in run.queries if q.kind == "update")
        controller = warp._controller()
        controller._begin()
        new_params = tuple(
            "merged text" if p == "edited" else p for p in update.params
        )
        controller.reexec_statement(update.sql, new_params, update.ts, update)
        controller.ttdb.finalize_repair()
        assert warp._wiki.page_text("P") == "merged text"

    def test_undo_query_rolls_back_written_rows(self, warp):
        token = login_session(warp, "alice")
        server_request(
            warp, "/edit.php", {"title": "P", "wpTextbox": "vandalism"},
            cookies={"sess": token},
        )
        run = warp.graph.runs_in_order()[-1]
        update = next(q for q in run.queries if q.kind == "update")
        controller = warp._controller()
        controller._begin()
        controller.undo_query(update)
        controller.ttdb.finalize_repair()
        assert warp._wiki.page_text("P") == "original"

    def test_cancel_run_undoes_all_writes(self, warp):
        token = login_session(warp, "alice")
        server_request(
            warp, "/edit.php", {"title": "NewPage", "wpTextbox": "created"},
            cookies={"sess": token},
        )
        run = warp.graph.runs_in_order()[-1]
        controller = warp._controller()
        controller._begin()
        controller.cancel_run(run)
        controller.ttdb.finalize_repair()
        assert warp._wiki.page_text("NewPage") is None
        assert run.canceled

    def test_cancel_run_is_idempotent(self, warp):
        token = login_session(warp, "alice")
        server_request(
            warp, "/edit.php", {"title": "P", "wpTextbox": "x"},
            cookies={"sess": token},
        )
        run = warp.graph.runs_in_order()[-1]
        controller = warp._controller()
        controller._begin()
        controller.cancel_run(run)
        controller.cancel_run(run)
        assert controller.stats.runs_canceled == 1
        controller.ttdb.abort_repair()


class TestInputsChanged:
    def test_unchanged_run(self, warp):
        server_request(warp, "/index.php", {"title": "P"})
        run = warp.graph.runs_in_order()[-1]
        controller = warp._controller()
        controller._begin()
        assert not controller._inputs_changed(run)
        controller.ttdb.abort_repair()

    def test_patched_file_changes_inputs(self, warp):
        server_request(warp, "/index.php", {"title": "P"})
        run = warp.graph.runs_in_order()[-1]
        controller = warp._controller()
        controller._begin()
        warp.scripts.patch("index.php", {"handle": lambda ctx: None})
        assert controller._inputs_changed(run)
        controller.ttdb.abort_repair()

    def test_modified_read_partition_changes_inputs(self, warp):
        server_request(warp, "/index.php", {"title": "P"})
        run = warp.graph.runs_in_order()[-1]
        controller = warp._controller()
        controller._begin()
        first_query_ts = run.queries[0].ts
        controller.mods.record(
            "pagecontent", {("pagecontent", "title", "P")}, ts=first_query_ts
        )
        assert controller._inputs_changed(run)
        controller.ttdb.abort_repair()

    def test_unrelated_partition_does_not_change_inputs(self, warp):
        server_request(warp, "/index.php", {"title": "P"})
        run = warp.graph.runs_in_order()[-1]
        controller = warp._controller()
        controller._begin()
        controller.mods.record(
            "pagecontent", {("pagecontent", "title", "Unrelated")}, ts=1
        )
        # The view also runs an ALL-partition sitestats query, so table
        # modifications do affect it; restrict the check to a table the
        # run never touches.
        controller.mods.record("blocks", {("blocks", "ip", "9.9.9.9")}, ts=1)
        changed = controller._inputs_changed(run)
        assert changed  # because of the ALL-reader sitestats query
        controller.ttdb.abort_repair()


class TestGraphMerge:
    def test_replacement_preserves_run_identity(self, warp):
        token = login_session(warp, "alice")
        server_request(
            warp, "/edit.php", {"title": "P", "wpTextbox": "v1"},
            cookies={"sess": token}, client="c1", visit=3, req=1,
        )
        run = warp.graph.runs_in_order()[-1]
        old_id = run.run_id
        old_ts = run.ts_start
        controller = warp._controller()
        controller._begin()
        controller._reexec_run(run, run.request, conflict_on_change=False)
        controller._finalize()
        merged = warp.graph.runs[old_id]
        assert merged.run_id == old_id
        assert merged.ts_start == old_ts
        assert merged.client_id == "c1"
        assert warp.graph.run_for_request("c1", 3, 1).run_id == old_id

    def test_repair_stats_counts(self, warp):
        server_request(warp, "/index.php", {"title": "P"})
        run = warp.graph.runs_in_order()[-1]
        controller = warp._controller()
        controller._begin()
        controller._reexec_run(run, run.request, conflict_on_change=False)
        assert controller.stats.runs_reexecuted == 1
        assert controller.stats.queries_reexecuted == len(run.queries)
        controller.ttdb.abort_repair()


class TestReplayChain:
    def test_chain_climbs_through_event_parents(self, warp):
        browser = warp.client("chain-client")
        browser.open(f"{WIKI}/login.php")
        browser.type_into("input[name=wpName]", "alice")
        browser.type_into("input[name=wpPassword]", "pw")
        post_visit = browser.submit("#loginform")
        post_run = warp.graph.run_for_request("chain-client", post_visit.visit_id, 1)
        controller = warp._controller()
        visit_record = warp.graph.visit_of_run(post_run)
        chain = controller._replay_chain(visit_record)
        # topmost first: the login form visit, then the POST result visit.
        assert [v.visit_id for v in chain] == [
            post_visit.parent_visit,
            post_visit.visit_id,
        ]

    def test_chain_stops_at_parent_without_events(self, warp):
        browser = warp.client("chain2")
        first = browser.open(f"{WIKI}/index.php?title=P")
        second = browser.click("#editlink")
        controller = warp._controller()
        record = warp.graph.visits[("chain2", second.visit_id)]
        chain = controller._replay_chain(record)
        # The view visit has a click event, so it is included.
        assert chain[0].visit_id == first.visit_id
