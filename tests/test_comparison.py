"""Table 5 reproduction tests: WARP vs taint-tracking recovery (§8.4)."""

import pytest

from repro.workload.comparison import BUGS, run_corruption_scenario


@pytest.fixture(scope="module")
def outcomes():
    return {bug: run_corruption_scenario(bug, n_after=12) for bug in BUGS}


class TestScenarioStaging:
    def test_voting_bug_zeroes_votes(self, outcomes):
        outcome = outcomes["drupal-voting"]
        votes = outcome.app.votes_for("Node1")
        assert votes and all(row["value"] == 0 for row in votes)

    def test_comments_bug_blanks_comments(self, outcomes):
        outcome = outcomes["drupal-comments"]
        comments = outcome.app.comments_for("Node1")
        assert comments and all(row["body"] == "" for row in comments)

    def test_perms_bug_revokes_everywhere(self, outcomes):
        outcome = outcomes["gallery-perms"]
        rows = outcome.warp.ttdb.execute(
            "SELECT level FROM perms WHERE user_name = 'mallory'"
        ).rows
        assert rows and all(row["level"] == "none" for row in rows)

    def test_resize_bug_corrupts_album(self, outcomes):
        outcome = outcomes["gallery-resize"]
        for index in (2, 5, 10):
            item = outcome.app.item(f"Photo{index}")
            assert item["width"] == 64 and item["height"] == 48


class TestTaintBaseline:
    @pytest.mark.parametrize("bug", BUGS)
    def test_no_false_negatives(self, outcomes, bug):
        report = outcomes[bug].taint_report(whitelisted=False)
        assert report.fn_count == 0

    @pytest.mark.parametrize("bug", BUGS)
    def test_false_positives_without_whitelisting(self, outcomes, bug):
        report = outcomes[bug].taint_report(whitelisted=False)
        assert report.fp_count > 0, "the baseline must over-approximate"

    @pytest.mark.parametrize("bug", ["drupal-voting", "drupal-comments", "gallery-resize"])
    def test_whitelisting_eliminates_fps_for_log_only_spread(self, outcomes, bug):
        report = outcomes[bug].taint_report(whitelisted=True)
        assert report.fp_count == 0
        assert report.fn_count == 0

    def test_perms_bug_keeps_fps_despite_whitelisting(self, outcomes):
        # Table 5's 82 / 10 row: view-count updates are real data, so
        # whitelisting the access log cannot remove those false positives.
        report = outcomes["gallery-perms"].taint_report(whitelisted=True)
        assert report.fp_count > 0
        assert all(table == "items" for table, _ in report.false_positives)

    @pytest.mark.parametrize("bug", BUGS)
    def test_baseline_requires_user_input(self, outcomes, bug):
        assert outcomes[bug].taint_report(whitelisted=True).requires_user_input


class TestWarpRecovery:
    @pytest.mark.parametrize("bug", BUGS)
    def test_warp_restores_exact_state(self, outcomes, bug):
        outcome = outcomes[bug]
        result = outcome.warp_repair()
        assert result.ok
        assert outcome.verify_restored(), f"{bug}: state not fully restored"

    @pytest.mark.parametrize("bug", BUGS)
    def test_warp_needs_no_user_input(self, outcomes, bug):
        # Repair above queued no conflicts: nothing for users to resolve.
        assert not outcomes[bug].warp.conflicts.pending()
