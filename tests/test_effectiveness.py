"""Table 4 reproduction tests: browser re-execution effectiveness (§8.3).

Paper's expected grid (conflicts out of 8 victims):

    attack        no-extension   no-merge   full
    read-only          8            0        0
    append-only        8            8        0
    overwrite          8            8        8
"""

import pytest

from repro.workload.effectiveness import run_effectiveness

N = 4  # victims; the paper used 8 — the counts scale exactly (all-or-none)


@pytest.mark.parametrize(
    "attack_action,config,expected",
    [
        ("read-only", "no-extension", N),
        ("read-only", "no-merge", 0),
        ("read-only", "full", 0),
        ("append-only", "no-extension", N),
        ("append-only", "no-merge", N),
        ("append-only", "full", 0),
        ("overwrite", "no-extension", N),
        ("overwrite", "no-merge", N),
        ("overwrite", "full", N),
    ],
)
def test_effectiveness_cell(attack_action, config, expected):
    cell = run_effectiveness(attack_action, config, n_victims=N)
    assert cell.victims_with_conflicts == expected


def test_full_extension_preserves_victim_append_edits():
    """In the full configuration the user's edit survives attack removal."""
    from repro.workload.scenarios import WikiDeployment, WIKI
    from repro.repair.replay import ReplayConfig

    cell_deployment = WikiDeployment(n_users=2)
    attacker = cell_deployment.login("attacker")
    attacker.open(f"{WIKI}/special_block.php?ip=6.6.6.6")
    attacker.type_into(
        "input[name=reason]",
        "<script>var u = doc_text('#username');"
        f"http_post('{WIKI}/edit.php',"
        " {'title': u + '_notes', 'append': 'xss-append-text'});</script>",
    )
    attacker.click("input[name=report]")
    victim = cell_deployment.users[0]
    cell_deployment.login(victim)
    cell_deployment.browser(victim).open(f"{WIKI}/special_block.php?ip=6.6.6.6")
    assert "xss-append-text" in cell_deployment.wiki.page_text(f"{victim}_notes")
    cell_deployment.append_to_page(victim, f"{victim}_notes", "\nmy-own-words")
    cell_deployment.patch("stored-xss")
    text = cell_deployment.wiki.page_text(f"{victim}_notes")
    assert "xss-append-text" not in text
    assert "my-own-words" in text
