"""Property test: indexed lookups == naive linear-scan reference.

A seeded-random workload of runs, visits and queries (interleaved with
mutations: replace_run, gc, quota enforcement) is applied to both the
indexed :class:`RecordStore` and a deliberately naive reference that
answers every question by scanning everything.  Every supported lookup
must return exactly the same records.
"""

import random

from repro.ahg.records import AppRunRecord, QueryRecord, VisitRecord
from repro.http.message import HttpRequest, HttpResponse
from repro.store.recordstore import RecordStore
from repro.ttdb.partitions import ReadSet

TABLES = ("pages", "acl", "users")
TITLES = ("A", "B", "C", "D", "E")
FILES = ("index.php", "edit.php", "login.php", "common.php")
CLIENTS = ("c1", "c2", "c3")


class NaiveReference:
    """The seed implementation's semantics, as plain linear scans."""

    def __init__(self):
        self.runs = []
        self.visits = {}
        self.visit_order = []

    def add_run(self, run):
        self.runs.append(run)

    def add_visit(self, visit):
        self.visits[(visit.client_id, visit.visit_id)] = visit
        self.visit_order.append((visit.client_id, visit.visit_id))

    def replace_run(self, run_id, record):
        for index, run in enumerate(self.runs):
            if run.run_id == run_id:
                self.runs[index] = record
                return

    def gc(self, horizon_ts):
        self.runs = [r for r in self.runs if r.ts_end >= horizon_ts]
        live = {(r.client_id, r.visit_id) for r in self.runs}
        for key in list(self.visits):
            if self.visits[key].ts < horizon_ts and key not in live:
                del self.visits[key]
                self.visit_order.remove(key)

    def enforce_client_quota(self, max_visits):
        for client in {c for c, _ in self.visits}:
            ids = [v for c, v in self.visit_order if c == client and (c, v) in self.visits]
            excess = len(ids) - max_visits
            if excess <= 0:
                continue
            victims = sorted(ids, key=lambda v: self.visits[(client, v)].ts)[:excess]
            for visit_id in victims:
                del self.visits[(client, visit_id)]
                self.visit_order.remove((client, visit_id))

    # -- lookups ---------------------------------------------------------------

    def runs_of_visit(self, client_id, visit_id):
        return [
            r for r in self.runs if r.client_id == client_id and r.visit_id == visit_id
        ]

    def client_runs(self, client_id):
        return [r for r in self.runs if r.client_id == client_id]

    def child_visits(self, client_id, visit_id):
        return [
            self.visits[(c, v)]
            for c, v in self.visit_order
            if c == client_id and self.visits[(c, v)].parent_visit == visit_id
        ]

    def runs_loading_file(self, file, since_ts):
        return [r for r in self.runs if r.ts_end >= since_ts and file in r.loaded_files]

    def run_for_request(self, client_id, visit_id, request_id):
        # Correlation triples are unique in real traffic; on (artificial)
        # duplicates the store's map semantics are last-write-wins.
        for run in reversed(self.runs):
            if (run.client_id, run.visit_id, run.request_id) == (
                client_id,
                visit_id,
                request_id,
            ):
                return run
        return None

    def client_visits(self, client_id):
        return [
            self.visits[(c, v)] for c, v in self.visit_order if c == client_id
        ]

    def queries_touching(self, table, keys, since_ts, whole_table=False):
        keys = set(keys)
        out = []
        for run in self.runs:
            for query in run.queries:
                if query.table != table or query.ts <= since_ts:
                    continue
                if whole_table:
                    out.append(query)
                    continue
                if query.read_set.is_all or query.full_table_write:
                    out.append(query)
                    continue
                touched = set(query.written_partitions)
                touched |= {(table,) + tuple(k) for k in query.read_set.keys()}
                if touched & keys:
                    out.append(query)
        out.sort(key=lambda q: q.ts)
        return out


def random_query(rng, qid, run_id, ts):
    table = rng.choice(TABLES)
    if rng.random() < 0.15:
        read_set = ReadSet(table, disjuncts=None)
    else:
        reads = rng.sample(TITLES, rng.randint(0, 2))
        read_set = ReadSet(
            table, disjuncts=tuple(frozenset({("title", r)}) for r in reads)
        )
    writes = rng.sample(range(1, 8), rng.randint(0, 2))
    return QueryRecord(
        qid=qid,
        run_id=run_id,
        seq=0,
        ts=ts,
        sql="SELECT 1",
        params=(),
        kind="update" if writes else "select",
        table=table,
        read_set=read_set,
        written_row_ids=tuple((table, w) for w in writes),
        written_partitions=frozenset((table, "title", rng.choice(TITLES)) for _ in writes),
        full_table_write=rng.random() < 0.05,
        snapshot=("select", True, ()),
    )


def random_run(rng, run_id, ts, next_qid, request_counters):
    client = rng.choice(CLIENTS) if rng.random() < 0.8 else None
    visit = rng.randint(1, 6) if client else None
    request = None
    if client is not None:
        # Correlation triples are unique in real traffic (request ids are
        # allocated monotonically per visit).
        request_counters[(client, visit)] = request_counters.get((client, visit), 0) + 1
        request = request_counters[(client, visit)]
    files = dict.fromkeys(rng.sample(FILES, rng.randint(1, 3)), 0)
    run = AppRunRecord(
        run_id=run_id,
        ts_start=ts,
        ts_end=ts + rng.randint(1, 3),
        script="page.php",
        loaded_files=files,
        request=HttpRequest("GET", "/page.php"),
        response=HttpResponse(body="x"),
        client_id=client,
        visit_id=visit,
        request_id=request,
    )
    n_queries = rng.randint(0, 3)
    run.queries = [
        random_query(rng, next_qid + i, run_id, ts + i) for i in range(n_queries)
    ]
    return run, next_qid + n_queries


def assert_same_lookups(rng, store, naive):
    for client in CLIENTS:
        for visit in range(1, 7):
            assert [r.run_id for r in store.runs_of_visit(client, visit)] == [
                r.run_id for r in naive.runs_of_visit(client, visit)
            ]
            for request in range(1, 13):
                a = store.run_for_request(client, visit, request)
                b = naive.run_for_request(client, visit, request)
                assert (a.run_id if a else None) == (b.run_id if b else None)
        assert [v.visit_id for v in store.client_visits(client)] == [
            v.visit_id for v in naive.client_visits(client)
        ]
        assert [r.run_id for r in store.client_runs(client)] == [
            r.run_id for r in naive.client_runs(client)
        ]
        for parent in range(1, 7):
            assert [v.visit_id for v in store.child_visits(client, parent)] == [
                v.visit_id for v in naive.child_visits(client, parent)
            ]
    for file in FILES:
        for since in (0, rng.randint(0, 120)):
            assert sorted(r.run_id for r in store.runs_loading_file(file, since)) == sorted(
                r.run_id for r in naive.runs_loading_file(file, since)
            ), f"runs_loading_file({file}, {since})"
    for table in TABLES:
        keys = {
            (table, "title", title) for title in rng.sample(TITLES, rng.randint(0, 3))
        }
        for since in (0, rng.randint(0, 120)):
            for whole in (False, True):
                got = store.queries_touching(table, keys, since, whole_table=whole)
                want = naive.queries_touching(table, keys, since, whole_table=whole)
                assert {q.qid for q in got} == {
                    q.qid for q in want
                }, f"queries_touching({table}, {keys}, {since}, {whole})"
                assert [q.ts for q in got] == sorted(q.ts for q in got)


def test_indexed_lookups_match_naive_reference():
    for seed in range(5):
        rng = random.Random(1000 + seed)
        store = RecordStore()
        naive = NaiveReference()
        ts = 0
        next_run_id = 1
        next_qid = 1
        request_counters = {}
        for step in range(120):
            ts += rng.randint(1, 3)
            action = rng.random()
            if action < 0.55:
                run, next_qid = random_run(rng, next_run_id, ts, next_qid, request_counters)
                next_run_id += 1
                store.add_run(run)
                naive.add_run(run)
            elif action < 0.80:
                client = rng.choice(CLIENTS)
                visit_id = rng.randint(1, 6)
                if (client, visit_id) not in store.visits:
                    parent = rng.randint(1, 6) if rng.random() < 0.5 else None
                    if parent == visit_id:
                        parent = None
                    visit = VisitRecord(
                        client, visit_id, ts=ts, url="/x", parent_visit=parent
                    )
                    store.add_visit(visit)
                    naive.add_visit(visit)
            elif action < 0.88 and store.runs:
                victim = rng.choice(sorted(store.runs))
                old = store.runs[victim]
                replacement, next_qid = random_run(
                    rng, victim, old.ts_start, next_qid, request_counters
                )
                replacement.ts_end = max(old.ts_end, replacement.ts_end)
                replacement.client_id = old.client_id
                replacement.visit_id = old.visit_id
                replacement.request_id = old.request_id
                store.replace_run(victim, replacement)
                store.invalidate_partition_indexes()
                naive.replace_run(victim, replacement)
            elif action < 0.94:
                horizon = rng.randint(0, ts)
                store.gc(horizon)
                naive.gc(horizon)
            else:
                quota = rng.randint(1, 4)
                store.enforce_client_quota(quota)
                naive.enforce_client_quota(quota)
            if step % 20 == 19:
                assert_same_lookups(rng, store, naive)
        assert_same_lookups(rng, store, naive)
