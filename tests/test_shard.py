"""Multi-process sharding (repro.shard): routing, wire, planning,
fan-out repair, and the single-process equivalence acceptance.

The equivalence property (ISSUE 9 acceptance): a cross-shard attack
repaired by the coordinator's fan-out recovers every tenant's ground
truth **identically** to the same workload + attack + repair run on one
unsharded WarpSystem.  Both arms replay the exact same request sequence
(deterministic per seed), so any divergence is the sharding layer's
fault, not the workload's.
"""

import json
import random

import pytest

from repro.http.message import HttpRequest
from repro.repair.api import CancelClientSpec, RepairBatch, parse_spec
from repro.repair.stats import merge_stats_dicts
from repro.shard import (
    LocalShardClient,
    RoutingTable,
    ShardCluster,
    ShardConfig,
    ShardWorker,
    default_route_key,
)
from repro.shard.plan import merge_touch_summaries
from repro.shard.routing import SHARD_HEADER, TENANT_HEADER
from repro.shard.wire import ShardWireError
from repro.warp import WarpSystem

# Tenant numbers chosen so crc32 spreads them over 2 shards: 0,1 -> one
# shard, 4,5 -> the other (see RoutingTable.shard_of).
TENANTS = [0, 1, 4, 5]
ATTACKER = "mallory"


# ---------------------------------------------------------------------------
# driving helpers
# ---------------------------------------------------------------------------


class Session:
    """Cookie-jar session against any .handle(request) facade."""

    def __init__(self, name, target):
        self.name = name
        self.target = target
        self.cookies = {}

    def send(self, method, path, tenant=None, **params):
        headers = {"X-Warp-Client": f"{self.name}-c"}
        if tenant is not None:
            headers[TENANT_HEADER] = f"tenant{tenant}"
        request = HttpRequest(
            method, path, params=params, cookies=dict(self.cookies), headers=headers
        )
        response = self.target.handle(request)
        for key, value in response.set_cookies.items():
            if value is None:
                self.cookies.pop(key, None)
            else:
                self.cookies[key] = value
        return response

    def login(self, tenant, user=None):
        user = user or self.name
        self.cookies = {}
        response = self.send(
            "POST", "/login.php", tenant, wpName=user, wpPassword=f"pw-{user}"
        )
        assert response.status == 200, response.body
        return response


def page_text(target, tenant):
    request = HttpRequest(
        "GET",
        "/index.php",
        params={"title": f"tenant{tenant}_wiki"},
        headers={TENANT_HEADER: f"tenant{tenant}"},
    )
    return target.handle(request).body


def generate_workload(seed, tenants=TENANTS, edits_per_user=2):
    """Deterministic request plan: per tenant, each user logs in and
    appends; the attacker then logs into every tenant and defaces it.
    Each client's stream visits tenants in contiguous blocks (one login
    per block), so the single cookie jar never straddles two shards."""
    rng = random.Random(seed)
    plan = []  # (client, "login"|"edit", tenant, text)
    for tenant in tenants:
        for index in (1, 2):
            user = f"t{tenant}_user{index}"
            plan.append((user, "login", tenant, None))
            for edit in range(edits_per_user):
                plan.append(
                    (user, "edit", tenant, f"edit-{user}-{rng.randrange(1000)}")
                )
    for tenant in rng.sample(tenants, len(tenants)):
        plan.append((ATTACKER, "login", tenant, None))
        plan.append((ATTACKER, "edit", tenant, f"DEFACED-t{tenant}"))
    return plan


def apply_workload(target, plan):
    sessions = {}
    for client, op, tenant, text in plan:
        session = sessions.setdefault(client, Session(client, target))
        if op == "login":
            session.login(tenant)
        else:
            response = session.send(
                "POST",
                "/edit.php",
                tenant,
                title=f"tenant{tenant}_wiki",
                append=f"\n{text}",
            )
            assert response.status == 200, response.body


def single_process_system():
    """The unsharded reference arm: one WarpSystem hosting every tenant,
    seeded through the same factory the workers use."""
    from repro.shard.bootstrap import wiki_tenants

    warp = WarpSystem()
    wiki = wiki_tenants(
        warp,
        True,
        {"tenants": TENANTS, "users_per_tenant": 2, "shared_users": [ATTACKER]},
    )
    return warp, wiki


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------


class TestRouting:
    def test_mapping_is_stable_and_in_range(self):
        table = RoutingTable(4)
        for key in ("tenant0", "alice-c", "/index.php", "tenant123_wiki"):
            shard = table.shard_of(key)
            assert 0 <= shard < 4
            assert table.shard_of(key) == shard  # stable

    def test_pins_override_and_validate(self):
        table = RoutingTable(2, pins={"hot": 1})
        assert table.shard_of("hot") == 1
        table.pin("hot", 0)
        assert table.shard_of("hot") == 0
        with pytest.raises(ValueError):
            table.pin("x", 2)
        with pytest.raises(ValueError):
            RoutingTable(0)

    def test_round_trips_through_json(self):
        table = RoutingTable(3, pins={"a": 2})
        twin = RoutingTable.from_dict(json.loads(json.dumps(table.to_dict())))
        assert twin.n_shards == 3 and twin.shard_of("a") == 2

    def test_route_key_precedence(self):
        # tenant header > tenant/title param > client id > path
        def key(headers=None, params=None):
            return default_route_key(
                HttpRequest("GET", "/p", params=params or {}, headers=headers or {})
            )

        assert key({TENANT_HEADER: "tenant7"}, {"title": "x"}) == "tenant7"
        assert key(params={"title": "pageX"}) == "pageX"
        assert key({"X-Warp-Client": "c9"}) == "c9"
        assert key() == "/p"

    def test_cluster_pins_title_and_header_keys_together(self, tmp_path):
        cluster = ShardCluster(
            2, str(tmp_path), transport="local", tenants=TENANTS
        )
        try:
            for tenant in TENANTS:
                assert cluster.routing.shard_of(
                    f"tenant{tenant}"
                ) == cluster.routing.shard_of(f"tenant{tenant}_wiki")
            placed = set(cluster.tenant_shards.values())
            assert placed == {0, 1}  # the chosen tenants really spread
        finally:
            cluster.close()


# ---------------------------------------------------------------------------
# wire + worker
# ---------------------------------------------------------------------------


class TestWireAndWorker:
    def make_worker(self, tmp_path, shard_id=0, tenants=(0,)):
        return ShardWorker(
            ShardConfig(
                shard_id=shard_id,
                data_dir=str(tmp_path),
                app_args={"tenants": list(tenants), "shared_users": [ATTACKER]},
            )
        )

    def test_frames_round_trip_json(self, tmp_path):
        worker = self.make_worker(tmp_path)
        client = LocalShardClient(worker)
        ping = client.ping()
        assert ping["ok"] and ping["shard"] == 0
        response = client.request(
            HttpRequest(
                "GET",
                "/index.php",
                params={"title": "tenant0_wiki"},
                headers={TENANT_HEADER: "tenant0"},
            )
        )
        assert response.status == 200
        assert "tenant 0" in response.body

    def test_unknown_op_and_handler_errors_stay_on_the_wire(self, tmp_path):
        worker = self.make_worker(tmp_path)
        client = LocalShardClient(worker)
        assert not worker.handle_frame({"op": "nope"})["ok"]
        assert not worker.handle_frame({"op": "http"})["ok"]
        # A handler exception becomes an error reply, not a dead worker.
        worker.warp.server.routes.clear()
        del worker.warp.server.routes  # force an attribute error inside handle

        with pytest.raises(ShardWireError):
            client.request(HttpRequest("GET", "/index.php"))
        assert client.ping()["ok"]  # still serving

    def test_misrouted_request_answers_421(self, tmp_path):
        worker = self.make_worker(tmp_path, shard_id=1)
        client = LocalShardClient(worker)
        wrong = HttpRequest(
            "GET",
            "/index.php",
            params={"title": "tenant0_wiki"},
            headers={SHARD_HEADER: "0"},
        )
        response = client.request(wrong)
        assert response.status == 421
        assert response.headers[SHARD_HEADER] == "1"
        right = HttpRequest(
            "GET",
            "/index.php",
            params={"title": "tenant0_wiki"},
            headers={SHARD_HEADER: "1"},
        )
        assert client.request(right).status == 200

    def test_worker_reload_keeps_data(self, tmp_path):
        worker = self.make_worker(tmp_path)
        client = LocalShardClient(worker)
        session = Session("t0_user1", worker)
        session.login(0)
        session.send(
            "POST", "/edit.php", 0, title="tenant0_wiki", append="\npersisted"
        )
        status, payload = client.admin_json("POST", "/warp/admin/shard/save")
        assert status == 200 and payload["saved"].endswith("snapshot.json")
        worker.close()

        reborn = self.make_worker(tmp_path)
        assert "persisted" in page_text(reborn, 0)
        assert reborn.warp.shard_id == 0
        status, info = LocalShardClient(reborn).admin_json(
            "GET", "/warp/admin/shard/info"
        )
        assert status == 200 and info["shard_id"] == 0


# ---------------------------------------------------------------------------
# touch summaries + union planning
# ---------------------------------------------------------------------------


class TestPlanning:
    def test_touch_summary_shape(self, tmp_path):
        worker = TestWireAndWorker().make_worker(tmp_path)
        session = Session("t0_user1", worker)
        session.login(0)
        session.send("POST", "/edit.php", 0, title="tenant0_wiki", append="\nhi")
        summary = worker.warp.graph.store.touch_summary()
        json.dumps(summary)  # must be wire-safe
        assert summary["n_runs"] >= 2
        entry = summary["clients"]["t0_user1-c"]
        assert entry["runs"] >= 2
        assert ["pagecontent", "title", "tenant0_wiki"] in entry["writes"]
        assert entry["tables_written"]

    def test_union_joins_shards_only_through_shared_clients(self):
        summaries = {
            0: {
                "clients": {
                    "mallory-c": {
                        "runs": 2,
                        "writes": [["pagecontent", "title", "p0"]],
                        "reads": [["pagecontent", "title", "p0"]],
                        "all_reads": [],
                        "full_writes": [],
                        "tables_written": ["pagecontent"],
                    },
                    "alice-c": {
                        "runs": 1,
                        "writes": [],
                        "reads": [["pagecontent", "title", "p0"]],
                        "all_reads": [],
                        "full_writes": [],
                        "tables_written": [],
                    },
                }
            },
            1: {
                "clients": {
                    "mallory-c": {
                        "runs": 1,
                        "writes": [["pagecontent", "title", "p1"]],
                        "reads": [],
                        "all_reads": [],
                        "full_writes": [],
                        "tables_written": ["pagecontent"],
                    },
                    "bob-c": {
                        "runs": 1,
                        "writes": [["pagecontent", "title", "q1"]],
                        "reads": [],
                        "all_reads": [],
                        "full_writes": [],
                        "tables_written": ["pagecontent"],
                    },
                }
            },
        }
        plan = merge_touch_summaries(summaries)
        by_clients = {tuple(c["clients"]): c for c in plan["clusters"]}
        # alice read what mallory wrote on shard 0; mallory also wrote on
        # shard 1 -> one cluster spanning both shards.
        joined = by_clients[("alice-c", "mallory-c")]
        assert joined["shards"] == [0, 1]
        # bob wrote an unrelated key on shard 1: independent cluster.
        assert by_clients[("bob-c",)]["shards"] == [1]
        assert plan["handoffs"] == [{"client": "mallory-c", "shards": [0, 1]}]

    def test_pure_readers_of_the_same_key_stay_independent(self):
        reader = {
            "runs": 1,
            "writes": [],
            "reads": [["pagecontent", "title", "p"]],
            "all_reads": [],
            "full_writes": [],
            "tables_written": [],
        }
        plan = merge_touch_summaries(
            {0: {"clients": {"r1-c": dict(reader), "r2-c": dict(reader)}}}
        )
        assert len(plan["clusters"]) == 2  # no writer, no edge

    def test_all_reader_joins_table_writers(self):
        summaries = {
            0: {
                "clients": {
                    "writer-c": {
                        "runs": 1,
                        "writes": [["pagecontent", "title", "p"]],
                        "reads": [],
                        "all_reads": [],
                        "full_writes": [],
                        "tables_written": ["pagecontent"],
                    },
                    "counter-c": {
                        "runs": 1,
                        "writes": [],
                        "reads": [],
                        "all_reads": ["pagecontent"],
                        "full_writes": [],
                        "tables_written": [],
                    },
                }
            }
        }
        plan = merge_touch_summaries(summaries)
        assert len(plan["clusters"]) == 1
        assert plan["clusters"][0]["clients"] == ["counter-c", "writer-c"]

    def test_merge_stats_sums_and_tags_origin(self):
        a = {"runs_canceled": 2, "conflicts": 1, "groups": [{"runs": 2}],
             "gate": {"queued": 3}, "breakdown": {"total": 1.0}}
        b = {"runs_canceled": 1, "conflicts": 0, "groups": [],
             "gate": {}, "breakdown": {"total": 0.5}}
        merged = merge_stats_dicts({0: a, 1: b})
        assert merged["runs_canceled"] == 3
        assert merged["conflicts"] == 1
        assert merged["groups"] == [{"runs": 2, "shard": 0}]
        assert merged["gate"] == {"shard0.queued": 3}
        assert merged["breakdown"]["total"] == 1.5
        assert merged["per_shard"] == [0, 1]


# ---------------------------------------------------------------------------
# coordinator behavior over a live local cluster
# ---------------------------------------------------------------------------


@pytest.fixture
def cluster(tmp_path):
    cluster = ShardCluster(
        2,
        str(tmp_path),
        transport="local",
        tenants=TENANTS,
        shared_users=[ATTACKER],
    )
    yield cluster
    cluster.close()


def deface(cluster, tenants=TENANTS):
    attacker = Session(ATTACKER, cluster)
    for tenant in tenants:
        attacker.login(tenant)
        attacker.send(
            "POST",
            "/edit.php",
            tenant,
            title=f"tenant{tenant}_wiki",
            append=f"\nDEFACED-t{tenant}",
        )


class TestCoordinator:
    def test_routes_by_tenant_and_stamps_shard(self, cluster):
        apply_workload(cluster, generate_workload(3))
        # Tenants landed on the shard the routing table says, and only
        # there (disjoint databases).
        for tenant in TENANTS:
            home = cluster.tenant_shards[tenant]
            for shard, worker in enumerate(cluster.workers):
                text = worker.app.page_text(f"tenant{tenant}_wiki")
                if shard == home:
                    assert text is not None
                else:
                    assert text is None

    def test_admin_forwarding_needs_explicit_shard(self, cluster):
        response = cluster.handle(HttpRequest("GET", "/warp/admin/repair"))
        assert response.status == 400
        response = cluster.handle(
            HttpRequest("GET", "/warp/admin/repair", params={"shard": "1"})
        )
        assert response.status == 200
        assert json.loads(response.body)["jobs"] == []
        response = cluster.handle(
            HttpRequest("GET", "/warp/admin/repair", params={"shard": "9"})
        )
        assert response.status == 404

    def test_worker_shard_routes_reachable_through_coordinator(self, cluster):
        # The workers mount /warp/admin/shard/{info,touch-summary} under
        # the same prefix as the coordinator's own views; an explicit
        # shard parameter must reach the worker, not 404 in the shadow.
        for shard in (0, 1):
            response = cluster.handle(
                HttpRequest(
                    "GET", "/warp/admin/shard/info", params={"shard": str(shard)}
                )
            )
            assert response.status == 200, response.body
            info = json.loads(response.body)
            assert info["shard_id"] == shard and info["pid"] > 0
        response = cluster.handle(
            HttpRequest(
                "GET", "/warp/admin/shard/touch-summary", params={"shard": "0"}
            )
        )
        assert response.status == 200
        assert "clients" in json.loads(response.body)
        # Without the parameter the coordinator's own 404 still applies.
        response = cluster.handle(HttpRequest("GET", "/warp/admin/shard/info"))
        assert response.status == 404

    def test_status_reports_every_shard(self, cluster):
        response = cluster.handle(HttpRequest("GET", "/warp/admin/shard/status"))
        doc = json.loads(response.body)
        assert doc["n_shards"] == 2
        assert set(doc["shards"]) == {"0", "1"}
        assert all(ping["ok"] for ping in doc["shards"].values())

    def test_plan_targets_only_damaged_shards(self, cluster):
        apply_workload(cluster, generate_workload(5))
        spec = CancelClientSpec(client_id=f"{ATTACKER}-c")
        plan = cluster.coordinator.plan(spec)
        assert plan["targets"] == [0, 1]
        assert plan["handoffs"] == [
            {"client": f"{ATTACKER}-c", "shards": [0, 1]}
        ]
        # A client confined to one shard targets one shard.
        one = cluster.coordinator.plan(CancelClientSpec(client_id="t0_user1-c"))
        assert one["targets"] == [cluster.tenant_shards[0]]

    def test_fanout_repairs_every_shard(self, cluster):
        apply_workload(cluster, generate_workload(7))
        result = cluster.coordinator.repair(
            CancelClientSpec(client_id=f"{ATTACKER}-c")
        )
        assert result.ok and result.status == "done"
        assert sorted(result.per_shard) == [0, 1]
        assert result.stats["runs_canceled"] > 0
        for tenant in TENANTS:
            assert "DEFACED" not in page_text(cluster, tenant)
        # The dispatch rode the ordinary jobs API: one job per shard.
        for shard in (0, 1):
            response = cluster.handle(
                HttpRequest(
                    "GET", "/warp/admin/repair", params={"shard": str(shard)}
                )
            )
            assert len(json.loads(response.body)["jobs"]) == 1

    def test_clean_spec_dispatches_nothing(self, cluster):
        apply_workload(cluster, generate_workload(9))
        result = cluster.coordinator.repair(
            CancelClientSpec(client_id="nobody-c")
        )
        assert result.ok and result.per_shard == {}

    def test_malformed_spec_is_a_400_through_the_coordinator(self, cluster):
        for raw in ('{"kind": "nope"}', "[1,2]", '{"kind": 3}'):
            response = cluster.handle(
                HttpRequest(
                    "POST", "/warp/admin/shard/repair", params={"spec": raw}
                )
            )
            assert response.status == 400, raw
            assert "error" in json.loads(response.body)

    def test_async_repair_endpoint(self, cluster):
        apply_workload(cluster, generate_workload(11))
        spec = json.dumps(CancelClientSpec(client_id=f"{ATTACKER}-c").to_dict())
        response = cluster.handle(
            HttpRequest("POST", "/warp/admin/shard/repair", params={"spec": spec})
        )
        assert response.status == 202
        dist_id = json.loads(response.body)["dist_id"]
        cluster.coordinator._async_threads[dist_id].join(timeout=60)
        response = cluster.handle(
            HttpRequest("GET", f"/warp/admin/shard/repair/{dist_id}")
        )
        doc = json.loads(response.body)
        assert doc["status"] == "done" and doc["ok"]


# ---------------------------------------------------------------------------
# the acceptance property: sharded == single-process, per seed
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
def test_cross_shard_repair_matches_single_process(seed, tmp_path):
    plan = generate_workload(seed, edits_per_user=2)
    spec = CancelClientSpec(client_id=f"{ATTACKER}-c")

    # Arm 1: one unsharded system.
    warp, wiki = single_process_system()
    apply_workload(warp.server, plan)
    single_result = warp.repair.submit(spec).result(timeout=60)
    assert single_result.ok
    single_pages = {t: wiki.page_text(f"tenant{t}_wiki") for t in TENANTS}

    # Arm 2: the same requests through a 2-shard cluster.
    cluster = ShardCluster(
        2, str(tmp_path), transport="local", tenants=TENANTS,
        shared_users=[ATTACKER],
    )
    try:
        apply_workload(cluster, plan)
        dist = cluster.coordinator.repair(spec)
        assert dist.ok, dist.to_dict()
        for tenant in TENANTS:
            home = cluster.tenant_shards[tenant]
            sharded = cluster.workers[home].app.page_text(f"tenant{tenant}_wiki")
            assert sharded == single_pages[tenant], (
                f"seed {seed} tenant {tenant}: sharded repair diverged"
            )
            assert "DEFACED" not in (sharded or "")
        assert dist.stats["runs_canceled"] == single_result.stats.runs_canceled
    finally:
        cluster.close()


# ---------------------------------------------------------------------------
# real processes (spawn) — one smoke, kept small
# ---------------------------------------------------------------------------


def test_process_transport_end_to_end(tmp_path):
    cluster = ShardCluster(
        2,
        str(tmp_path),
        transport="proc",
        tenants=[0, 4],
        shared_users=[ATTACKER],
        pool_workers=2,
    )
    try:
        pings = {shard: client.ping() for shard, client in cluster.clients.items()}
        pids = {ping["pid"] for ping in pings.values()}
        assert len(pids) == 2  # really two processes
        assert all(ping["ok"] for ping in pings.values())

        deface(cluster, tenants=[0, 4])
        result = cluster.coordinator.repair(
            CancelClientSpec(client_id=f"{ATTACKER}-c")
        )
        assert result.ok
        assert sorted(result.per_shard) == [0, 1]
        for tenant in (0, 4):
            assert "DEFACED" not in page_text(cluster, tenant)
    finally:
        cluster.close()
