"""WarpSystem: one fully wired WARP deployment.

Bundles the clock, time-travel database, action history graph, script
store, application runtime, logged HTTP server, simulated network, and the
conflict queue; exposes the two repair entry points (retroactive patching
and visit cancellation) plus client-browser construction.

This is the public API a downstream user programs against::

    warp = WarpSystem()
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    alice = warp.client("alice-laptop")
    alice.open("http://wiki.test/index.php?title=Main_Page")
    ...
    result = warp.retroactive_patch("login.php", patched_exports)
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.ahg.graph import ActionHistoryGraph
from repro.appserver.runtime import AppRuntime
from repro.appserver.scripts import ScriptStore
from repro.browser.browser import Browser, Network
from repro.browser.extension import WarpExtension
from repro.core.clock import LogicalClock
from repro.core.ids import IdAllocator, random_token
from repro.db.storage import Database
from repro.http.server import HttpServer
from repro.repair.conflicts import Conflict, ConflictQueue
from repro.repair.controller import RepairController, RepairResult
from repro.repair.replay import ReplayConfig
from repro.ttdb.timetravel import TimeTravelDB


class WarpSystem:
    """A complete WARP deployment around one web application server."""

    def __init__(
        self,
        origin: str = "http://wiki.test",
        seed: int = 0,
        enabled: bool = True,
        replay_config: Optional[ReplayConfig] = None,
    ) -> None:
        self.origin = origin
        self.enabled = enabled
        self.clock = LogicalClock()
        self.ids = IdAllocator()
        self.rng = random.Random(seed)

        self.database = Database()
        self.ttdb = TimeTravelDB(self.database, self.clock, enabled=enabled)
        self.graph = ActionHistoryGraph()
        self.scripts = ScriptStore()
        self.runtime = AppRuntime(
            self.scripts, self.ttdb, self.clock, self.ids, rng=self.rng
        )
        self.runtime.recording = enabled
        self.server = HttpServer(self.runtime, self.graph, origin=origin)
        self.server.recording = enabled
        self.network = Network()
        self.network.register(origin, self.server.handle)
        self.conflicts = ConflictQueue()
        self.server.conflict_lookup = self.conflicts.pending_count
        self.replay_config = replay_config if replay_config is not None else ReplayConfig()
        self.last_repair: Optional[RepairResult] = None

    # -- clients -----------------------------------------------------------------

    def client(
        self,
        name: Optional[str] = None,
        extension: bool = True,
        upload: bool = True,
    ) -> Browser:
        """A user's browser.  ``extension=False`` models a user without the
        WARP extension; ``upload=False`` models one whose extension attaches
        correlation headers but uploads no event logs (Table 4 ablations)."""
        if not extension:
            return Browser(self.network)
        client_id = name if name is not None else random_token(self.rng)
        ext = WarpExtension(client_id, self.graph, self.clock, upload=upload)
        return Browser(self.network, extension=ext)

    def register_site(self, origin: str, handler: Callable) -> None:
        """Add a third-party site (e.g. the attacker's) to the network."""
        self.network.register(origin, handler)

    # -- repair ------------------------------------------------------------------

    def _controller(self) -> RepairController:
        return RepairController(
            ttdb=self.ttdb,
            graph=self.graph,
            scripts=self.scripts,
            runtime=self.runtime,
            server=self.server,
            network=self.network,
            conflicts=self.conflicts,
            clock=self.clock,
            ids=self.ids,
            replay_config=self.replay_config,
        )

    def retroactive_patch(
        self, file: str, exports: Dict, apply_ts: int = 0
    ) -> RepairResult:
        """Retroactively apply a security patch (paper §3)."""
        controller = self._controller()
        self.last_repair = controller.retroactive_patch(file, exports, apply_ts)
        return self.last_repair

    def cancel_visit(
        self,
        client_id: str,
        visit_id: int,
        initiated_by_admin: bool = True,
        allow_conflicts: bool = False,
    ) -> RepairResult:
        """Undo a past page visit (paper §5.5)."""
        controller = self._controller()
        self.last_repair = controller.cancel_visit(
            client_id, visit_id, initiated_by_admin, allow_conflicts
        )
        return self.last_repair

    def cancel_client(self, client_id: str) -> RepairResult:
        """Undo every recorded action of one client (paper §2)."""
        controller = self._controller()
        self.last_repair = controller.cancel_client(client_id)
        return self.last_repair

    def retroactive_db_fix(
        self, sql: str, params: tuple, ts: int
    ) -> RepairResult:
        """Fix past database state (e.g. retroactively change a leaked
        password) and repair everything that depended on it (paper §2)."""
        controller = self._controller()
        self.last_repair = controller.retroactive_db_fix(sql, tuple(params), ts)
        return self.last_repair

    def resolve_conflict_by_cancel(self, conflict: Conflict) -> RepairResult:
        """The paper's conflict-resolution UI: cancel the conflicted visit.

        Allowed to cascade conflicts to other users because it resolves a
        conflict already reported to this user (§5.5)."""
        result = self.cancel_visit(
            conflict.client_id,
            conflict.visit_id,
            initiated_by_admin=False,
            allow_conflicts=True,
        )
        self.conflicts.resolve(conflict)
        return result
