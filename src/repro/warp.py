"""WarpSystem: one fully wired WARP deployment.

Bundles the clock, time-travel database, action history graph, script
store, application runtime, logged HTTP server, simulated network, and the
conflict queue; exposes the repair surface plus client-browser
construction.

This is the public API a downstream user programs against::

    warp = WarpSystem()
    wiki = WikiApp(warp.ttdb, warp.scripts, warp.server)
    wiki.install()
    alice = warp.client("alice-laptop")
    alice.open("http://wiki.test/index.php?title=Main_Page")
    ...
    # Repair API v2 (see API.md): declarative specs, async jobs,
    # dry-run previews, batched multi-intrusion repair.
    plan = warp.repair.preview(PatchSpec("login.php", exports=patched))
    job = warp.repair.submit(PatchSpec("login.php", exports=patched))
    result = job.result()

The four v1 entry points (``retroactive_patch``, ``cancel_visit``,
``cancel_client``, ``retroactive_db_fix``) remain as deprecated blocking
wrappers over ``warp.repair.submit(spec).result()``.  The full v2
surface — spec JSON, job lifecycle, progress events, the
``/warp/admin/repair`` HTTP endpoints, and the deprecation policy — is
documented in API.md.
"""

from __future__ import annotations

import json
import os
import random
import threading
from typing import Callable, Dict, Optional, Tuple

from repro.ahg.graph import ActionHistoryGraph
from repro.appserver.runtime import AppRuntime
from repro.appserver.scripts import ScriptStore
from repro.browser.browser import Browser, Network
from repro.browser.extension import WarpExtension
from repro.core.clock import LogicalClock
from repro.core.ids import IdAllocator, random_token
from repro.db.engine import create_database, resolve_backend, snapshot_backend
from repro.http.cache import ResponseCache
from repro.http.server import HttpServer
from repro.repair.conflicts import Conflict, ConflictQueue
from repro.core.errors import DurabilityError, RepairError
from repro.core.serialize import decode_tree, encode_tree
from repro.faults.health import HealthMonitor
from repro.faults.plane import FaultPlane
from repro.faults.plane import active as _active_plane
from repro.http.message import HttpRequest, HttpResponse
from repro.repair.api import (
    CancelClientSpec,
    CancelVisitSpec,
    DbFixSpec,
    PatchSpec,
)
from repro.repair.controller import RepairController, RepairResult
from repro.repair.gate import RepairGate
from repro.repair.jobs import RepairJobManager
from repro.repair.replay import ReplayConfig
from repro.store.recordstore import RecordStore
from repro.store.wal import RecordWal, open_wal
from repro.ttdb.timetravel import TimeTravelDB


class WarpSystem:
    """A complete WARP deployment around one web application server."""

    def __init__(
        self,
        origin: str = "http://wiki.test",
        seed: int = 0,
        enabled: bool = True,
        replay_config: Optional[ReplayConfig] = None,
        wal_path: Optional[str] = None,
        cluster_mode: str = "sequential",
        online_gate: bool = False,
        gate_policy: str = "partition",
        admin_token: Optional[str] = None,
        durability: Optional[str] = None,
        wal_flush_interval: float = 0.002,
        wal_flush_max_entries: int = 128,
        wal_rotate_bytes: Optional[int] = None,
        wal_rotate_snapshot: Optional[str] = None,
        lock_mode: str = "striped",
        response_cache: bool = False,
        response_cache_entries: int = 1024,
        statement_cache: bool = True,
        fault_plane: Optional[FaultPlane] = None,
        repair_retry_limit: int = 2,
        db_backend: Optional[str] = None,
        db_path: Optional[str] = None,
    ) -> None:
        self.origin = origin
        self.enabled = enabled
        #: Deterministic fault injection (repro.faults): every instrumented
        #: layer in this deployment fires its fault points through this
        #: plane.  Defaults to the process-wide plane, which is inert
        #: unless a test arms rules on it.
        self.faults = fault_plane if fault_plane is not None else _active_plane()
        #: Bounded retry for repair jobs hitting transient faults
        #: (DurabilityError / OSError / injected errors); each retry
        #: re-runs the spec from scratch after the abort path unwound.
        self.repair_retry_limit = repair_retry_limit
        #: Serving-path configuration (API.md "High-throughput serving").
        #: ``durability=None`` defers to ``REPRO_WAL_DURABILITY``/"always".
        self.durability = durability
        self.wal_flush_interval = wal_flush_interval
        self.wal_flush_max_entries = wal_flush_max_entries
        self.wal_rotate_bytes = wal_rotate_bytes
        self._wal_options = {
            "durability": durability,
            "flush_interval": wal_flush_interval,
            "flush_max_entries": wal_flush_max_entries,
            "fault_plane": self.faults,
        }
        #: Repair-group scheduling: "sequential" (default), "parallel", or
        #: "off" (monolithic reference worklist); see repro.repair.clusters.
        self.cluster_mode = cluster_mode
        self.clock = LogicalClock()
        self.ids = IdAllocator()
        self.rng = random.Random(seed)

        if wal_path is not None and os.path.exists(wal_path):
            # Drop a torn never-acknowledged fragment first: a log holding
            # only that has no recoverable data and must not block a fresh
            # start (load() needs a snapshot, so it cannot help there).
            RecordWal.repair(wal_path)
            if os.path.getsize(wal_path):
                # A fresh system appending to a previous deployment's log
                # would interleave two histories; recovery is load()'s job.
                raise RepairError(
                    f"write-ahead log {wal_path!r} already contains entries — "
                    "recover with WarpSystem.load(snapshot_or_None, wal_path=...) "
                    "or remove the file"
                )
        #: Storage engine selection (repro.db.engine): explicit argument,
        #: then the ``REPRO_DB_BACKEND`` environment variable, then the
        #: in-memory engine.  ``db_path`` points the SQLite engine at a
        #: data directory (reattaching to existing group files); without
        #: it the engine is backed by a self-cleaning temporary directory.
        self.db_backend = resolve_backend(db_backend)
        self.db_path = db_path
        self.database = create_database(
            self.db_backend, path=db_path, fault_plane=self.faults
        )
        self.ttdb = TimeTravelDB(
            self.database, self.clock, enabled=enabled, fault_plane=self.faults
        )
        #: Read-through SELECT cache (repro.ttdb): on unless the deployment
        #: opts out (the pre-group-commit baseline in benchmarks does).
        self.statement_cache = statement_cache and enabled
        self.ttdb.use_statement_cache = self.statement_cache
        self.graph = ActionHistoryGraph(
            RecordStore(
                wal=open_wal(wal_path, **self._wal_options),
                lock_mode=lock_mode,
                fault_plane=self.faults,
            )
        )
        self.scripts = ScriptStore()
        self.runtime = AppRuntime(
            self.scripts, self.ttdb, self.clock, self.ids, rng=self.rng
        )
        self.runtime.recording = enabled
        self.server = HttpServer(self.runtime, self.graph, origin=origin)
        self.server.recording = enabled
        self.network = Network()
        self.network.register(origin, self.server.handle)
        self.conflicts = ConflictQueue()
        self.server.conflict_lookup = self.conflicts.pending_count
        self.response_cache: Optional[ResponseCache] = None
        if response_cache:
            self.response_cache = ResponseCache(
                self.runtime, self.graph, max_entries=response_cache_entries
            )
            self.response_cache.faults = self.faults
            self.server.response_cache = self.response_cache
            # Invalidation fires at write-commit time, inside the TTDB
            # statement lock (see repro.http.cache's concurrency contract).
            self.ttdb.write_hook = self.response_cache.on_write
        self._rotate_lock = threading.Lock()
        self._rotate_snapshot_path = wal_rotate_snapshot
        if wal_rotate_bytes is not None:
            self._arm_rotation(wal_path)
        self.replay_config = replay_config if replay_config is not None else ReplayConfig()
        self.last_repair: Optional[RepairResult] = None
        #: Repair API v2 (see API.md): ``warp.repair.submit(spec)`` /
        #: ``preview(spec)`` / ``register_patch(...)``; also the backing
        #: for the ``/warp/admin/repair`` HTTP endpoints.
        self.repair = RepairJobManager(self)
        self.server.admin_handler = self.repair.admin.handle
        self.server.admin_token = admin_token
        #: Degraded-mode state machine + ``/warp/admin/health`` payload
        #: (repro.faults.health).  The WAL reports durability failures to
        #: it directly so unwaited (flusher-committed) entries also flip
        #: serving read-only, not just acknowledged writes.
        self.health = HealthMonitor(self)
        self.server.health = self.health
        self._wire_wal_health()
        #: Optional bounded ServerPool serving this deployment; set by the
        #: operator/benches so the health endpoint can report pool depth.
        self.serving_pool = None
        #: Front-line detection (repro.detect), installed by
        #: :meth:`enable_detection`; inert (and zero-cost on the serve
        #: path) until then.
        self.detector = None
        self.incidents = None
        self.preview_refresher = None
        self.detection_refresh_interval: Optional[float] = None
        #: Script versions the persisted deployment had (set by ``load``);
        #: repair refuses to run until re-registered code catches up.
        self._expected_script_versions: Dict[str, int] = {}
        #: Shard identity (repro.shard): set by ``load_or_create_shard``
        #: when this system is one shard of a multi-process deployment.
        self.shard_id: Optional[int] = None
        self.shard_snapshot_path: Optional[str] = None
        if online_gate:
            self.enable_online_repair(policy=gate_policy)

    def _wire_wal_health(self) -> None:
        """Point the store's current WAL at the health monitor.  Called at
        construction and again after ``replay_wal`` replaces the WAL."""
        wal = self.graph.store.wal
        if wal is not None:
            wal.on_degrade = self.health.on_wal_degrade

    def _arm_rotation(self, wal_path: Optional[str]) -> None:
        """Install size-triggered WAL rotation: once the log grows past
        ``wal_rotate_bytes`` appended bytes, the next acknowledged mutation
        snapshots the whole system (which truncates the log) so reload
        never replays an unbounded WAL."""
        if self._rotate_snapshot_path is None:
            if wal_path is None:
                return
            self._rotate_snapshot_path = wal_path + ".snapshot.json"
        store = self.graph.store
        store.rotate_bytes = self.wal_rotate_bytes
        store.rotate_hook = self._rotate_wal

    def _rotate_wal(self) -> None:
        """Fired by the store after a mutation pushed the WAL past the
        rotation bound (outside every store lock).  Non-blocking: if a
        rotation is already running on another thread, or a repair is in
        progress (``save`` refuses then), this acknowledgement skips —
        the next one past the bound retries."""
        if not self._rotate_lock.acquire(blocking=False):
            return
        try:
            if self.ttdb.repair_gen is not None or self.server.repair_active:
                return
            try:
                self.save(self._rotate_snapshot_path)
            except (RepairError, DurabilityError, OSError):
                # A repair began between the check and the save, or the
                # snapshot could not be made durable (sick disk — the
                # health monitor handles the degradation); the next
                # acknowledged mutation retries the rotation.
                pass
        finally:
            self._rotate_lock.release()

    def enable_online_repair(self, policy: str = "partition") -> RepairGate:
        """Install the partition-scoped write gate (repro.repair.gate):
        while a repair runs, requests whose footprint is disjoint from the
        repair are served live and conflicting ones are queued (202) and
        re-applied exactly once after the generation switch.  ``policy``
        is ``"partition"`` or ``"global"`` (the conservative queue-all
        baseline).  Without this, repairs keep the legacy behavior: serve
        everything live and re-apply affected runs at finalize."""
        self.server.gate = RepairGate(self.ttdb, self.graph, policy=policy)
        self.server.gate.faults = self.faults
        return self.server.gate

    def enable_detection(
        self,
        rules=None,
        threshold: float = 1.0,
        refresh_interval: Optional[float] = None,
    ):
        """Install the front-line detector (repro.detect): every routed
        request is scored against the rule chain, flagged runs open
        WAL-journaled incidents, and ``/warp/admin/incidents`` exposes
        each suspect's continuously refreshed blast-radius preview with
        one-click repair.  ``refresh_interval`` starts the background
        :class:`~repro.detect.PreviewRefresher` (None = previews refresh
        on admin reads only).  Custom ``rules`` are code and — like
        application scripts — are not serialized; a reloaded deployment
        comes back with the default rule chain."""
        from repro.detect import Detector, IncidentManager, PreviewRefresher

        self.detector = Detector(rules=rules, threshold=threshold)
        self.incidents = IncidentManager(
            self.graph, self.ttdb, fault_plane=self.faults
        )
        self.server.detector = self.detector
        self.server.incident_manager = self.incidents
        self.repair.admin.incident_manager = self.incidents
        self.detection_refresh_interval = refresh_interval
        if refresh_interval is not None:
            self.preview_refresher = PreviewRefresher(
                self.incidents, interval=refresh_interval
            ).start()
        return self.detector

    # -- clients -----------------------------------------------------------------

    def client(
        self,
        name: Optional[str] = None,
        extension: bool = True,
        upload: bool = True,
    ) -> Browser:
        """A user's browser.  ``extension=False`` models a user without the
        WARP extension; ``upload=False`` models one whose extension attaches
        correlation headers but uploads no event logs (Table 4 ablations)."""
        if not extension:
            return Browser(self.network)
        client_id = name if name is not None else random_token(self.rng)
        # After a reload the rng may be rewound relative to the recorded
        # history; never hand a fresh browser a client id that already has
        # recorded visits (two users would merge under one id).
        while name is None and self.graph.last_visit_id(client_id) > 0:
            client_id = random_token(self.rng)
        ext = WarpExtension(client_id, self.graph, self.clock, upload=upload)
        browser = Browser(self.network, extension=ext)
        # A returning client (same id, new browser object — e.g. after a
        # system reload) must not reuse recorded visit ids: a fresh visit 1
        # would silently overwrite the stored visit 1.
        browser.resume_visits(self.graph.last_visit_id(client_id))
        return browser

    def register_site(self, origin: str, handler: Callable) -> None:
        """Add a third-party site (e.g. the attacker's) to the network."""
        self.network.register(origin, handler)

    # -- repair ------------------------------------------------------------------

    def _controller(self) -> RepairController:
        self._check_code_versions()
        controller = RepairController(
            ttdb=self.ttdb,
            graph=self.graph,
            scripts=self.scripts,
            runtime=self.runtime,
            server=self.server,
            network=self.network,
            conflicts=self.conflicts,
            clock=self.clock,
            ids=self.ids,
            replay_config=self.replay_config,
        )
        controller.cluster_mode = self.cluster_mode
        controller.faults = self.faults
        return controller

    def retroactive_patch(
        self, file: str, exports: Dict, apply_ts: int = 0
    ) -> RepairResult:
        """Retroactively apply a security patch (paper §3).

        .. deprecated:: Repair API v2 — equivalent blocking wrapper over
           ``warp.repair.submit(PatchSpec(file, exports=...)).result()``;
           prefer the spec form, which adds previews, progress, and
           batching (see API.md).
        """
        return self.repair.submit(
            PatchSpec(file=file, exports=exports, apply_ts=apply_ts)
        ).result()

    def cancel_visit(
        self,
        client_id: str,
        visit_id: int,
        initiated_by_admin: bool = True,
        allow_conflicts: bool = False,
    ) -> RepairResult:
        """Undo a past page visit (paper §5.5).

        .. deprecated:: Repair API v2 — equivalent blocking wrapper over
           ``warp.repair.submit(CancelVisitSpec(...)).result()``.
        """
        return self.repair.submit(
            CancelVisitSpec(
                client_id=client_id,
                visit_id=visit_id,
                initiated_by_admin=initiated_by_admin,
                allow_conflicts=allow_conflicts,
            )
        ).result()

    def cancel_client(self, client_id: str) -> RepairResult:
        """Undo every recorded action of one client (paper §2).

        .. deprecated:: Repair API v2 — equivalent blocking wrapper over
           ``warp.repair.submit(CancelClientSpec(client_id)).result()``.
        """
        return self.repair.submit(CancelClientSpec(client_id=client_id)).result()

    def retroactive_db_fix(
        self, sql: str, params: tuple, ts: int
    ) -> RepairResult:
        """Fix past database state (e.g. retroactively change a leaked
        password) and repair everything that depended on it (paper §2).

        .. deprecated:: Repair API v2 — equivalent blocking wrapper over
           ``warp.repair.submit(DbFixSpec(sql, params, ts)).result()``.
        """
        return self.repair.submit(
            DbFixSpec(sql=sql, params=tuple(params), ts=ts)
        ).result()

    # -- durability ---------------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist everything repair capability depends on: the action
        history graph's records, the versioned database, the generation
        counters, and the deterministic id/clock/rng state.

        Application *code* (script exports are Python callables) is not
        serialized — after :meth:`load`, re-register the same scripts and
        routes (e.g. ``WikiApp.register_code``) before serving or
        repairing.  Saving while a repair generation is active is refused:
        an in-flight repair does not survive a restart, it is re-run.
        """
        if self.ttdb.repair_gen is not None:
            raise RepairError("cannot save while a repair is in progress")
        state = {
            "version": 1,
            "origin": self.origin,
            "enabled": self.enabled,
            "clock": self.clock.now(),
            "ids": self.ids.state_dict(),
            "rng_state": encode_tree(self.rng.getstate()),
            "ttdb": self.ttdb.state_dict(),
            "database": self.database.to_dict(),
            "graph": self.graph.to_snapshot(),
            "routes": dict(self.server.routes),
            "script_versions": self._script_versions_for_save(),
            "conflicts": self.conflicts.state_list(),
            "cookie_invalidation": sorted(self.server.cookie_invalidation),
            # Repair configuration must survive reload: a deployment that
            # gated live traffic during repairs keeps doing so, and a
            # token-protected admin surface must not silently reopen.
            # (The snapshot already holds the full database — seeded user
            # passwords included — so the token adds no new secrecy tier.)
            "repair_config": {
                "cluster_mode": self.cluster_mode,
                "online_gate": self.server.gate is not None,
                "gate_policy": (
                    self.server.gate.policy
                    if self.server.gate is not None
                    else "partition"
                ),
                "admin_token": self.server.admin_token,
            },
            # The storage engine underneath survives reload too: a
            # deployment running on SQLite keeps running on SQLite (the
            # snapshot's database image is engine-portable JSON either
            # way, so this records policy, not data).
            "storage_config": {
                "backend": self.db_backend,
                "db_path": self.db_path,
            },
            # Detection survives reload: a deployment that was flagging
            # requests keeps flagging (incident records themselves travel
            # in the graph snapshot; custom rule *code* does not, same
            # contract as application scripts).
            "detection_config": {
                "enabled": self.detector is not None,
                "threshold": (
                    self.detector.threshold if self.detector is not None else 1.0
                ),
                "refresh_interval": self.detection_refresh_interval,
            },
            # Serving-path knobs survive reload the same way: a deployment
            # tuned for group commit + caching keeps that envelope.
            "serving_config": {
                "durability": self.durability,
                "wal_flush_interval": self.wal_flush_interval,
                "wal_flush_max_entries": self.wal_flush_max_entries,
                "wal_rotate_bytes": self.wal_rotate_bytes,
                "lock_mode": self.graph.store.lock_mode,
                "response_cache": self.response_cache is not None,
                "response_cache_entries": (
                    self.response_cache.max_entries
                    if self.response_cache is not None
                    else 1024
                ),
                "statement_cache": self.statement_cache,
            },
        }
        self.graph.store.commit_snapshot(path, state)

    @classmethod
    def load(
        cls,
        path: Optional[str],
        replay_config: Optional[ReplayConfig] = None,
        wal_path: Optional[str] = None,
        **ctor_kwargs,
    ) -> "WarpSystem":
        """Reconstruct a persisted deployment in a fresh process.

        When ``wal_path`` is given, action records journaled after the
        snapshot are replayed on top of it (the write-ahead log restores
        the action history graph; database versions are only as fresh as
        the snapshot).  ``path=None`` recovers from the WAL alone — the
        crash-before-first-save case: the action history graph is rebuilt
        but database rows, clock origin and counters start fresh, so the
        application must be reinstalled, not just re-registered.  The
        caller must re-register application scripts either way (code is
        not serialized) — recorded routes are restored so request dispatch
        works as soon as the scripts exist again.

        ``ctor_kwargs`` configure the fresh system underneath WAL-only
        recovery (``path=None``) — e.g. ``db_backend``/``db_path`` for a
        shard's storage layout.  With a snapshot they are refused: the
        snapshot's own repair/storage/serving config wins, and a silently
        ignored override would be a debugging trap.
        """
        if path is None:
            if wal_path is None:
                raise RepairError("load needs a snapshot path, a wal_path, or both")
            warp = cls(replay_config=replay_config, **ctor_kwargs)
            warp.graph.store.replay_wal(wal_path)
            warp._wire_wal_health()
            warp._sync_id_counters()
            warp._sync_clock()
            return warp
        if ctor_kwargs:
            raise RepairError(
                "load from a snapshot takes its configuration from the "
                f"snapshot; unexpected overrides: {sorted(ctor_kwargs)}"
            )
        with open(path, "r", encoding="utf-8") as fh:
            state = json.load(fh)
        serving = state.get("serving_config", {})
        storage = state.get("storage_config", {})
        warp = cls(
            origin=state["origin"],
            enabled=state["enabled"],
            replay_config=replay_config,
            db_backend=snapshot_backend(state),
            db_path=storage.get("db_path"),
            durability=serving.get("durability"),
            wal_flush_interval=serving.get("wal_flush_interval", 0.002),
            wal_flush_max_entries=serving.get("wal_flush_max_entries", 128),
            wal_rotate_bytes=serving.get("wal_rotate_bytes"),
            lock_mode=serving.get("lock_mode", "striped"),
            response_cache=serving.get("response_cache", False),
            response_cache_entries=serving.get("response_cache_entries", 1024),
            statement_cache=serving.get("statement_cache", True),
        )
        warp.clock.restore(state["clock"])
        warp.ids.restore(state["ids"])
        warp.rng.setstate(decode_tree(state["rng_state"]))
        warp.database.restore(state["database"])
        warp.ttdb.restore_state(state["ttdb"])
        warp.graph.restore_snapshot(state["graph"])
        if wal_path is not None:
            warp.graph.store.replay_wal(
                wal_path,
                snapshot_id=state.get("snapshot_id"),
                wal_options=warp._wal_options,
            )
            warp._wire_wal_health()
            if warp.wal_rotate_bytes is not None:
                warp._arm_rotation(wal_path)
        warp._sync_id_counters()
        warp._sync_clock()
        warp.server.routes.update(state.get("routes", {}))
        warp._expected_script_versions = dict(state.get("script_versions", {}))
        warp.conflicts.restore(state.get("conflicts", []))
        warp.server.cookie_invalidation.update(state.get("cookie_invalidation", ()))
        repair_config = state.get("repair_config", {})
        warp.cluster_mode = repair_config.get("cluster_mode", warp.cluster_mode)
        if repair_config.get("online_gate"):
            warp.enable_online_repair(
                policy=repair_config.get("gate_policy", "partition")
            )
        warp.server.admin_token = repair_config.get("admin_token")
        detection_config = state.get("detection_config", {})
        if detection_config.get("enabled"):
            warp.enable_detection(
                threshold=detection_config.get("threshold", 1.0),
                refresh_interval=detection_config.get("refresh_interval"),
            )
        return warp

    # -- per-shard persistence layout (repro.shard) --------------------------

    @staticmethod
    def shard_layout(root: str, shard_id: int) -> Dict[str, str]:
        """Canonical on-disk layout of one shard under a cluster root.
        Every path a shard persists lives in its own subdirectory, so
        shards never contend on files and a shard can be copied or wiped
        as a unit."""
        shard_dir = os.path.join(root, f"shard-{shard_id}")
        return {
            "dir": shard_dir,
            "snapshot": os.path.join(shard_dir, "snapshot.json"),
            "wal": os.path.join(shard_dir, "records.wal"),
            "db": os.path.join(shard_dir, "db"),
        }

    @classmethod
    def load_or_create_shard(
        cls, root: str, shard_id: int, **kwargs
    ) -> Tuple["WarpSystem", bool]:
        """Bring up one shard from its layout, recovering whatever state
        survived: snapshot (+WAL tail) -> full reload; WAL alone -> the
        crash-before-first-save recovery; neither -> a fresh system.

        Returns ``(warp, fresh)`` where ``fresh`` tells the application
        factory whether to install (create tables + seed) or merely
        re-register code over recovered data.  WAL-only recovery reports
        ``fresh=True`` because database rows start empty (see
        :meth:`load`) — the install re-creates them, and the replayed
        graph still supports repair.  ``kwargs`` configure fresh
        construction (storage backend, durability, admin token, ...);
        ``db_path`` defaults into the shard's layout so the SQLite engine
        lands inside the shard directory.
        """
        layout = cls.shard_layout(root, shard_id)
        os.makedirs(layout["dir"], exist_ok=True)
        kwargs.setdefault("db_path", layout["db"])
        snapshot_path, wal_path = layout["snapshot"], layout["wal"]
        if os.path.exists(snapshot_path):
            warp = cls.load(snapshot_path, wal_path=wal_path)
            fresh = False
        elif os.path.exists(wal_path) and os.path.getsize(wal_path):
            warp = cls.load(None, wal_path=wal_path, **kwargs)
            fresh = True
        else:
            warp = cls(wal_path=wal_path, **kwargs)
            fresh = True
        warp.shard_id = shard_id
        warp.shard_snapshot_path = snapshot_path
        warp.server.shard_id = shard_id
        return warp, fresh

    def _script_versions_for_save(self) -> Dict[str, int]:
        """Versions to persist: the live store's, floored by what a prior
        load expected — re-saving a loaded system before its code has been
        re-registered (or re-patched) must not erase the stale-code guard."""
        versions = dict(self._expected_script_versions)
        for name in self.scripts.names():
            versions[name] = max(versions.get(name, 0), self.scripts.version(name))
        return versions

    def _check_code_versions(self) -> None:
        """Refuse to repair until re-registered code matches the persisted
        deployment.  Re-execution uses the *current* exports; with scripts
        missing or at older versions (e.g. a pre-save patch not re-applied
        after load), repair would silently rebuild the timeline with the
        wrong — typically still-vulnerable — code."""
        for name, version in self._expected_script_versions.items():
            if not self.scripts.has(name):
                raise RepairError(
                    f"script {name!r} was registered in the persisted deployment "
                    "but is missing — re-register application code after load"
                )
            if self.scripts.version(name) < version:
                raise RepairError(
                    f"script {name!r} is at version {self.scripts.version(name)} "
                    f"but the persisted deployment had version {version} — "
                    "re-apply its patches before repairing"
                )

    def _sync_clock(self) -> None:
        """Advance the logical clock past every restored action — WAL
        replay restores records that postdate the snapshot's clock, and a
        reused timestamp would interleave new actions into the middle of
        the already-recorded timeline."""
        store = self.graph.store
        max_ts = self.clock.now()
        for run in store.runs.values():
            max_ts = max(max_ts, run.ts_end)
            for query in run.queries:
                max_ts = max(max_ts, query.ts)
        for visit in store.visits.values():
            max_ts = max(max_ts, visit.ts)
        for patch in store.patches:
            max_ts = max(max_ts, patch.apply_ts)
        self.clock.restore(max_ts)

    def _sync_id_counters(self) -> None:
        """Advance run/query id allocation past every restored record —
        WAL-replayed records postdate the snapshot's persisted counters,
        and a fresh id colliding with a restored one would silently
        overwrite that record in the graph."""
        store = self.graph.store
        self.ids.advance_to("run", max(store.runs, default=0))
        self.ids.advance_to(
            "query",
            max(
                (query.qid for run in store.runs.values() for query in run.queries),
                default=0,
            ),
        )

    # -- crash recovery of gate-queued requests ----------------------------------

    def recovered_queued_requests(self) -> list:
        """Requests the online gate queued before a crash and never
        re-applied (journaled via the WAL / snapshot), as ``(ticket,
        HttpRequest)`` in arrival order.  Empty in normal operation —
        finalize and abort both drain the queue."""
        pending = self.graph.store.pending_gate_queue
        return [
            (entry["ticket"], HttpRequest.from_dict(entry["request"]))
            for entry in sorted(
                pending.values(), key=lambda e: (e["ts"], e["ticket"])
            )
        ]

    def reapply_recovered_requests(self) -> Dict[int, HttpResponse]:
        """Serve every recovered queued request exactly once, in arrival
        order, against the current live generation; each application is
        journaled (``gate_apply``) so a crash-and-replay never duplicates
        one.  Call after re-registering application code."""
        responses: Dict[int, HttpResponse] = {}
        for ticket, request in self.recovered_queued_requests():
            try:
                responses[ticket] = self.server.handle(request)
            except Exception as exc:
                responses[ticket] = HttpResponse(
                    status=500,
                    body=f"script raised during recovered re-application: {exc!r}",
                )
            self.graph.store.log_gate_apply(ticket)
        return responses

    def resolve_conflict_by_cancel(self, conflict: Conflict) -> RepairResult:
        """The paper's conflict-resolution UI: cancel the conflicted visit.

        Allowed to cascade conflicts to other users because it resolves a
        conflict already reported to this user (§5.5)."""
        result = self.cancel_visit(
            conflict.client_id,
            conflict.visit_id,
            initiated_by_admin=False,
            allow_conflicts=True,
        )
        # Canceling the visit moots every conflict queued against it, even
        # ones different repairs reported for the same visit.
        self.conflicts.resolve_visit(conflict.client_id, conflict.visit_id)
        return result
