"""The repair controller (paper §2.1, §3–§5, borrowed from Retro).

Repair is a time-ordered worklist over three kinds of items:

* **query records** — re-executed standalone at their original timestamps
  in the repair generation; a result that differs from the recorded
  snapshot escalates to the owning application run / page visit;
* **application runs** — re-executed through the application runtime with
  the recorded HTTP request and nondeterminism log (used when no browser
  log exists, and for requests that arrived during repair);
* **page visits** — replayed in a server-side browser clone, with request
  matching, equivalence pruning, and cancellation of requests that the
  repaired page no longer issues.

All re-execution happens at original logical timestamps inside the repair
generation, so the live generation keeps serving traffic untouched until
``finalize`` atomically switches generations (§4.3).
"""

from __future__ import annotations

import bisect
import heapq
import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.ahg.graph import ActionHistoryGraph
from repro.ahg.records import (
    AppRunRecord,
    EventRecord,
    PatchRecord,
    QueryRecord,
    VisitRecord,
)
from repro.appserver.nondet import NondetReplayer
from repro.appserver.runtime import AppRuntime
from repro.appserver.scripts import ScriptStore
from repro.browser.browser import Network
from repro.core.clock import LogicalClock
from repro.core.errors import RepairError
from repro.core.ids import IdAllocator
from repro.db.sql import ast
from repro.db.sql.parser import parse
from repro.http.message import HttpRequest, HttpResponse
from repro.http.server import HttpServer
from repro.repair.conflicts import Conflict, ConflictQueue
from repro.repair.replay import BrowserReplayer, ReplayConfig
from repro.repair.stats import RepairStats
from repro.ttdb.partitions import ModifiedPartitions
from repro.ttdb.timetravel import TimeTravelDB, TTResult, split_statements


@dataclass
class RepairResult:
    """Outcome of one repair."""

    ok: bool
    aborted: bool
    stats: RepairStats
    conflicts: List[Conflict]


class RepairQueryRunner:
    """Query runner used when re-executing an application run.

    Matches issued statements to the original run's query log (same SQL
    text, in order); matched statements re-execute at their original
    timestamps, unmatched ones at the current cursor.  Original write
    queries that are never re-issued are undone afterwards.
    """

    def __init__(self, controller: "RepairController", original: AppRunRecord) -> None:
        self._controller = controller
        self._orig = original.queries
        self._matched = [False] * len(self._orig)
        self._cursor = 0
        self._ts_cursor = original.ts_start
        #: Unmatched original indexes by SQL text (each list stays sorted);
        #: _find is a dict hit plus a bisect instead of a wraparound rescan
        #: of the whole query log per issued statement (O(n²) for runs with
        #: many queries).
        self._unmatched_by_sql: Dict[str, List[int]] = {}
        for index, query in enumerate(self._orig):
            self._unmatched_by_sql.setdefault(query.sql, []).append(index)

    def run(self, sql: str, params: Tuple[object, ...], seq: int) -> TTResult:
        index = self._find(sql)
        if index is not None:
            self._matched[index] = True
            self._cursor = index + 1
            original: Optional[QueryRecord] = self._orig[index]
            ts = original.ts
            self._ts_cursor = ts
        else:
            original = None
            ts = self._ts_cursor
        return self._controller.reexec_statement(sql, params, ts, original)

    def run_script(self, sql: str) -> List[TTResult]:
        return [self.run(piece, (), -1) for piece in split_statements(sql)]

    def _find(self, sql: str) -> Optional[int]:
        """First unmatched original with this SQL at or after the cursor,
        else (wraparound) the earliest unmatched one before it."""
        candidates = self._unmatched_by_sql.get(sql)
        if not candidates:
            return None
        pos = bisect.bisect_left(candidates, self._cursor)
        if pos >= len(candidates):
            pos = 0
        return candidates.pop(pos)

    def undo_unmatched(self) -> None:
        for index, query in enumerate(self._orig):
            if not self._matched[index] and query.is_write:
                self._controller.undo_query(query)


class RepairController:
    """Coordinates one repair from initiation to finalize."""

    def __init__(
        self,
        ttdb: TimeTravelDB,
        graph: ActionHistoryGraph,
        scripts: ScriptStore,
        runtime: AppRuntime,
        server: HttpServer,
        network: Network,
        conflicts: ConflictQueue,
        clock: LogicalClock,
        ids: IdAllocator,
        replay_config: Optional[ReplayConfig] = None,
    ) -> None:
        self.ttdb = ttdb
        self.graph = graph
        self.scripts = scripts
        self.runtime = runtime
        self.server = server
        self.network = network
        self.conflicts = conflicts
        self.clock = clock
        self.ids = ids
        self.replayer = BrowserReplayer(self, replay_config)

        self.mods = ModifiedPartitions()
        self.stats = RepairStats()
        self._heap: List[Tuple[int, int, str, object]] = []
        self._heap_seq = 0
        self._run_state: Dict[int, str] = {}
        self._visit_state: Dict[Tuple[str, int], str] = {}
        self._scheduled_qids: Set[int] = set()
        self._replacements: Dict[int, AppRunRecord] = {}
        self._new_runs: List[AppRunRecord] = []
        #: Clients whose replay hit a conflict: their subsequent browser
        #: activity is assumed unchanged (paper §5.4).
        self._conflicted_clients: Set[str] = set()
        self._counted_visits: Set[Tuple[str, int]] = set()
        self._active = False
        #: Ablation switches (see DESIGN.md / benchmarks/bench_ablations.py).
        #: §3.3 calls nondeterminism replay "strictly an optimization";
        #: pruning is the §5.3 identical-request short-circuit.
        self.use_nondet_replay = True
        self.use_pruning = True
        #: Optional hook invoked after each worklist item (used by the
        #: concurrent-repair benchmark to interleave live traffic).
        self.step_hook: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ entry points

    def retroactive_patch(
        self, file: str, exports: Dict, apply_ts: int = 0
    ) -> RepairResult:
        """Apply a security patch to the past (paper §3.2)."""
        started = _time.perf_counter()
        graph_before = self.graph.graph_load_seconds
        self._begin()
        self.stats.timer.push("init")
        new_version = self.scripts.patch(file, exports)
        self.graph.add_patch(
            PatchRecord(file=file, new_version=new_version, apply_ts=apply_ts)
        )
        for run in self.graph.runs_loading_file(file, apply_ts):
            self._escalate(run.run_id)
        self.stats.timer.pop()
        self._process()
        self._finalize()
        return self._result(started, graph_before, aborted=False)

    def cancel_visit(
        self,
        client_id: str,
        visit_id: int,
        initiated_by_admin: bool = True,
        allow_conflicts: bool = False,
    ) -> RepairResult:
        """Undo a past page visit (paper §5.5).

        A regular user's undo aborts if it would create conflicts for
        *other* users, unless it resolves a conflict already reported to
        this user (``allow_conflicts``).
        """
        started = _time.perf_counter()
        graph_before = self.graph.graph_load_seconds
        self._begin()
        self.stats.timer.push("init")
        for target_id in self._visit_and_descendants(client_id, visit_id):
            for run in self.graph.runs_of_visit(client_id, target_id):
                self.cancel_run(run)
            self._visit_state[(client_id, target_id)] = "canceled"
        self.stats.timer.pop()
        self._process()

        if not initiated_by_admin and not allow_conflicts:
            others = {
                c.client_id for c in self.conflicts.pending() if c.client_id != client_id
            }
            if others:
                self._abort()
                return self._result(started, graph_before, aborted=True)
        self._finalize()
        return self._result(started, graph_before, aborted=False)

    def _visit_and_descendants(self, client_id: str, visit_id: int) -> List[int]:
        """Canceling a page visit undoes all of its HTTP requests — which
        includes the navigations (form posts, link follows) its events
        caused, i.e. its descendant visits.  The parent→children index
        makes this O(descendants), not O(client history) per level."""
        out = [visit_id]
        seen = {visit_id}
        frontier = [visit_id]
        while frontier:
            next_frontier = []
            for parent_id in frontier:
                for record in self.graph.child_visits(client_id, parent_id):
                    if record.visit_id not in seen:
                        seen.add(record.visit_id)
                        out.append(record.visit_id)
                        next_frontier.append(record.visit_id)
            frontier = next_frontier
        return out

    def cancel_client(self, client_id: str) -> RepairResult:
        """Undo *every* action of one client (paper §2: when credentials
        were stolen, administrators can revert just the attacker's actions
        if they can identify the attacker's browser/IP)."""
        started = _time.perf_counter()
        graph_before = self.graph.graph_load_seconds
        self._begin()
        self.stats.timer.push("init")
        for run in self.graph.client_runs(client_id):
            self.cancel_run(run)
        for visit in self.graph.client_visits(client_id):
            self._visit_state[(client_id, visit.visit_id)] = "canceled"
        self.stats.timer.pop()
        self._process()
        self._finalize()
        return self._result(started, graph_before, aborted=False)

    def retroactive_db_fix(
        self, sql: str, params: Tuple[object, ...], ts: int
    ) -> RepairResult:
        """Retroactively fix past database state (paper §2: e.g. change the
        password of a user whose credentials leaked, *as of* the leak time,
        at the risk of undoing legitimate changes made with it)."""
        started = _time.perf_counter()
        graph_before = self.graph.graph_load_seconds
        self._begin()
        self.stats.timer.push("init")
        self.reexec_statement(sql, params, ts, original=None)
        self.stats.timer.pop()
        self._process()
        self._finalize()
        return self._result(started, graph_before, aborted=False)

    def _result(self, started: float, graph_before: float, aborted: bool) -> RepairResult:
        self.stats.total_seconds = _time.perf_counter() - started
        self.stats.graph_seconds = self.graph.graph_load_seconds - graph_before
        self.stats.total_visits = self.graph.n_visits
        self.stats.total_runs = self.graph.n_runs
        self.stats.total_queries = self.graph.n_queries
        self.stats.conflicts = len(self.conflicts.pending())
        return RepairResult(
            ok=not aborted,
            aborted=aborted,
            stats=self.stats,
            conflicts=self.conflicts.pending(),
        )

    # ------------------------------------------------------------------ lifecycle

    def _begin(self) -> None:
        if self._active:
            raise RepairError("repair already in progress")
        self.ttdb.begin_repair()
        self.server.repair_active = True
        self.server.pending_during_repair = []
        self._active = True

    def _process(self) -> None:
        while self._heap:
            ts, _, kind, payload = heapq.heappop(self._heap)
            if kind == "query":
                self._process_query(payload)  # type: ignore[arg-type]
            elif kind == "run":
                self._process_run(payload)  # type: ignore[arg-type]
            elif kind == "visit":
                self._process_visit(payload)  # type: ignore[arg-type]
            if self.step_hook is not None:
                self.step_hook()

    def _finalize(self) -> None:
        # Re-apply requests that arrived while repair was running (§4.3).
        for run_id in list(self.server.pending_during_repair):
            run = self.graph.runs.get(run_id)
            if run is None:
                continue
            if self._run_state.get(run_id) in ("done", "canceled"):
                continue
            if self._inputs_changed(run):
                self._reexec_run(run, run.request, conflict_on_change=False)
        # Briefly suspend, switch generations, resume.
        self.server.suspended = True
        self.ttdb.finalize_repair()
        self._merge_replacements()
        self.server.suspended = False
        self.server.repair_active = False
        for client_id in self.replayer.diverged_clients:
            self.server.cookie_invalidation.add(client_id)
        self._active = False

    def _abort(self) -> None:
        self.ttdb.abort_repair()
        for conflict in self.conflicts.pending():
            self.conflicts.resolve(conflict)
        self.server.repair_active = False
        self._active = False

    def _merge_replacements(self) -> None:
        """Fold re-executed runs back into the action history graph so the
        graph describes the repaired timeline (enables follow-up repairs)."""
        for old_id, new_record in self._replacements.items():
            old = self.graph.runs.get(old_id)
            if old is None:
                continue
            new_record.run_id = old_id
            for query in new_record.queries:
                query.run_id = old_id
            new_record.client_id = old.client_id
            new_record.visit_id = old.visit_id
            new_record.request_id = old.request_id
            new_record.ts_start = old.ts_start
            new_record.ts_end = max(old.ts_end, new_record.ts_end)
            self.graph.replace_run(old_id, new_record)
        self.graph.add_runs(self._new_runs)
        if self._replacements:
            self.graph.invalidate_partition_indexes()

    # ------------------------------------------------------------------ scheduling

    def _schedule(self, ts: int, kind: str, payload) -> None:
        self._heap_seq += 1
        heapq.heappush(self._heap, (ts, self._heap_seq, kind, payload))

    def _escalate(self, run_id: int) -> None:
        """A run's inputs (or outputs) changed: queue it for re-execution,
        at the browser level when a client-side log exists."""
        run = self.graph.runs.get(run_id)
        if run is None or self._run_state.get(run_id) in ("queued", "done", "canceled"):
            return
        visit = self.graph.visit_of_run(run)
        if run.client_id in self._conflicted_clients:
            # §5.4: after a conflict, this browser is no longer replayed —
            # its requests are assumed unchanged, so affected runs
            # re-execute server-side with the recorded request.
            self._run_state[run_id] = "queued"
            self._schedule(run.ts_start, "run", run)
            return
        if self.replayer.can_replay(visit):
            # Replay must start at the visit whose *events* generated this
            # request: a form POST's parameters come from replaying the
            # parent form page's DOM events (that is how merged text and
            # fresh CSRF tokens flow into the re-executed request).
            for candidate in self._replay_chain(visit):
                key = (candidate.client_id, candidate.visit_id)
                state = self._visit_state.get(key)
                if state == "queued":
                    return
                if state is None:
                    self._visit_state[key] = "queued"
                    self._schedule(candidate.ts, "visit", candidate)
                    return
            # Entire chain already replayed: fall through to the run level.
        self._run_state[run_id] = "queued"
        self._schedule(run.ts_start, "run", run)

    def _replay_chain(self, visit: VisitRecord) -> List[VisitRecord]:
        """Ancestors of ``visit`` whose events drive its navigation, topmost
        first, ending with ``visit`` itself."""
        chain = [visit]
        current = visit
        while current.parent_visit is not None:
            parent = self.graph.visits.get((visit.client_id, current.parent_visit))
            if parent is None or not parent.events:
                break
            chain.append(parent)
            current = parent
        chain.reverse()
        return chain

    def note_visit_replayed(self, client_id: str, visit_id: int) -> None:
        """Called by the replay session when a visit gets mapped into a
        clone: its standalone queue entry (if any) must become a no-op."""
        self._visit_state[(client_id, visit_id)] = "done"
        key = (client_id, visit_id)
        if key not in self._counted_visits:
            self._counted_visits.add(key)
            self.stats.visits_reexecuted += 1

    # ------------------------------------------------------------------ worklist items

    def _process_query(self, query: QueryRecord) -> None:
        run_state = self._run_state.get(query.run_id)
        if run_state in ("queued", "done", "canceled"):
            return
        run = self.graph.runs.get(query.run_id)
        if run is None or run.canceled:
            return
        visit_key = (run.client_id, run.visit_id)
        if run.client_id is not None and self._visit_state.get(visit_key) in (
            "queued",
            "done",
            "conflict",
            "canceled",
        ):
            return
        affected = self.mods.affects(query.read_set, query.ts) or (
            query.is_write
            and self.mods.affects_keys(query.table, query.written_partitions, query.ts)
        )
        if not affected:
            return
        self.stats.timer.push("db")
        result = self.reexec_statement(query.sql, query.params, query.ts, query)
        self.stats.timer.pop()
        if result.result.snapshot() != query.snapshot:
            self._escalate(query.run_id)

    def _process_run(self, run: AppRunRecord) -> None:
        if self._run_state.get(run.run_id) in ("done", "canceled"):
            return
        already_conflicted = run.client_id in self._conflicted_clients
        self._reexec_run(run, run.request, conflict_on_change=not already_conflicted)

    def _process_visit(self, visit: VisitRecord) -> None:
        key = (visit.client_id, visit.visit_id)
        if self._visit_state.get(key) == "done":
            return
        if visit.client_id in self._conflicted_clients:
            return
        self._visit_state[key] = "done"
        self.stats.timer.push("firefox")
        self.replayer.replay_visit(visit)
        self.stats.timer.pop()

    # ------------------------------------------------------------------ query re-execution

    def reexec_statement(
        self,
        sql: str,
        params: Tuple[object, ...],
        ts: int,
        original: Optional[QueryRecord],
    ) -> TTResult:
        """Re-execute one statement at historical time ``ts``.

        Writes use two-phase re-execution (§4.2): find the rows the new
        WHERE clause matches, roll back original ∪ new rows to just before
        ``ts``, then execute.
        """
        self.stats.queries_reexecuted += 1
        stmt = parse(sql)
        if not ast.is_write(stmt):
            return self.ttdb.execute_at(sql, params, ts)

        table = stmt.table  # type: ignore[attr-defined]
        targets: Set[Tuple[str, int]] = set()
        forced: Tuple[int, ...] = ()
        if original is not None:
            targets |= set(original.written_row_ids)
            if original.kind == "insert":
                forced = tuple(rid for _, rid in original.written_row_ids)
        if isinstance(stmt, (ast.Update, ast.Delete)):
            for row_id in self.ttdb.matching_row_ids(sql, params, max(ts - 1, 0)):
                targets.add((table, row_id))
        touched = set()
        for target_table, row_id in targets:
            touched |= self.ttdb.rollback_row(target_table, row_id, ts)
        result = self.ttdb.execute_at(sql, params, ts, forced_row_ids=forced)
        keys = touched | set(result.result.written_partitions)
        if original is not None:
            keys |= set(original.written_partitions)
        self._note_modification(table, keys, ts, whole_table=result.full_table_write)
        return result

    def undo_query(self, query: QueryRecord) -> None:
        """Roll back one original write that the repaired run never issued."""
        touched = set()
        for table, row_id in query.written_row_ids:
            touched |= self.ttdb.rollback_row(table, row_id, query.ts)
        touched |= set(query.written_partitions)
        self._note_modification(query.table, touched, query.ts, query.full_table_write)

    def cancel_run(self, run: AppRunRecord) -> None:
        """Undo every write of a canceled request (paper §5.4, §5.5)."""
        if self._run_state.get(run.run_id) == "canceled":
            return
        self._run_state[run.run_id] = "canceled"
        self.graph.mark_run_canceled(run.run_id)
        self.stats.runs_canceled += 1
        for query in run.queries:
            if query.is_write:
                self.undo_query(query)

    def _note_modification(
        self, table: str, keys, ts: int, whole_table: bool = False
    ) -> None:
        if whole_table:
            self.mods.record_all(table, ts)
        if keys:
            self.mods.record(table, keys, ts)
        if not keys and not whole_table:
            return
        self._propagate(table, keys, ts, whole_table)

    def _propagate(self, table: str, keys, ts: int, whole_table: bool) -> None:
        candidates = self.graph.queries_touching(table, keys, ts, whole_table)
        for query in candidates:
            if query.qid in self._scheduled_qids:
                continue
            self._scheduled_qids.add(query.qid)
            self._schedule(query.ts, "query", query)

    # ------------------------------------------------------------------ run re-execution

    def _reexec_run(
        self,
        run: AppRunRecord,
        request: HttpRequest,
        conflict_on_change: bool,
    ) -> HttpResponse:
        self.stats.timer.push("app")
        self._run_state[run.run_id] = "done"
        script_name = self.server.script_for(request.path)
        if script_name is None:
            self.stats.timer.pop()
            return HttpResponse(status=404, body=f"no route for {request.path}")
        if self.use_nondet_replay:
            nondet = NondetReplayer(run.nondet, self.runtime.nondet_source)
        else:
            nondet = NondetReplayer([], self.runtime.nondet_source)
        runner = RepairQueryRunner(self, run)
        response, record = self.runtime.execute(
            script_name,
            request,
            query_runner=runner,
            nondet=nondet,
            ts_start=run.ts_start,
        )
        runner.undo_unmatched()
        self.stats.runs_reexecuted += 1
        self.stats.nondet_misses += nondet.misses
        self._replacements[run.run_id] = record
        self.stats.timer.pop()

        if response.key() != run.response.key() and conflict_on_change:
            # The browser that received this response cannot be replayed
            # (no client-side log): inform the user via a queued conflict.
            if run.client_id is not None:
                self.report_conflict_for_run(
                    run, "response changed but no browser log is available"
                )
        return response

    def _exec_new_run(self, request: HttpRequest, ts: int) -> HttpResponse:
        """Execute a request the original timeline never saw (a replayed
        page navigated somewhere new)."""
        script_name = self.server.script_for(request.path)
        if script_name is None:
            return HttpResponse(status=404, body=f"no route for {request.path}")
        self.stats.timer.push("app")
        empty = AppRunRecord(
            run_id=0,
            ts_start=ts,
            ts_end=ts,
            script=script_name,
            loaded_files={},
            request=request,
            response=HttpResponse(),
        )
        runner = RepairQueryRunner(self, empty)
        response, record = self.runtime.execute(
            script_name, request, query_runner=runner, ts_start=ts
        )
        self.stats.runs_reexecuted += 1
        self._new_runs.append(record)
        self.stats.timer.pop()
        return response

    # ------------------------------------------------------------------ replay transport

    def handle_replay_request(
        self, session, origin: str, request: HttpRequest
    ) -> HttpResponse:
        """Requests issued by the server-side re-execution browser."""
        if origin != self.server.origin:
            # Third-party origins (the attacker's site) are fetched live.
            return self.network.request(origin, request)
        clone_visit_id = request.visit_id or 0
        run, ts = session.match_request(clone_visit_id, request)
        if run is None:
            return self._exec_new_run(request, ts)
        state = self._run_state.get(run.run_id)
        if state == "done":
            replacement = self._replacements.get(run.run_id)
            return replacement.response if replacement else run.response
        if state == "canceled":
            return HttpResponse(status=410, body="request was canceled by repair")
        if (
            self.use_pruning
            and request.key() == run.request.key()
            and not self._inputs_changed(run)
        ):
            # Prune: identical request with unchanged inputs (§5.3).
            self._run_state[run.run_id] = "done"
            self.stats.runs_pruned += 1
            return run.response
        return self._reexec_run(run, request, conflict_on_change=False)

    def _inputs_changed(self, run: AppRunRecord) -> bool:
        for file, version in run.loaded_files.items():
            if self.scripts.version(file) != version:
                return True
        for query in run.queries:
            if self.mods.affects(query.read_set, query.ts):
                return True
            if query.is_write and self.mods.affects_keys(
                query.table, query.written_partitions, query.ts
            ):
                return True
        return False

    # ------------------------------------------------------------------ conflicts

    def report_conflict(self, visit: VisitRecord, event: EventRecord, reason: str) -> None:
        self.conflicts.add(
            Conflict(
                client_id=visit.client_id,
                visit_id=visit.visit_id,
                url=visit.url,
                reason=reason,
                event_desc=f"{event.etype} on {event.xpath}",
            )
        )
        self._visit_state[(visit.client_id, visit.visit_id)] = "conflict"
        self._conflicted_clients.add(visit.client_id)

    def report_conflict_for_run(self, run: AppRunRecord, reason: str) -> None:
        self.conflicts.add(
            Conflict(
                client_id=run.client_id or "?",
                visit_id=run.visit_id or 0,
                url=run.request.path,
                reason=reason,
            )
        )
        if run.client_id is not None:
            self._conflicted_clients.add(run.client_id)
