"""The repair controller (paper §2.1, §3–§5, borrowed from Retro).

Repair is a time-ordered worklist over three kinds of items:

* **query records** — re-executed standalone at their original timestamps
  in the repair generation; a result that differs from the recorded
  snapshot escalates to the owning application run / page visit;
* **application runs** — re-executed through the application runtime with
  the recorded HTTP request and nondeterminism log (used when no browser
  log exists, and for requests that arrived during repair);
* **page visits** — replayed in a server-side browser clone, with request
  matching, equivalence pruning, and cancellation of requests that the
  repaired page no longer issues.

All re-execution happens at original logical timestamps inside the repair
generation, so the live generation keeps serving traffic untouched until
``finalize`` atomically switches generations (§4.3).

The worklist is **dependency-clustered** (:mod:`repro.repair.clusters`):
the initial damage set is split into taint-connected components, and each
component runs as its own worklist — own ``ModifiedPartitions``, run and
visit state, scheduled-qid set, and a group-scoped partition index —
against the shared repair generation.  ``cluster_mode`` selects
``"sequential"`` (default: groups processed one after another in
deterministic damage-time order), ``"parallel"`` (one worker thread per
group, item execution serialized by a controller lock — for the
escape-free repairs the static components describe, groups are
independent and the interleaving cannot change the outcome), or
``"off"`` (the original monolithic global worklist, kept as the
reference for the equivalence property test).  See DESIGN.md for the
one bounded deviation escapes can introduce.
"""

from __future__ import annotations

import bisect
import heapq
import threading
import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.ahg.graph import ActionHistoryGraph
from repro.ahg.records import (
    AppRunRecord,
    EventRecord,
    PatchRecord,
    QueryRecord,
    VisitRecord,
)
from repro.appserver.nondet import NondetReplayer
from repro.appserver.runtime import AppRuntime
from repro.appserver.scripts import ScriptStore
from repro.browser.browser import Network
from repro.core.clock import LogicalClock
from repro.core.errors import RepairCanceled, RepairError
from repro.core.ids import IdAllocator
from repro.db.sql import ast
from repro.db.sql.parser import parse
from repro.faults.plane import active as _active_plane
from repro.http.message import HttpRequest, HttpResponse
from repro.http.server import HttpServer
from repro.repair.clusters import (
    ClusteringFutile,
    RepairGroup,
    compute_repair_groups,
)
from repro.repair.conflicts import Conflict, ConflictQueue
from repro.repair.replay import BrowserReplayer, ReplayConfig
from repro.repair.stats import RepairStats
from repro.ttdb.partitions import ModifiedPartitions
from repro.ttdb.timetravel import TimeTravelDB, TTResult, split_statements


@dataclass
class RepairResult:
    """Outcome of one repair."""

    ok: bool
    aborted: bool
    stats: RepairStats
    conflicts: List[Conflict]

    def to_dict(self) -> dict:
        """JSON image for the admin API and jobs journal."""
        return {
            "ok": self.ok,
            "aborted": self.aborted,
            "stats": self.stats.to_dict(),
            "conflicts": [conflict.to_dict() for conflict in self.conflicts],
        }


class RepairQueryRunner:
    """Query runner used when re-executing an application run.

    Matches issued statements to the original run's query log (same SQL
    text, in order); matched statements re-execute at their original
    timestamps, unmatched ones at the current cursor.  Original write
    queries that are never re-issued are undone afterwards.
    """

    def __init__(self, controller: "RepairController", original: AppRunRecord) -> None:
        self._controller = controller
        self._orig = original.queries
        self._matched = [False] * len(self._orig)
        self._cursor = 0
        self._ts_cursor = original.ts_start
        #: Unmatched original indexes by SQL text (each list stays sorted);
        #: _find is a dict hit plus a bisect instead of a wraparound rescan
        #: of the whole query log per issued statement (O(n²) for runs with
        #: many queries).
        self._unmatched_by_sql: Dict[str, List[int]] = {}
        for index, query in enumerate(self._orig):
            self._unmatched_by_sql.setdefault(query.sql, []).append(index)

    def run(self, sql: str, params: Tuple[object, ...], seq: int) -> TTResult:
        index = self._find(sql)
        if index is not None:
            self._matched[index] = True
            self._cursor = index + 1
            original: Optional[QueryRecord] = self._orig[index]
            ts = original.ts
            self._ts_cursor = ts
        else:
            original = None
            ts = self._ts_cursor
        return self._controller.reexec_statement(sql, params, ts, original)

    def run_script(self, sql: str) -> List[TTResult]:
        return [self.run(piece, (), -1) for piece in split_statements(sql)]

    def _find(self, sql: str) -> Optional[int]:
        """First unmatched original with this SQL at or after the cursor,
        else (wraparound) the earliest unmatched one before it."""
        candidates = self._unmatched_by_sql.get(sql)
        if not candidates:
            return None
        pos = bisect.bisect_left(candidates, self._cursor)
        if pos >= len(candidates):
            pos = 0
        return candidates.pop(pos)

    def undo_unmatched(self) -> None:
        for index, query in enumerate(self._orig):
            if not self._matched[index] and query.is_write:
                self._controller.undo_query(query)


class RepairController:
    """Coordinates one repair from initiation to finalize."""

    def __init__(
        self,
        ttdb: TimeTravelDB,
        graph: ActionHistoryGraph,
        scripts: ScriptStore,
        runtime: AppRuntime,
        server: HttpServer,
        network: Network,
        conflicts: ConflictQueue,
        clock: LogicalClock,
        ids: IdAllocator,
        replay_config: Optional[ReplayConfig] = None,
    ) -> None:
        self.ttdb = ttdb
        self.graph = graph
        self.scripts = scripts
        self.runtime = runtime
        self.server = server
        self.network = network
        self.conflicts = conflicts
        self.clock = clock
        self.ids = ids
        self.replayer = BrowserReplayer(self, replay_config)
        #: Fault plane (repro.faults); WarpSystem points this at its own.
        self.faults = _active_plane()

        #: Union of every group's modified partitions (the repair-wide
        #: view used by finalize-time input-change checks and pruning).
        self.mods = ModifiedPartitions()
        self.stats = RepairStats()
        #: Worklist groups.  Until an entry point plans clusters there is a
        #: single global-scope group, which is also what ``cluster_mode ==
        #: "off"`` and the manual ``_escalate``/``_process`` flow use.
        self._groups: List[RepairGroup] = [RepairGroup(0, mods=self.mods)]
        self._g: RepairGroup = self._groups[0]
        #: qids of scheduled queries whose runs belong to *no* group
        #: (untainted runs reached through the escape fallback); shared so
        #: two escaping groups cannot schedule the same query twice.
        self._orphan_qids: Set[int] = set()
        #: O(1) ownership maps derived from the computed groups (kept in
        #: sync by _plan_groups): which group a run / client belongs to.
        self._run_home: Dict[int, RepairGroup] = {}
        self._client_home: Dict[str, RepairGroup] = {}
        #: When set, _note_modification defers propagation and collects the
        #: damage keys instead (used to seed clustering for a retroactive
        #: database fix, whose footprint is only known after execution).
        self._pending_damage: Optional[List[Tuple[str, Set, int, bool]]] = None
        self._replacements: Dict[int, AppRunRecord] = {}
        self._new_runs: List[AppRunRecord] = []
        self._active = False
        #: Conflicts already pending when this repair began (queued for
        #: users who have not logged in yet): never resolved, never counted,
        #: and never a reason to abort an unrelated user undo.
        self._prior_conflict_ids: Set[int] = set()
        #: How to schedule repair groups: "sequential" | "parallel" | "off".
        self.cluster_mode = "sequential"
        #: Ablation switches (see DESIGN.md / benchmarks/bench_ablations.py).
        #: §3.3 calls nondeterminism replay "strictly an optimization";
        #: pruning is the §5.3 identical-request short-circuit.
        self.use_nondet_replay = True
        self.use_pruning = True
        #: Optional hook invoked after each worklist item (used by the
        #: concurrent-repair benchmark to interleave live traffic).
        self.step_hook: Optional[Callable[[], None]] = None
        #: Progress listeners (repro.repair.jobs): called with
        #: ``(event, payload)`` for phase_started / groups_planned /
        #: group_done / conflict_found / finalized / aborted.  A raising
        #: listener is ignored — observability must not break a repair.
        self.listeners: List[Callable[[str, Dict[str, object]], None]] = []
        #: Cooperative cancel flag (RepairJob.cancel): checked between
        #: worklist items; when set the controller raises RepairCanceled,
        #: which unwinds through the abort path.
        self.cancel_requested = False
        #: Set when a failure escaped *after* the generation switch
        #: committed (repair.finalized fault point, gate-drain error): the
        #: repaired state is live, so re-running the spec would apply it
        #: twice — the job manager settles instead of retrying.
        self.post_switch_failure = False

    def _emit(self, event: str, **payload) -> None:
        # Phase boundaries are fault points: an injected failure here
        # models the repair worker dying between phases, and unwinds
        # through repair_batch's abort/unwind path like any other error
        # (listeners below stay unable to break a repair).
        self.faults.fire("repair." + event)
        for listener in self.listeners:
            try:
                listener(event, payload)
            except Exception:
                pass

    # ------------------------------------------------------------------ entry points

    # The four v1 entry points are batches of one: staging, planning and
    # processing live in repair_batch only, so "batch ≡ sequential" is
    # structural — there is a single staging implementation to diverge
    # from.  (The spec imports are deferred: repro.repair.api imports
    # from this module.)

    def retroactive_patch(
        self, file: str, exports: Dict, apply_ts: int = 0
    ) -> RepairResult:
        """Apply a security patch to the past (paper §3.2)."""
        from repro.repair.api import PatchSpec

        return self.repair_batch(
            [PatchSpec(file=file, exports=exports, apply_ts=apply_ts)]
        )

    def cancel_visit(
        self,
        client_id: str,
        visit_id: int,
        initiated_by_admin: bool = True,
        allow_conflicts: bool = False,
    ) -> RepairResult:
        """Undo a past page visit (paper §5.5).

        A regular user's undo aborts if it would create conflicts for
        *other* users, unless it resolves a conflict already reported to
        this user (``allow_conflicts``).
        """
        from repro.repair.api import CancelVisitSpec

        return self.repair_batch(
            [
                CancelVisitSpec(
                    client_id=client_id,
                    visit_id=visit_id,
                    initiated_by_admin=initiated_by_admin,
                    allow_conflicts=allow_conflicts,
                )
            ]
        )

    def cancel_client(self, client_id: str) -> RepairResult:
        """Undo *every* action of one client (paper §2: when credentials
        were stolen, administrators can revert just the attacker's actions
        if they can identify the attacker's browser/IP)."""
        from repro.repair.api import CancelClientSpec

        return self.repair_batch([CancelClientSpec(client_id=client_id)])

    def retroactive_db_fix(
        self, sql: str, params: Tuple[object, ...], ts: int
    ) -> RepairResult:
        """Retroactively fix past database state (paper §2: e.g. change the
        password of a user whose credentials leaked, *as of* the leak time,
        at the risk of undoing legitimate changes made with it)."""
        from repro.repair.api import DbFixSpec

        return self.repair_batch([DbFixSpec(sql=sql, params=tuple(params), ts=ts)])

    def repair_batch(self, specs) -> RepairResult:
        """Repair N intrusions in **one** generation pass (Repair API v2).

        The member specs' damage sets are unioned before cluster
        discovery, so one planning pass computes the taint components of
        the whole batch and every affected action re-executes *at most
        once* — N sequential repairs would pay N generation switches, N
        graph merges, and re-execute any action reached by several
        attacks once per attack.

        Per-spec staging mirrors the dedicated entry points: patches are
        applied and their damaged runs escalated, canceled visits/clients
        have their runs undone, and database fixes execute with
        propagation deferred (their footprint seeds clustering, one key
        group per statement).  A run both canceled and patched stays
        canceled.  If any cancel spec is a non-admin undo, the §5.5 guard
        applies: conflicts created for *other* clients abort the batch.

        ``PatchSpec``s must arrive with ``exports`` materialized — the
        job manager resolves ``patch_name`` through its catalog first.
        """
        from repro.repair.api import (
            CancelClientSpec,
            CancelVisitSpec,
            DbFixSpec,
            PatchSpec,
            RepairBatch,
        )

        flat = []
        for spec in specs:
            if isinstance(spec, RepairBatch):
                flat.extend(spec.specs)
            else:
                flat.append(spec)
        if not flat:
            raise RepairError("repair batch needs at least one spec")
        started = _time.perf_counter()
        graph_before = self.graph.graph_load_seconds
        self._begin()
        #: Patches installed by this batch's staging, as (file, version,
        #: apply_ts).  Their durable PatchRecords are journaled only on
        #: commit, and an abort/cancel pops the staged versions — an
        #: aborted batch must leave code *and* records untouched, not
        #: just the repair generation.
        staged_patches: List[Tuple[str, int, int]] = []
        try:
            self.stats.timer.push("init")
            run_seeds: List[int] = []
            escalate_runs: List[int] = []
            cancel_run_ids: List[int] = []
            cancel_visit_keys: List[Tuple[str, int]] = []
            gate_clients: List[str] = []
            key_seed_groups: List[Tuple[List, List, int]] = []
            deferred_all: List[Tuple[str, Set, int, bool]] = []
            undo_guards: Set[str] = set()
            for spec in flat:
                if isinstance(spec, PatchSpec):
                    if spec.exports is None:
                        raise RepairError(
                            f"PatchSpec for {spec.file!r} has no exports — "
                            "resolve patch_name through the job manager's "
                            "registered patch catalog before execution"
                        )
                    new_version = self.scripts.patch(spec.file, spec.exports)
                    staged_patches.append((spec.file, new_version, spec.apply_ts))
                    damaged = [
                        run.run_id
                        for run in self.graph.runs_loading_file(
                            spec.file, spec.apply_ts
                        )
                    ]
                    run_seeds.extend(damaged)
                    escalate_runs.extend(damaged)
                elif isinstance(spec, CancelVisitSpec):
                    targets = self.graph.visit_and_descendants(
                        spec.client_id, spec.visit_id
                    )
                    for target_id in targets:
                        for run in self.graph.runs_of_visit(
                            spec.client_id, target_id
                        ):
                            run_seeds.append(run.run_id)
                            cancel_run_ids.append(run.run_id)
                        cancel_visit_keys.append((spec.client_id, target_id))
                    gate_clients.append(spec.client_id)
                    if not spec.initiated_by_admin and not spec.allow_conflicts:
                        undo_guards.add(spec.client_id)
                elif isinstance(spec, CancelClientSpec):
                    for run in self.graph.client_runs(spec.client_id):
                        run_seeds.append(run.run_id)
                        cancel_run_ids.append(run.run_id)
                    for visit in self.graph.client_visits(spec.client_id):
                        cancel_visit_keys.append((spec.client_id, visit.visit_id))
                    gate_clients.append(spec.client_id)
                elif isinstance(spec, DbFixSpec):
                    # Footprint known only after execution: run with
                    # propagation deferred, seed clustering from the
                    # collected keys, replay the notes post-planning.
                    deferred: List[Tuple[str, Set, int, bool]] = []
                    self._pending_damage = deferred
                    try:
                        self.reexec_statement(
                            spec.sql, tuple(spec.params), spec.ts, original=None
                        )
                    finally:
                        self._pending_damage = None
                    stmt_keys: Set[Tuple[str, str, object]] = set()
                    stmt_tables: Set[str] = set()
                    for table, keys, _mod_ts, whole_table in deferred:
                        if whole_table:
                            stmt_tables.add(table)
                        for key in keys:
                            full = key if len(key) == 3 else (table,) + tuple(key)
                            stmt_keys.add(full)
                    key_seed_groups.append(
                        (
                            sorted(stmt_keys, key=repr),
                            sorted(stmt_tables),
                            spec.ts,
                        )
                    )
                    deferred_all.extend(deferred)
                else:
                    raise RepairError(
                        f"cannot execute repair spec of kind "
                        f"{getattr(spec, 'kind', '?')!r}"
                    )
            groups = self._plan_groups(
                run_seeds=run_seeds, key_seed_groups=key_seed_groups
            )
            if self.server.gate is not None:
                for client_id in gate_clients:
                    self.server.gate.note_client(client_id)
            # Cancels before escalations: a run that is both canceled and
            # patch-damaged stays canceled (matching sequential repairs,
            # where the cancel's undo wins regardless of order because a
            # canceled run is never re-executed).
            seen_cancel: Set[int] = set()
            for run_id in cancel_run_ids:
                if run_id in seen_cancel:
                    continue
                seen_cancel.add(run_id)
                run = self.graph.runs.get(run_id)
                if run is None:
                    continue
                self._g = self._run_home.get(run_id, groups[0])
                self.cancel_run(run)
            for client_id, visit_id in cancel_visit_keys:
                home = self._client_home.get(client_id, groups[0])
                home.visit_state[(client_id, visit_id)] = "canceled"
            for run_id in escalate_runs:
                self._g = self._run_home.get(run_id, groups[0])
                self._escalate(run_id)
            for table, keys, mod_ts, whole_table in deferred_all:
                self._g = self._group_covering(groups, table, keys, whole_table)
                self._note_modification(table, keys, mod_ts, whole_table)
            self._g = groups[0]
            self.stats.timer.pop()
            self._process()
            if undo_guards:
                created = self._repair_conflicts()
                others = {
                    c.client_id for c in created if c.client_id not in undo_guards
                }
                if others:
                    self._revert_staged_patches(staged_patches)
                    self._abort()
                    return self._result(
                        started, graph_before, aborted=True, conflicts=created
                    )
            # Commit point: the retroactive patches really happened —
            # journal their durable records just before the switch.
            for file, new_version, apply_ts in staged_patches:
                self.graph.add_patch(
                    PatchRecord(
                        file=file, new_version=new_version, apply_ts=apply_ts
                    )
                )
            self._finalize()
        except Exception:
            # Pre-switch failures (raising scripts, cancel) roll the whole
            # batch back, staged code versions included; a post-switch
            # failure is already committed and keeps them.
            pre_switch = self.ttdb.repair_gen is not None
            self.post_switch_failure = not pre_switch
            self._unwind_failed_repair()
            if pre_switch:
                self._revert_staged_patches(staged_patches)
            raise
        return self._result(started, graph_before, aborted=False)

    def _revert_staged_patches(
        self, staged_patches: List[Tuple[str, int, int]]
    ) -> None:
        for file, new_version, _apply_ts in reversed(staged_patches):
            self.scripts.revert_patch(file, new_version)

    def _group_covering(self, groups, table, keys, whole_table):
        """Home group for a deferred db-fix modification: the component
        whose coverage holds the statement's keys (each statement seeded
        exactly one build, so first match is the only match)."""
        for group in groups:
            if not group.scoped:
                continue
            if whole_table and table in group.covered_tables:
                return group
            for key in keys:
                full = key if len(key) == 3 else (table,) + tuple(key)
                if group.covers(full):
                    return group
        return groups[0]

    def _result(
        self,
        started: float,
        graph_before: float,
        aborted: bool,
        conflicts: Optional[List[Conflict]] = None,
    ) -> RepairResult:
        self.stats.total_seconds = _time.perf_counter() - started
        self.stats.graph_seconds = self.graph.graph_load_seconds - graph_before
        self.stats.total_visits = self.graph.n_visits
        self.stats.total_runs = self.graph.n_runs
        self.stats.total_queries = self.graph.n_queries
        # Repair-scoped conflict accounting: only conflicts *this* repair
        # created count (and, for an aborted undo, the list captured before
        # the abort resolved them) — stale conflicts queued by an earlier
        # repair belong to that repair's report, not this one's.
        repair_conflicts = (
            list(conflicts) if conflicts is not None else self._repair_conflicts()
        )
        self.stats.conflicts = len(repair_conflicts)
        attributed = 0
        scoped_any = False
        for group in self._groups:
            if not group.scoped:
                continue
            scoped_any = True
            row = group.describe()
            row["conflicts"] = sum(
                1 for c in repair_conflicts if c.client_id in group.clients
            )
            attributed += row["conflicts"]
            self.stats.groups.append(row)
            self.stats.escaped_keys += group.escaped_keys
            self.stats.clusters_seconds += group.index_build_seconds
        if self.server.gate is not None:
            gate_stats = self.server.gate.stats
            self.stats.gate = {
                "served": gate_stats.served,
                "queued": gate_stats.queued,
                "applied": gate_stats.applied,
                "apply_errors": gate_stats.apply_errors,
            }
        if scoped_any and attributed < len(repair_conflicts):
            # Conflicts for orphan clients (reached only through escaped
            # propagation) belong to no component; record them so the
            # per-group fold-in still reconciles with stats.conflicts.
            self.stats.groups.append(
                {"group": 0, "orphan": True, "conflicts": len(repair_conflicts) - attributed}
            )
        return RepairResult(
            ok=not aborted,
            aborted=aborted,
            stats=self.stats,
            conflicts=repair_conflicts,
        )

    # ------------------------------------------------------------------ lifecycle

    def _begin(self) -> None:
        if self._active:
            raise RepairError("repair already in progress")
        self._emit("phase_started", phase="init")
        self.ttdb.begin_repair()
        self.server.repair_active = True
        self.server.pending_during_repair = []
        self._active = True
        # Conflicts pending from earlier repairs are out of scope for this
        # one: they must survive an abort and never trigger one.
        self._prior_conflict_ids = {id(c) for c in self.conflicts.pending()}
        if self.server.gate is not None:
            # Gate everything until the damage components are planned.
            self.server.gate.begin()

    def _repair_conflicts(self) -> List[Conflict]:
        """Unresolved conflicts created by *this* repair."""
        return [
            c
            for c in self.conflicts.pending()
            if id(c) not in self._prior_conflict_ids
        ]

    def _plan_groups(
        self,
        run_seeds=(),
        key_seeds=(),
        full_table_seeds=(),
        damage_ts: int = 0,
        key_seed_groups=(),
    ) -> List[RepairGroup]:
        """Split the damage set into repair groups (honoring cluster_mode).

        Always returns at least one group; with clustering off (or an empty
        damage set) that is the controller's global-scope worklist."""
        run_seeds = list(run_seeds)
        key_seed_groups = list(key_seed_groups)
        global_group = self._groups[0]
        if self.cluster_mode == "off" or not (
            run_seeds or key_seeds or full_table_seeds or key_seed_groups
        ):
            global_group.seed_runs.extend(run_seeds)
            self._sync_gate_scope([global_group])
            self._emit("groups_planned", n_groups=0, futile=False)
            return [global_group]
        started = _time.perf_counter()
        try:
            groups = compute_repair_groups(
                self.graph,
                run_seeds=run_seeds,
                key_seeds=key_seeds,
                full_table_seeds=full_table_seeds,
                damage_ts=damage_ts,
                key_seed_groups=key_seed_groups,
            )
        except ClusteringFutile:
            groups = []
        self.stats.clusters_seconds += _time.perf_counter() - started
        if not groups:
            # Clustering was futile (the damage component spans most of the
            # workload): keep the monolithic worklist and its global index.
            global_group.seed_runs.extend(run_seeds)
            self._sync_gate_scope([global_group])
            self._emit("groups_planned", n_groups=0, futile=True)
            return [global_group]
        self._groups = groups
        self._g = groups[0]
        self.stats.n_groups = len(groups)
        for group in groups:
            for run_id in group.run_ids or ():
                self._run_home[run_id] = group
            for client_id in group.clients:
                self._client_home[client_id] = group
        self._sync_gate_scope(groups)
        self._emit("groups_planned", n_groups=len(groups), futile=False)
        return groups

    def _sync_gate_scope(self, groups) -> None:
        """Shrink the online gate from own-everything to the planned
        components' partitions/clients (no-op without a gate; an unscoped
        group keeps the gate fully conservative)."""
        if self.server.gate is not None:
            self.server.gate.set_scope(groups)

    def _process(self) -> None:
        self._emit("phase_started", phase="process")
        scoped = [group for group in self._groups if group.scoped]
        if self.cluster_mode == "parallel" and len(scoped) > 1:
            self._process_parallel()
        else:
            ordered = sorted(
                self._groups, key=lambda g: (g.first_damage_ts, g.group_id)
            )
            # Escaped propagation can feed a group that already drained (its
            # damage reached a query of an earlier group): keep sweeping until
            # every heap settles.  Per-group qid dedup bounds the loop.
            while any(group.heap for group in ordered):
                for group in ordered:
                    if group.heap:
                        self._process_group(group)
        # Progress contract: exactly one group_done per scoped group per
        # repair — including groups whose heap was empty from the start.
        for group in scoped:
            self._emit_group_done(group)

    def _emit_group_done(self, group: RepairGroup) -> None:
        if not group.scoped or group.done_emitted or group.heap:
            return
        group.done_emitted = True
        self._emit(
            "group_done",
            group=group.group_id,
            counters=dict(group.counters),
            seconds=round(group.seconds, 6),
        )

    def _process_group(self, group: RepairGroup) -> None:
        started = _time.perf_counter()
        previous = self._g
        self._g = group
        try:
            while group.heap:
                _, _, kind, payload = heapq.heappop(group.heap)
                self._dispatch(kind, payload)
                if self.step_hook is not None:
                    self.step_hook()
        finally:
            self._g = previous
            group.seconds += _time.perf_counter() - started
        self._emit_group_done(group)

    def _process_parallel(self) -> None:
        """One worker per group; item execution serialized by a controller
        lock (the runtime, database and stats are shared).  On escape-free
        repairs the groups are independent components, so the cross-group
        interleaving cannot change the outcome — this is the structural
        scaffold that later sharded/multi-process repair slots into."""
        lock = threading.Lock()
        errors: List[BaseException] = []

        def drain(group: RepairGroup) -> None:
            while True:
                with lock:
                    if errors or not group.heap:
                        return
                    started = _time.perf_counter()
                    self._g = group
                    _, _, kind, payload = heapq.heappop(group.heap)
                    try:
                        self._dispatch(kind, payload)
                        if self.step_hook is not None:
                            self.step_hook()
                    except BaseException as exc:  # re-raised on the caller
                        errors.append(exc)
                    finally:
                        group.seconds += _time.perf_counter() - started

        # Sweep until every heap settles: escaped propagation may refill a
        # group whose worker already exited.
        while True:
            threads = [
                threading.Thread(target=drain, args=(group,), daemon=True)
                for group in self._groups
                if group.heap
            ]
            if not threads:
                break
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]

    def _dispatch(self, kind: str, payload) -> None:
        if self.cancel_requested:
            raise RepairCanceled("repair job canceled by administrator")
        if kind == "query":
            self._process_query(payload)
        elif kind == "run":
            self._process_run(payload)
        elif kind == "visit":
            self._process_visit(payload)

    def _run_state_anywhere(self, run_id: int) -> Optional[str]:
        for group in self._groups:
            state = group.run_state.get(run_id)
            if state is not None:
                return state
        return None

    # Escaped propagation can hand a group a *foreign* run — one outside
    # its static component.  State checks for foreign runs must consult
    # every group (the run's home group may already have re-executed,
    # replayed, or conflict-silenced it); member runs keep the group-local
    # fast path, which is also exactly the monolithic behavior for the
    # global-scope group.

    def _effective_run_state(self, run_id: int) -> Optional[str]:
        group = self._g
        state = group.run_state.get(run_id)
        if state is not None or group.member_run(run_id):
            return state
        home = self._run_home.get(run_id)
        if home is not None:
            return home.run_state.get(run_id)
        # Orphan run (no home group): any escaping group may have touched it.
        return self._run_state_anywhere(run_id)

    def _effective_visit_state(self, client_id, visit_id) -> Optional[str]:
        group = self._g
        key = (client_id, visit_id)
        state = group.visit_state.get(key)
        if state is not None or not group.scoped or client_id in group.clients:
            return state
        home = self._client_home.get(client_id)
        if home is not None:
            return home.visit_state.get(key)
        for other in self._groups:
            state = other.visit_state.get(key)
            if state is not None:
                return state
        return None

    def _client_conflicted(self, client_id) -> bool:
        group = self._g
        if client_id in group.conflicted_clients:
            return True
        if client_id is None or not group.scoped or client_id in group.clients:
            return False
        home = self._client_home.get(client_id)
        if home is not None:
            return client_id in home.conflicted_clients
        return any(client_id in other.conflicted_clients for other in self._groups)

    def _finalize(self) -> None:
        self._emit("phase_started", phase="finalize")
        # Briefly suspend: new arrivals block (or 503 without a gate) and
        # in-flight requests drain, so the pending re-application below
        # sees a stable run list and the switch is atomic per-request.
        self.server.begin_switch()
        try:
            # Re-apply requests that arrived while repair was running
            # (§4.3), in a fresh global-scope worklist context (they are
            # new traffic, not members of any damage component).  Contract:
            # re-application happens in arrival-timestamp order — the list
            # is appended by request threads (and, under cluster_mode
            # "parallel", interleaved across groups' step hooks), so list
            # order carries no guarantee.
            pending_group = RepairGroup(-1, mods=self.mods)
            self._groups.append(pending_group)
            self._g = pending_group
            pending = [
                run
                for run in (
                    self.graph.runs.get(run_id)
                    for run_id in list(self.server.pending_during_repair)
                )
                if run is not None
            ]
            pending.sort(key=lambda run: (run.ts_start, run.run_id))
            for run in pending:
                if self._run_state_anywhere(run.run_id) in ("done", "canceled"):
                    continue
                if self._inputs_changed(run):
                    self._reexec_run(run, run.request, conflict_on_change=False)
            # Switch generations and fold the repaired records back in.
            self.ttdb.finalize_repair()
            self._merge_replacements()
            self.server.repair_active = False
            self._active = False
        finally:
            self.server.end_switch()
        for client_id in self.replayer.diverged_clients:
            self.server.cookie_invalidation.add(client_id)
        # Queued requests re-apply against the repaired, now-live
        # generation — each exactly once, in arrival order.
        self._drain_gate_queue()
        self._emit("finalized", generation=self.ttdb.current_gen)

    def _unwind_failed_repair(self) -> None:
        """A raising script propagates out of the entry point: abort the
        half-mutated repair generation (so the live state is untouched and
        a retry with fixed code simply works) and unwind the server flags —
        otherwise live traffic queues behind a dead repair and every later
        ``begin_repair`` fails with "already active"."""
        self.server.end_switch()
        if self.ttdb.repair_gen is not None:
            self._abort()
        else:
            # The failure happened after the generation switch (finalize):
            # nothing to abort, just release the flags and serve the queue.
            self.server.repair_active = False
            self._active = False
            self._drain_gate_queue()

    def _abort(self) -> None:
        self.ttdb.abort_repair()
        # Resolve only the conflicts this repair created: stale conflicts
        # queued for users who have not logged in yet belong to an earlier,
        # *finalized* repair and must survive.
        for conflict in self._repair_conflicts():
            self.conflicts.resolve(conflict)
        self.server.repair_active = False
        self._active = False
        # Requests queued behind the aborted repair still deserve service —
        # the live generation they now run against was never touched.
        self._drain_gate_queue()
        self._emit("aborted")

    def _drain_gate_queue(self) -> None:
        """Serve every request the gate queued, in arrival order, exactly
        once.  A queued script that raises is recorded as a 500 on its
        ticket and consumed — it must not wedge the finalize path or
        starve the tickets behind it.  The gate stays active until the
        queue is empty (see ``RepairGate.pop_next``), so the drain runs
        ungated."""
        gate = self.server.gate
        if gate is None:
            return
        while True:
            entry = gate.pop_next()
            if entry is None:
                return
            try:
                response = self.server.handle(entry.request, bypass_gate=True)
            except Exception as exc:
                gate.record_failed(
                    entry, f"script raised during queued re-application: {exc!r}"
                )
                continue
            gate.record_applied(entry, response)

    def _merge_replacements(self) -> None:
        """Fold re-executed runs back into the action history graph so the
        graph describes the repaired timeline (enables follow-up repairs)."""
        for old_id, new_record in self._replacements.items():
            old = self.graph.runs.get(old_id)
            if old is None:
                continue
            new_record.run_id = old_id
            for query in new_record.queries:
                query.run_id = old_id
            new_record.client_id = old.client_id
            new_record.visit_id = old.visit_id
            new_record.request_id = old.request_id
            new_record.ts_start = old.ts_start
            new_record.ts_end = max(old.ts_end, new_record.ts_end)
            self.graph.replace_run(old_id, new_record)
        self.graph.add_runs(self._new_runs)
        if self._replacements:
            self.graph.invalidate_partition_indexes()

    # ------------------------------------------------------------------ scheduling

    def _bump(self, name: str, n: int = 1) -> None:
        """Increment a re-execution counter on the shared stats and on the
        active group's fold-in row."""
        setattr(self.stats, name, getattr(self.stats, name) + n)
        counters = self._g.counters
        if name in counters:
            counters[name] += n

    def _schedule(self, ts: int, kind: str, payload) -> None:
        self._g.schedule(ts, kind, payload)

    def _escalate(self, run_id: int) -> None:
        """A run's inputs (or outputs) changed: queue it for re-execution,
        at the browser level when a client-side log exists."""
        group = self._g
        run = self.graph.runs.get(run_id)
        if run is None or self._effective_run_state(run_id) in (
            "queued",
            "done",
            "canceled",
        ):
            return
        visit = self.graph.visit_of_run(run)
        if self._client_conflicted(run.client_id):
            # §5.4: after a conflict, this browser is no longer replayed —
            # its requests are assumed unchanged, so affected runs
            # re-execute server-side with the recorded request.
            group.run_state[run_id] = "queued"
            self._schedule(run.ts_start, "run", run)
            return
        if self.replayer.can_replay(visit):
            # Replay must start at the visit whose *events* generated this
            # request: a form POST's parameters come from replaying the
            # parent form page's DOM events (that is how merged text and
            # fresh CSRF tokens flow into the re-executed request).
            for candidate in self._replay_chain(visit):
                key = (candidate.client_id, candidate.visit_id)
                state = self._effective_visit_state(*key)
                if state == "queued":
                    return
                if state is None:
                    group.visit_state[key] = "queued"
                    self._schedule(candidate.ts, "visit", candidate)
                    return
            # Entire chain already replayed: fall through to the run level.
        group.run_state[run_id] = "queued"
        self._schedule(run.ts_start, "run", run)

    def _replay_chain(self, visit: VisitRecord) -> List[VisitRecord]:
        """Ancestors of ``visit`` whose events drive its navigation, topmost
        first, ending with ``visit`` itself."""
        chain = [visit]
        current = visit
        while current.parent_visit is not None:
            parent = self.graph.visits.get((visit.client_id, current.parent_visit))
            if parent is None or not parent.events:
                break
            chain.append(parent)
            current = parent
        chain.reverse()
        return chain

    def note_visit_replayed(self, client_id: str, visit_id: int) -> None:
        """Called by the replay session when a visit gets mapped into a
        clone: its standalone queue entry (if any) must become a no-op."""
        group = self._g
        key = (client_id, visit_id)
        group.visit_state[key] = "done"
        if key not in group.counted_visits:
            group.counted_visits.add(key)
            self._bump("visits_reexecuted")

    # ------------------------------------------------------------------ worklist items

    def _process_query(self, query: QueryRecord) -> None:
        group = self._g
        run_state = self._effective_run_state(query.run_id)
        if run_state in ("queued", "done", "canceled"):
            return
        run = self.graph.runs.get(query.run_id)
        if run is None or run.canceled:
            return
        if run.client_id is not None and self._effective_visit_state(
            run.client_id, run.visit_id
        ) in (
            "queued",
            "done",
            "conflict",
            "canceled",
        ):
            return
        affected = group.mods.affects(query.read_set, query.ts) or (
            query.is_write
            and group.mods.affects_keys(
                query.table, query.written_partitions, query.ts
            )
        )
        if not affected:
            return
        self.stats.timer.push("db")
        result = self.reexec_statement(query.sql, query.params, query.ts, query)
        self.stats.timer.pop()
        if result.result.snapshot() != query.snapshot:
            self._escalate(query.run_id)

    def _process_run(self, run: AppRunRecord) -> None:
        if self._effective_run_state(run.run_id) in ("done", "canceled"):
            return
        already_conflicted = self._client_conflicted(run.client_id)
        self._reexec_run(run, run.request, conflict_on_change=not already_conflicted)

    def _process_visit(self, visit: VisitRecord) -> None:
        group = self._g
        key = (visit.client_id, visit.visit_id)
        if self._effective_visit_state(*key) == "done":
            return
        if self._client_conflicted(visit.client_id):
            return
        group.visit_state[key] = "done"
        self.stats.timer.push("firefox")
        self.replayer.replay_visit(visit)
        self.stats.timer.pop()

    # ------------------------------------------------------------------ query re-execution

    def reexec_statement(
        self,
        sql: str,
        params: Tuple[object, ...],
        ts: int,
        original: Optional[QueryRecord],
    ) -> TTResult:
        """Re-execute one statement at historical time ``ts``.

        Writes use two-phase re-execution (§4.2): find the rows the new
        WHERE clause matches, roll back original ∪ new rows to just before
        ``ts``, then execute.
        """
        self._bump("queries_reexecuted")
        stmt = parse(sql)
        if not ast.is_write(stmt):
            return self.ttdb.execute_at(sql, params, ts)

        table = stmt.table  # type: ignore[attr-defined]
        targets: Set[Tuple[str, int]] = set()
        forced: Tuple[int, ...] = ()
        if original is not None:
            targets |= set(original.written_row_ids)
            if original.kind == "insert":
                forced = tuple(rid for _, rid in original.written_row_ids)
        if isinstance(stmt, (ast.Update, ast.Delete)):
            for row_id in self.ttdb.matching_row_ids(sql, params, max(ts - 1, 0)):
                targets.add((table, row_id))
        touched = set()
        for target_table, row_id in targets:
            touched |= self.ttdb.rollback_row(target_table, row_id, ts)
        result = self.ttdb.execute_at(sql, params, ts, forced_row_ids=forced)
        keys = touched | set(result.result.written_partitions)
        if original is not None:
            keys |= set(original.written_partitions)
        self._note_modification(table, keys, ts, whole_table=result.full_table_write)
        return result

    def undo_query(self, query: QueryRecord) -> None:
        """Roll back one original write that the repaired run never issued."""
        touched = set()
        for table, row_id in query.written_row_ids:
            touched |= self.ttdb.rollback_row(table, row_id, query.ts)
        touched |= set(query.written_partitions)
        self._note_modification(query.table, touched, query.ts, query.full_table_write)

    def cancel_run(self, run: AppRunRecord) -> None:
        """Undo every write of a canceled request (paper §5.4, §5.5)."""
        group = self._g
        if self._effective_run_state(run.run_id) == "canceled":
            return
        group.run_state[run.run_id] = "canceled"
        self.graph.mark_run_canceled(run.run_id)
        self._bump("runs_canceled")
        for query in run.queries:
            if query.is_write:
                self.undo_query(query)

    def _note_modification(
        self, table: str, keys, ts: int, whole_table: bool = False
    ) -> None:
        if self._pending_damage is not None:
            # Staging a retroactive fix: collect the damage footprint,
            # cluster first, propagate after.  Replaying the deferred notes
            # records them into the chosen group's mods *and* the
            # repair-wide union, so nothing is recorded here.
            if keys or whole_table:
                self._pending_damage.append((table, set(keys), ts, whole_table))
            return
        group = self._g
        targets = [group.mods]
        if group.mods is not self.mods:
            targets.append(self.mods)
        for mods in targets:
            if whole_table:
                mods.record_all(table, ts)
            if keys:
                mods.record(table, keys, ts)
        if not keys and not whole_table:
            return
        if self.server.gate is not None:
            # Re-execution escaped the static footprint (or a retroactive
            # fix's partitions just became known): widen the gate so new
            # traffic conflicts with the freshly repaired partitions too.
            self.server.gate.note_modification(table, keys, whole_table)
        self._propagate(table, keys, ts, whole_table)

    def _home_group(self, run_id: int) -> Optional[RepairGroup]:
        return self._run_home.get(run_id)

    def _propagate(self, table: str, keys, ts: int, whole_table: bool) -> None:
        group = self._g
        if group.scoped:
            self._broadcast_escaped_mods(group, table, keys, ts, whole_table)
        candidates = group.queries_touching(self.graph, table, keys, ts, whole_table)
        for query in candidates:
            qid = query.qid
            if group.member_run(query.run_id):
                target = group
            else:
                # Escaped past the static component: route the query to its
                # home group so it is evaluated once, in its own worklist's
                # time order, against its own group's modification state.
                target = self._home_group(query.run_id)
                if target is None:
                    # Untainted run (no home): evaluate here, deduped
                    # controller-wide so two escaping groups cannot both
                    # schedule it.
                    if qid in self._orphan_qids:
                        continue
                    self._orphan_qids.add(qid)
                    target = group
            if qid in target.scheduled_qids:
                continue
            target.scheduled_qids.add(qid)
            target.schedule(query.ts, "query", query)

    def _broadcast_escaped_mods(
        self, group: RepairGroup, table: str, keys, ts: int, whole_table: bool
    ) -> None:
        """A modification outside the group's static footprint must be
        visible to every other group's affects-gating (their queries may
        read it); the repair-wide union in ``self.mods`` already has it for
        finalize-time checks.  Escapes are rare, so the fan-out is cheap."""
        uncovered = [
            key if len(key) == 3 else (table,) + tuple(key)
            for key in keys
            if not group.covers(key if len(key) == 3 else (table,) + tuple(key))
        ]
        escaped_whole = whole_table and table not in group.covered_tables
        if not uncovered and not escaped_whole:
            return
        for other in self._groups:
            if other is group or not other.scoped:
                continue
            if escaped_whole:
                other.mods.record_all(table, ts)
            if uncovered:
                other.mods.record(table, uncovered, ts)

    # ------------------------------------------------------------------ run re-execution

    def _reexec_run(
        self,
        run: AppRunRecord,
        request: HttpRequest,
        conflict_on_change: bool,
    ) -> HttpResponse:
        group = self._g
        self.stats.timer.push("app")
        script_name = self.server.script_for(request.path)
        if script_name is None:
            group.run_state[run.run_id] = "done"
            self.stats.timer.pop()
            return HttpResponse(status=404, body=f"no route for {request.path}")
        if self.use_nondet_replay:
            nondet = NondetReplayer(run.nondet, self.runtime.nondet_source)
        else:
            nondet = NondetReplayer([], self.runtime.nondet_source)
        runner = RepairQueryRunner(self, run)
        try:
            response, record = self.runtime.execute(
                script_name,
                request,
                query_runner=runner,
                nondet=nondet,
                ts_start=run.ts_start,
            )
        except Exception as exc:
            # A script that raises mid-repair must not leave the run marked
            # "done" over a half-mutated generation: record the failure as
            # a conflict for the affected user and re-raise so the caller
            # can abort the repair generation cleanly.
            group.run_state[run.run_id] = "failed"
            self.stats.timer.pop()
            self.report_conflict_for_run(
                run, f"script raised during repair re-execution: {exc!r}"
            )
            raise
        group.run_state[run.run_id] = "done"
        runner.undo_unmatched()
        self._bump("runs_reexecuted")
        self.stats.nondet_misses += nondet.misses
        self._replacements[run.run_id] = record
        self.stats.timer.pop()

        if response.key() != run.response.key() and conflict_on_change:
            # The browser that received this response cannot be replayed
            # (no client-side log): inform the user via a queued conflict.
            if run.client_id is not None:
                self.report_conflict_for_run(
                    run, "response changed but no browser log is available"
                )
        return response

    def _exec_new_run(self, request: HttpRequest, ts: int) -> HttpResponse:
        """Execute a request the original timeline never saw (a replayed
        page navigated somewhere new)."""
        script_name = self.server.script_for(request.path)
        if script_name is None:
            return HttpResponse(status=404, body=f"no route for {request.path}")
        self.stats.timer.push("app")
        empty = AppRunRecord(
            run_id=0,
            ts_start=ts,
            ts_end=ts,
            script=script_name,
            loaded_files={},
            request=request,
            response=HttpResponse(),
        )
        runner = RepairQueryRunner(self, empty)
        response, record = self.runtime.execute(
            script_name, request, query_runner=runner, ts_start=ts
        )
        self._bump("runs_reexecuted")
        self._new_runs.append(record)
        self.stats.timer.pop()
        return response

    # ------------------------------------------------------------------ replay transport

    def handle_replay_request(
        self, session, origin: str, request: HttpRequest
    ) -> HttpResponse:
        """Requests issued by the server-side re-execution browser."""
        if origin != self.server.origin:
            # Third-party origins (the attacker's site) are fetched live.
            return self.network.request(origin, request)
        clone_visit_id = request.visit_id or 0
        run, ts = session.match_request(clone_visit_id, request)
        if run is None:
            return self._exec_new_run(request, ts)
        group = self._g
        state = self._effective_run_state(run.run_id)
        if state == "done":
            replacement = self._replacements.get(run.run_id)
            return replacement.response if replacement else run.response
        if state == "canceled":
            return HttpResponse(status=410, body="request was canceled by repair")
        if (
            self.use_pruning
            and request.key() == run.request.key()
            and not self._inputs_changed(run)
        ):
            # Prune: identical request with unchanged inputs (§5.3).
            group.run_state[run.run_id] = "done"
            self._bump("runs_pruned")
            return run.response
        return self._reexec_run(run, request, conflict_on_change=False)

    def _inputs_changed(self, run: AppRunRecord) -> bool:
        for file, version in run.loaded_files.items():
            if self.scripts.version(file) != version:
                return True
        for query in run.queries:
            if self.mods.affects(query.read_set, query.ts):
                return True
            if query.is_write and self.mods.affects_keys(
                query.table, query.written_partitions, query.ts
            ):
                return True
        return False

    # ------------------------------------------------------------------ conflicts

    def report_conflict(self, visit: VisitRecord, event: EventRecord, reason: str) -> None:
        # ignore_ids: a stale conflict from an earlier repair for the same
        # visit must not mask this repair's own conflict (the new one
        # drives this repair's abort check and result).
        self.conflicts.add(
            Conflict(
                client_id=visit.client_id,
                visit_id=visit.visit_id,
                url=visit.url,
                reason=reason,
                event_desc=f"{event.etype} on {event.xpath}",
            ),
            ignore_ids=self._prior_conflict_ids,
        )
        self._g.visit_state[(visit.client_id, visit.visit_id)] = "conflict"
        self._g.conflicted_clients.add(visit.client_id)
        self._emit(
            "conflict_found",
            client_id=visit.client_id,
            visit_id=visit.visit_id,
            reason=reason,
        )

    def report_conflict_for_run(self, run: AppRunRecord, reason: str) -> None:
        self.conflicts.add(
            Conflict(
                client_id=run.client_id or "?",
                visit_id=run.visit_id or 0,
                url=run.request.path,
                reason=reason,
            ),
            ignore_ids=self._prior_conflict_ids,
        )
        if run.client_id is not None:
            self._g.conflicted_clients.add(run.client_id)
        self._emit(
            "conflict_found",
            client_id=run.client_id or "?",
            visit_id=run.visit_id or 0,
            reason=reason,
        )
