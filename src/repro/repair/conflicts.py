"""Conflict queueing and resolution (paper §5.4).

When browser replay cannot re-apply a user's original input — the target
element is gone, the text merge overlaps the attacker's changes, or no
browser log exists at all — WARP queues a conflict and proceeds, assuming
the user's subsequent requests are unchanged.  When the user next logs in,
the application redirects them to a resolution page; the only resolution
our prototype offers (like the paper's) is *cancel the page visit*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set


@dataclass
class Conflict:
    """One queued conflict for one user's page visit."""

    client_id: str
    visit_id: int
    url: str
    reason: str
    #: Human-readable description of the event that failed to replay.
    event_desc: str = ""
    resolved: bool = False

    def to_dict(self) -> dict:
        return {
            "client_id": self.client_id,
            "visit_id": self.visit_id,
            "url": self.url,
            "reason": self.reason,
            "event_desc": self.event_desc,
            "resolved": self.resolved,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Conflict":
        return cls(
            client_id=data["client_id"],
            visit_id=data["visit_id"],
            url=data["url"],
            reason=data["reason"],
            event_desc=data.get("event_desc", ""),
            resolved=data.get("resolved", False),
        )


class ConflictQueue:
    """All unresolved conflicts, indexed by client."""

    def __init__(self) -> None:
        self._conflicts: List[Conflict] = []

    def add(self, conflict: Conflict) -> None:
        # One conflict per (client, visit): replay stops at the first one.
        for existing in self._conflicts:
            if (
                not existing.resolved
                and existing.client_id == conflict.client_id
                and existing.visit_id == conflict.visit_id
            ):
                return
        self._conflicts.append(conflict)

    def pending(self, client_id: Optional[str] = None) -> List[Conflict]:
        return [
            c
            for c in self._conflicts
            if not c.resolved and (client_id is None or c.client_id == client_id)
        ]

    def pending_count(self, client_id: str) -> int:
        return len(self.pending(client_id))

    def clients_with_conflicts(self) -> Set[str]:
        return {c.client_id for c in self._conflicts if not c.resolved}

    def resolve(self, conflict: Conflict) -> None:
        conflict.resolved = True

    def clear(self) -> None:
        self._conflicts.clear()

    def all(self) -> List[Conflict]:
        return list(self._conflicts)

    def state_list(self) -> List[dict]:
        """Persistable image (unresolved conflicts must survive restart:
        they are queued for users who have not logged in yet)."""
        return [conflict.to_dict() for conflict in self._conflicts]

    def restore(self, items: List[dict]) -> None:
        self._conflicts = [Conflict.from_dict(item) for item in items]
