"""Conflict queueing and resolution (paper §5.4).

When browser replay cannot re-apply a user's original input — the target
element is gone, the text merge overlaps the attacker's changes, or no
browser log exists at all — WARP queues a conflict and proceeds, assuming
the user's subsequent requests are unchanged.  When the user next logs in,
the application redirects them to a resolution page; the only resolution
our prototype offers (like the paper's) is *cancel the page visit*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set


@dataclass
class Conflict:
    """One queued conflict for one user's page visit."""

    client_id: str
    visit_id: int
    url: str
    reason: str
    #: Human-readable description of the event that failed to replay.
    event_desc: str = ""
    resolved: bool = False

    def to_dict(self) -> dict:
        return {
            "client_id": self.client_id,
            "visit_id": self.visit_id,
            "url": self.url,
            "reason": self.reason,
            "event_desc": self.event_desc,
            "resolved": self.resolved,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Conflict":
        return cls(
            client_id=data["client_id"],
            visit_id=data["visit_id"],
            url=data["url"],
            reason=data["reason"],
            event_desc=data.get("event_desc", ""),
            resolved=data.get("resolved", False),
        )


class ConflictQueue:
    """All unresolved conflicts, indexed by client."""

    def __init__(self) -> None:
        self._conflicts: List[Conflict] = []

    def add(self, conflict: Conflict, ignore_ids: Optional[Iterable[int]] = None) -> None:
        """Queue a conflict.  One conflict per (client, visit): replay stops
        at the first one.  ``ignore_ids`` (object ids) excludes conflicts
        from the dedup — the repair controller passes its pre-repair
        snapshot so a *stale* conflict left by an earlier repair never
        masks a genuinely new conflict for the same visit (the new one must
        be visible to this repair's abort check and result)."""
        skip = frozenset(ignore_ids) if ignore_ids is not None else frozenset()
        for existing in self._conflicts:
            if (
                not existing.resolved
                and id(existing) not in skip
                and existing.client_id == conflict.client_id
                and existing.visit_id == conflict.visit_id
            ):
                return
        self._conflicts.append(conflict)

    def resolve_visit(self, client_id: str, visit_id: int) -> int:
        """Resolve every pending conflict for one (client, visit) — used
        when the visit itself is canceled, which moots all of them (they
        may span repairs).  Returns how many were resolved."""
        resolved = 0
        for conflict in self._conflicts:
            if (
                not conflict.resolved
                and conflict.client_id == client_id
                and conflict.visit_id == visit_id
            ):
                conflict.resolved = True
                resolved += 1
        return resolved

    def pending(self, client_id: Optional[str] = None) -> List[Conflict]:
        return [
            c
            for c in self._conflicts
            if not c.resolved and (client_id is None or c.client_id == client_id)
        ]

    def pending_count(self, client_id: str) -> int:
        return len(self.pending(client_id))

    def clients_with_conflicts(self) -> Set[str]:
        return {c.client_id for c in self._conflicts if not c.resolved}

    def resolve(self, conflict: Conflict) -> None:
        conflict.resolved = True

    def clear(self) -> None:
        self._conflicts.clear()

    def all(self) -> List[Conflict]:
        return list(self._conflicts)

    def state_list(self) -> List[dict]:
        """Persistable image (unresolved conflicts must survive restart:
        they are queued for users who have not logged in yet)."""
        return [conflict.to_dict() for conflict in self._conflicts]

    def restore(self, items: List[dict]) -> None:
        self._conflicts = [Conflict.from_dict(item) for item in items]
