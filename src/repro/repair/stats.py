"""Repair statistics: re-execution counts and phase timing.

Mirrors the columns of the paper's Tables 7 and 8: how many page visits,
application runs and SQL queries were re-executed (out of the totals in
the workload), and where wall-clock time went — repair initialization,
action-history-graph loading, browser ("Firefox") re-execution, standalone
database query re-execution, application re-execution, and controller
overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


class PhaseTimer:
    """Nested wall-clock accounting: inner phases don't double-count."""

    def __init__(self) -> None:
        self.buckets: Dict[str, float] = {}
        self._stack: List[List] = []  # [name, started_at, child_time]

    def push(self, name: str) -> None:
        self._stack.append([name, time.perf_counter(), 0.0])

    def pop(self) -> None:
        name, started, child_time = self._stack.pop()
        elapsed = time.perf_counter() - started
        self.buckets[name] = self.buckets.get(name, 0.0) + (elapsed - child_time)
        if self._stack:
            self._stack[-1][2] += elapsed

    def get(self, name: str) -> float:
        return self.buckets.get(name, 0.0)


@dataclass
class RepairStats:
    """Everything a Table 7/8 row needs."""

    visits_reexecuted: int = 0
    runs_reexecuted: int = 0
    runs_pruned: int = 0
    runs_canceled: int = 0
    queries_reexecuted: int = 0
    nondet_misses: int = 0
    conflicts: int = 0
    total_visits: int = 0
    total_runs: int = 0
    total_queries: int = 0
    timer: PhaseTimer = field(default_factory=PhaseTimer)
    total_seconds: float = 0.0
    graph_seconds: float = 0.0
    #: Dependency-clustered repair (repro.repair.clusters): how many
    #: independent repair groups the damage set split into (0 = the
    #: monolithic global worklist), time spent discovering components and
    #: building group-scoped partition indexes, keys whose propagation had
    #: to fall back to the global index, and one counter row per group.
    n_groups: int = 0
    clusters_seconds: float = 0.0
    escaped_keys: int = 0
    groups: List[Dict[str, object]] = field(default_factory=list)
    #: Online-repair gate counters (repro.repair.gate): requests served
    #: live during the repair, queued with a ticket, re-applied after the
    #: switch, and apply-time script failures.  Empty without a gate.
    gate: Dict[str, int] = field(default_factory=dict)

    def breakdown(self) -> Dict[str, float]:
        """Named time buckets in the paper's Table 7 layout."""
        known = {
            "init": self.timer.get("init"),
            "graph": self.graph_seconds,
            "firefox": self.timer.get("firefox"),
            "db": self.timer.get("db"),
            "app": self.timer.get("app"),
        }
        accounted = sum(known.values())
        known["ctrl"] = max(0.0, self.total_seconds - accounted)
        known["total"] = self.total_seconds
        return known

    def to_dict(self) -> Dict[str, object]:
        """JSON image for the admin API and jobs journal."""
        return {
            "visits_reexecuted": self.visits_reexecuted,
            "runs_reexecuted": self.runs_reexecuted,
            "runs_pruned": self.runs_pruned,
            "runs_canceled": self.runs_canceled,
            "queries_reexecuted": self.queries_reexecuted,
            "nondet_misses": self.nondet_misses,
            "conflicts": self.conflicts,
            "total_visits": self.total_visits,
            "total_runs": self.total_runs,
            "total_queries": self.total_queries,
            "n_groups": self.n_groups,
            "clusters_seconds": round(self.clusters_seconds, 6),
            "escaped_keys": self.escaped_keys,
            "groups": [dict(row) for row in self.groups],
            "gate": dict(self.gate),
            "breakdown": {k: round(v, 6) for k, v in self.breakdown().items()},
        }

    def row(self) -> Dict[str, object]:
        """One bench-report row."""
        out: Dict[str, object] = {
            "visits": f"{self.visits_reexecuted} / {self.total_visits}",
            "runs": f"{self.runs_reexecuted} / {self.total_runs}",
            "queries": f"{self.queries_reexecuted} / {self.total_queries}",
            "conflicts": self.conflicts,
            "groups": self.n_groups,
        }
        out.update({k: round(v, 4) for k, v in self.breakdown().items()})
        return out


#: ``to_dict`` keys summed element-wise by :func:`merge_stats_dicts`.
_ADDITIVE_STAT_KEYS = (
    "visits_reexecuted",
    "runs_reexecuted",
    "runs_pruned",
    "runs_canceled",
    "queries_reexecuted",
    "nondet_misses",
    "conflicts",
    "total_visits",
    "total_runs",
    "total_queries",
    "n_groups",
    "clusters_seconds",
    "escaped_keys",
)


def merge_stats_dicts(per_shard: Dict[int, Dict[str, object]]) -> Dict[str, object]:
    """Merge per-shard ``RepairStats.to_dict()`` images into one
    distributed-repair report (repro.shard).

    Merge semantics (documented in DESIGN.md "Sharding"): counters and
    totals are **sums** — each shard re-executed a disjoint slice of a
    disjoint history, so addition double-counts nothing.  Time buckets
    are also sums (total machine-work), with wall-clock reported
    separately by the coordinator since shards repair concurrently.
    Group rows and gate counters keep their shard of origin so a merged
    report still answers "which shard did what".
    """
    merged: Dict[str, object] = {key: 0 for key in _ADDITIVE_STAT_KEYS}
    merged["groups"] = []
    merged["gate"] = {}
    merged["breakdown"] = {}
    merged["per_shard"] = sorted(per_shard)
    for shard_id in sorted(per_shard):
        stats = per_shard[shard_id]
        if not isinstance(stats, dict):
            continue
        for key in _ADDITIVE_STAT_KEYS:
            value = stats.get(key)
            if isinstance(value, (int, float)):
                merged[key] += value
        for row in stats.get("groups") or []:
            tagged = dict(row)
            tagged["shard"] = shard_id
            merged["groups"].append(tagged)
        for name, count in (stats.get("gate") or {}).items():
            key = f"shard{shard_id}.{name}"
            merged["gate"][key] = count
        for bucket, seconds in (stats.get("breakdown") or {}).items():
            if isinstance(seconds, (int, float)):
                merged["breakdown"][bucket] = round(
                    merged["breakdown"].get(bucket, 0.0) + seconds, 6
                )
    merged["clusters_seconds"] = round(merged["clusters_seconds"], 6)
    return merged
