"""Server-side browser re-execution (paper §5.3).

When repair determines a past HTTP response changed, the browser repair
manager spawns a *clone* of the user's browser on the server, loads the
same URL (through the repair transport, so requests are matched against
the originals and pruned or re-executed), and replays the recorded
DOM-level events — merging text input three-way and flagging conflicts.

The clone's cookies come from the visit's recorded pre-visit jar overlaid
with any divergence produced by earlier replays of the same client, which
implements "cookies are loaded either from the HTTP server's log ... or
from the last browser page re-executed for that client".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ahg.records import AppRunRecord, EventRecord, VisitRecord
from repro.browser.browser import Browser, PageVisit
from repro.browser.merge import MergeConflict, three_way_merge
from repro.browser.xpath import resolve_target
from repro.core.errors import ConflictError
from repro.http.message import (
    CLIENT_HEADER,
    REQUEST_HEADER,
    VISIT_HEADER,
    HttpRequest,
)


@dataclass
class ReplayConfig:
    """Browser re-execution feature switches (the Table 4 columns)."""

    #: False models users without the WARP extension: no replay at all.
    enabled: bool = True
    #: False disables three-way merge: typed input replays only onto an
    #: identical base value.
    text_merge: bool = True
    #: Optional application-provided *UI conflict function* (paper §5.4):
    #: given the original and repaired page bodies, return a reason string
    #: to flag a conflict even though all input replayed fine (e.g. a bank
    #: balance the user acted upon was shown wrong), or None to accept.
    ui_conflict_fn: Optional[object] = None


class CloneExtension:
    """Extension inside the server-side re-execution browser.

    Annotates requests with clone visit/request IDs so the repair transport
    can correlate them, and tells the session about new page visits so they
    can be matched to original visits.
    """

    def __init__(self, session: "ReplaySession") -> None:
        self.session = session

    def begin_visit(self, browser, visit, method: str, params: Dict[str, str]) -> None:
        self.session.register_clone_visit(visit, method, params)

    def note_cookies(self, browser, visit) -> None:
        pass

    def annotate(self, visit, request: HttpRequest) -> None:
        request_id = visit.next_request_id()
        request.headers[CLIENT_HEADER] = self.session.client_id
        request.headers[VISIT_HEADER] = str(visit.visit_id)
        request.headers[REQUEST_HEADER] = str(request_id)

    def record_event(self, visit, etype, element, data) -> None:
        pass


class ReplaySession:
    """Maps one client's clone browser activity onto the original log."""

    def __init__(self, client_id: str, controller) -> None:
        self.client_id = client_id
        self.controller = controller
        #: clone visit id -> original visit id (None = no counterpart).
        self.clone_to_orig: Dict[int, Optional[int]] = {}
        #: original visit id -> clone PageVisit
        self.orig_to_clone: Dict[int, PageVisit] = {}
        #: Pre-registered mapping for the next root visit the clone opens.
        self.pending_root: Optional[int] = None
        #: original visit id -> [(run, matched?)]
        self.run_matching: Dict[int, List[List]] = {}
        #: original visit ids where replay hit a conflict.
        self.conflicted: Set[int] = set()
        #: original visit ids replayed (mapped) in this session.
        self.mapped_orig_visits: List[int] = []
        self._ts_cursor: int = 0

    # -- visit mapping -----------------------------------------------------------

    def register_clone_visit(self, clone_visit: PageVisit, method: str, params) -> None:
        graph = self.controller.graph
        orig_id: Optional[int] = None
        if self.pending_root is not None:
            orig_id = self.pending_root
            self.pending_root = None
        else:
            parent_orig = self.clone_to_orig.get(clone_visit.parent_visit)
            if parent_orig is not None:
                orig_id = self._match_child_visit(parent_orig, clone_visit, method)
        self.clone_to_orig[clone_visit.visit_id] = orig_id
        if orig_id is not None:
            self.orig_to_clone[orig_id] = clone_visit
            self.mapped_orig_visits.append(orig_id)
            self._load_run_matching(orig_id)
            record = graph.visits.get((self.client_id, orig_id))
            if record is not None:
                self._ts_cursor = max(self._ts_cursor, record.ts)
            self.controller.note_visit_replayed(self.client_id, orig_id)

    def _match_child_visit(
        self, parent_orig: int, clone_visit: PageVisit, method: str
    ) -> Optional[int]:
        graph = self.controller.graph
        candidates = [
            record
            for record in graph.client_visits(self.client_id)
            if record.parent_visit == parent_orig
            and record.visit_id not in self.orig_to_clone
            and record.method == method
            and _same_path(record.url, clone_visit.path)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda record: record.ts).visit_id

    def _load_run_matching(self, orig_visit_id: int) -> None:
        if orig_visit_id in self.run_matching:
            return
        runs = self.controller.graph.runs_of_visit(self.client_id, orig_visit_id)
        self.run_matching[orig_visit_id] = [[run, False] for run in runs]

    # -- request matching -----------------------------------------------------------

    def match_request(
        self, clone_visit_id: int, request: HttpRequest
    ) -> Tuple[Optional[AppRunRecord], int]:
        """Find the original run this replayed request corresponds to.

        Returns (run, ts_for_new_run).  ``run`` is None when the request has
        no original counterpart and must execute as a fresh run.
        """
        orig_id = self.clone_to_orig.get(clone_visit_id)
        if orig_id is None:
            return None, self._ts_cursor or self.controller.clock.now()
        for entry in self.run_matching.get(orig_id, []):
            run, matched = entry
            if matched:
                continue
            if run.request.method == request.method and run.request.path == request.path:
                entry[1] = True
                self._ts_cursor = max(self._ts_cursor, run.ts_start)
                return run, run.ts_start
        return None, self._ts_cursor or self.controller.clock.now()

    def unmatched_runs(self) -> List[AppRunRecord]:
        """Original runs of non-conflicted replayed visits that were never
        re-issued: their effects must be undone (the attack's requests)."""
        out = []
        for orig_id, entries in self.run_matching.items():
            if orig_id in self.conflicted:
                continue
            for run, matched in entries:
                if not matched:
                    out.append(run)
        return out


class BrowserReplayer:
    """The browser repair manager: replays visits in server-side clones."""

    def __init__(self, controller, config: Optional[ReplayConfig] = None) -> None:
        self.controller = controller
        self.config = config if config is not None else ReplayConfig()
        #: client -> origin -> cookie overrides produced by earlier replays.
        self.cookie_overrides: Dict[str, Dict[str, Dict[str, Optional[str]]]] = {}
        self.diverged_clients: Set[str] = set()

    # -- capability probe ---------------------------------------------------------

    def can_replay(self, visit: Optional[VisitRecord]) -> bool:
        return self.config.enabled and visit is not None

    # -- main entry -----------------------------------------------------------------

    def replay_visit(self, visit: VisitRecord) -> None:
        """Replay one original page visit (and any visits it navigates to)."""
        controller = self.controller
        session = ReplaySession(visit.client_id, controller)
        session.pending_root = visit.visit_id

        clone = Browser(
            controller.network,
            extension=CloneExtension(session),
            transport=lambda origin, request: controller.handle_replay_request(
                session, origin, request
            ),
        )
        clone.load_jar(self._initial_jar(visit))

        root_clone = clone.open(
            visit.url,
            method=visit.method,
            params=dict(visit.post_params) if visit.post_params else None,
            framed=visit.framed,
        )

        # Replay recorded events for every original visit mapped so far
        # (the root plus any iframes it loaded), then for visits reached by
        # replayed navigation, recursively.
        replayed: Set[int] = set()
        self._check_ui_conflict(session, visit, root_clone)
        self._drain_events(clone, session, replayed)

        # Original requests that were never re-issued are attack residue:
        # cancel them (undo their database effects).
        for run in session.unmatched_runs():
            controller.cancel_run(run)

        self._note_cookie_divergence(clone, session, visit)

    def _check_ui_conflict(self, session: ReplaySession, visit: VisitRecord, clone_visit) -> None:
        """Apply the application's UI conflict function, if any (§5.4)."""
        if self.config.ui_conflict_fn is None:
            return
        run = None
        for entry in session.run_matching.get(visit.visit_id, []):
            run = entry[0]
            break
        if run is None or clone_visit.response is None:
            return
        reason = self.config.ui_conflict_fn(
            run.response.body, clone_visit.response.body
        )
        if reason:
            session.conflicted.add(visit.visit_id)
            self.controller.report_conflict(
                visit,
                EventRecord(etype="ui", xpath="(page)"),
                f"application UI conflict: {reason}",
            )

    # -- events ------------------------------------------------------------------------

    def _drain_events(self, clone: Browser, session: ReplaySession, replayed: Set[int]) -> None:
        progress = True
        while progress:
            progress = False
            for orig_id in list(session.mapped_orig_visits):
                if orig_id in replayed:
                    continue
                replayed.add(orig_id)
                progress = True
                record = self.controller.graph.visits.get(
                    (session.client_id, orig_id)
                )
                clone_visit = session.orig_to_clone.get(orig_id)
                if record is None or clone_visit is None:
                    continue
                if orig_id in session.conflicted:
                    continue
                self._replay_events(clone, session, clone_visit, record)

    def _replay_events(
        self,
        clone: Browser,
        session: ReplaySession,
        clone_visit: PageVisit,
        record: VisitRecord,
    ) -> None:
        for event in record.events:
            try:
                self._replay_one(clone, clone_visit, event)
            except ConflictError as exc:
                session.conflicted.add(record.visit_id)
                self.controller.report_conflict(record, event, str(exc))
                return

    def _replay_one(self, clone: Browser, clone_visit: PageVisit, event: EventRecord) -> None:
        if clone_visit.blocked:
            raise ConflictError(
                "page refused to load in a frame", "cannot replay input"
            )
        tag = event.data.get("tag")
        attrs = event.data.get("attrs") or {}
        element = resolve_target(clone_visit.document, event.xpath, attrs, tag)
        if element is None:
            raise ConflictError(
                "event target not found on repaired page", event.xpath
            )
        if event.etype == "input":
            self._replay_input(element, event)
        elif event.etype == "click":
            clone.click_element(element, clone_visit)
        elif event.etype == "submit":
            clone.submit_element(element, clone_visit)

    def _replay_input(self, element, event: EventRecord) -> None:
        base = str(event.data.get("base", ""))
        final = str(event.data.get("value", ""))
        current = element.value
        if current == base:
            element.value = final
            return
        if not self.config.text_merge:
            raise ConflictError(
                "field content changed and text merging is disabled"
            )
        try:
            element.value = three_way_merge(base, final, current)
        except MergeConflict as exc:
            raise ConflictError("user input overlaps repaired content", str(exc))

    # -- cookies ------------------------------------------------------------------------

    def _initial_jar(self, visit: VisitRecord) -> Dict[str, Dict[str, str]]:
        jar = {origin: dict(values) for origin, values in visit.cookies_before.items()}
        overrides = self.cookie_overrides.get(visit.client_id, {})
        for origin, values in overrides.items():
            bucket = jar.setdefault(origin, {})
            for name, value in values.items():
                if value is None:
                    bucket.pop(name, None)
                else:
                    bucket[name] = value
        return jar

    def _note_cookie_divergence(
        self, clone: Browser, session: ReplaySession, visit: VisitRecord
    ) -> None:
        after = clone.jar_snapshot()
        recorded = visit.cookies_after
        overrides = self.cookie_overrides.setdefault(visit.client_id, {})
        diverged = False
        origins = set(after) | set(recorded)
        for origin in origins:
            new_values = after.get(origin, {})
            old_values = recorded.get(origin, {})
            for name in set(new_values) | set(old_values):
                new = new_values.get(name)
                old = old_values.get(name)
                if new != old:
                    overrides.setdefault(origin, {})[name] = new
                    diverged = True
        if diverged:
            self.diverged_clients.add(visit.client_id)


def _same_path(url: str, path: str) -> bool:
    from repro.http.message import parse_url

    _, url_path, _ = parse_url(url)
    return url_path == path
