"""Partition-scoped write gating for online repair (paper §4.3).

The paper's headline is that repair runs *while the site keeps serving
users*.  The gate makes that concrete: while a repair is active, every
incoming request is classified against the partitions, tables and clients
the repair owns —

* **disjoint** requests are served normally from the live generation (the
  overwhelming majority when the attack's footprint is small);
* **conflicting** requests are queued with a ticket (HTTP 202) and
  re-applied in arrival order right after the generation switch, so they
  execute exactly once against the repaired state instead of being 503'd
  or served a timeline that is about to be rewritten.

Classification needs the request's *footprint* before executing it.  The
:class:`FootprintIndex` learns one footprint template per entry script
from the recorded runs in the action history graph:

* each recorded SQL statement is re-analysed **symbolically** with the
  PR 2 read-set machinery (:func:`repro.ttdb.partitions.read_partitions`
  over parameter tokens), so literal constraints stay precise and
  parameter slots become template holes;
* each hole is tied to a *source* observed in the recorded executions —
  a request parameter, a cookie, a prefix/suffix around a parameter
  (``'page:' + title``), or a one-hop **lookup** through a recorded
  point read (the session table maps the ``sess`` cookie to the user
  name, which is how ``editor = <session user>`` keys resolve);
* written partition columns whose value is not request-derivable fall
  back to a **probe**: when the write's own WHERE clause is fully
  resolvable, the gate peeks the current row to obtain the remaining
  partition keys (the previous ``editor`` of the page being edited);
* anything still unresolved is **dynamic** and gated conservatively at
  ``(table, column)`` granularity; whole-table reads (``COUNT(*)``)
  conflict whenever the repair owns any key of the table.

A mispredicted footprint can only cause a conflicting request to be
*served*; the §4.3 finalize pass (``pending_during_repair`` +
``_inputs_changed``) still re-applies it to the repair generation, so
gating precision affects latency, never correctness.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.faults.plane import active as _active_plane
from repro.http.message import HttpRequest, HttpResponse
from repro.ttdb.partitions import _ParamToken, _SafetyFlag, read_partitions

PartitionKey = Tuple[str, str, object]

#: Template sources for a constraint/key value.
#: ("const", v) | ("param", name) | ("cookie", name)
#: | ("affix", prefix, inner_source, suffix)
#: | ("lookup", sql, inner_source, column)
Source = Tuple

#: Sentinel for "this constraint's value cannot be derived from the
#: request" (conservatively treated as possibly-owned).
DYNAMIC = ("dynamic",)

_MAX_SAMPLES = 64


# ---------------------------------------------------------------------------
# footprint learning
# ---------------------------------------------------------------------------


class _RequestEnv:
    """Maps recorded values back to request-derivable sources for one run."""

    def __init__(self, run) -> None:
        request = run.request
        self._exact: Dict[object, Source] = {}
        # Cookies first, params second: a value present in both is more
        # robustly sourced from the explicit parameter.
        for name in sorted(request.cookies):
            self._exact.setdefault(request.cookies[name], ("cookie", name))
        for name in sorted(request.params):
            self._exact[request.params[name]] = ("param", name)
        self._params = request.params
        # One-hop derived values: a recorded single-parameter point read
        # whose parameter is request-derivable explains every column of its
        # result row (e.g. sessions: sess cookie -> user name).
        for query in run.queries:
            if query.kind != "select" or len(query.params) != 1:
                continue
            inner = self._exact.get(query.params[0])
            if inner is None:
                continue
            snapshot = query.snapshot
            if not (isinstance(snapshot, tuple) and len(snapshot) == 3 and snapshot[2]):
                continue
            first_row = snapshot[2][0]
            for column, value in first_row:
                self._exact.setdefault(
                    value, ("lookup", query.sql, inner, column)
                )

    def source_for(self, value) -> Optional[Source]:
        source = self._exact.get(value)
        if source is not None:
            return source
        if isinstance(value, str):
            # Derived string around a request parameter ('page:' + title).
            for name in sorted(self._params):
                part = self._params[name]
                if part and isinstance(part, str) and part in value:
                    prefix, _, suffix = value.partition(part)
                    return ("affix", prefix, ("param", name), suffix)
        return None


@dataclass
class _SqlReadTemplate:
    """Symbolic read set of one recorded statement shape."""

    table: str
    #: None -> reads ALL partitions of ``table``.
    disjuncts: Optional[Tuple[Tuple[Tuple[str, Source], ...], ...]]


@dataclass
class _WriteColumn:
    """How one written partition column of one table resolves."""

    sources: Set[Source] = field(default_factory=set)
    #: WHERE-clause probes that recover row-valued keys (old column values).
    probes: Set[Tuple] = field(default_factory=set)
    dynamic: bool = False


@dataclass
class ScriptFootprint:
    """Learned footprint template for one entry script."""

    script: str
    samples: int = 0
    #: Tables some statement reads whole (ALL partitions) or writes whole.
    tables_all: Set[str] = field(default_factory=set)
    #: Read constraints, one tuple of (column, source) conjunctions each.
    read_disjuncts: Set[Tuple[str, Tuple[Tuple[str, Source], ...]]] = field(
        default_factory=set
    )
    #: (table, column) -> how written keys on that column resolve.
    write_columns: Dict[Tuple[str, str], _WriteColumn] = field(default_factory=dict)


class FootprintIndex:
    """Builds and caches one :class:`ScriptFootprint` per entry script."""

    def __init__(self, graph, ttdb) -> None:
        self._graph = graph
        self._ttdb = ttdb
        self._templates: Dict[str, Optional[ScriptFootprint]] = {}
        self._sql_reads: Dict[str, Optional[List]] = {}

    def template_for(self, script: str) -> Optional[ScriptFootprint]:
        if script not in self._templates:
            self._templates[script] = self._build(script)
        return self._templates[script]

    # -- learning ---------------------------------------------------------

    def _build(self, script: str) -> Optional[ScriptFootprint]:
        runs = self._graph.runs_loading_file(script, 0)
        if not runs:
            return None
        template = ScriptFootprint(script=script)
        for run in runs[-_MAX_SAMPLES:]:
            self._learn_run(template, run)
            template.samples += 1
        return template

    def _symbolic_reads(self, query) -> Optional[List[Tuple[str, object]]]:
        """Token-level disjuncts for one SQL shape (cached per SQL text):
        a list of conjunctions of (column, literal-or-_ParamToken), or
        ``None`` when the analysis gives up (ALL partitions)."""
        sql = query.sql
        if sql in self._sql_reads:
            return self._sql_reads[sql]
        result: Optional[List] = None
        try:
            from repro.db.sql.parser import parse

            stmt = parse(sql)
            schema = self._ttdb.database.table(query.table).schema
            flag = _SafetyFlag()
            tokens = tuple(_ParamToken(i, flag) for i in range(len(query.params)))
            symbolic = read_partitions(stmt, tokens, schema)
            if not flag.unsafe and symbolic.disjuncts is not None:
                result = [tuple(sorted(d, key=repr)) for d in symbolic.disjuncts]
        except Exception:
            result = None
        self._sql_reads[sql] = result
        return result

    def _learn_run(self, template: ScriptFootprint, run) -> None:
        env = _RequestEnv(run)
        for query in run.queries:
            table = query.table
            if query.full_table_write:
                template.tables_all.add(table)
            self._learn_reads(template, query, env)
            if query.is_write:
                self._learn_writes(template, query, env)

    def _learn_reads(self, template: ScriptFootprint, query, env: _RequestEnv) -> None:
        table = query.table
        if query.read_set.is_all:
            template.tables_all.add(table)
            return
        if not query.read_set.disjuncts:
            return
        symbolic = self._symbolic_reads(query)
        if symbolic is None:
            template.tables_all.add(table)
            return
        for disjunct in symbolic:
            constraints = []
            for column, value in disjunct:
                if isinstance(value, _ParamToken):
                    source = env.source_for(query.params[value.index])
                    constraints.append((column, source if source else DYNAMIC))
                else:
                    constraints.append((column, ("const", value)))
            template.read_disjuncts.add((table, tuple(sorted(constraints))))

    def _learn_writes(self, template: ScriptFootprint, query, env: _RequestEnv) -> None:
        table = query.table
        probe = self._write_probe(template, query, env)
        for key in query.written_partitions:
            _, column, value = key if len(key) == 3 else (table,) + tuple(key)
            slot = template.write_columns.setdefault((table, column), _WriteColumn())
            source = env.source_for(value)
            if source is not None:
                slot.sources.add(source)
            elif probe is not None:
                slot.probes.add(probe)
            else:
                slot.dynamic = True

    def _write_probe(self, template, query, env: _RequestEnv) -> Optional[Tuple]:
        """A fully-resolvable WHERE clause lets the gate read the target
        row's remaining partition keys at admission time instead of going
        conservative (the previous ``editor`` of the edited page)."""
        if query.kind not in ("update", "delete"):
            return None
        symbolic = self._symbolic_reads(query)
        if symbolic is None or len(symbolic) != 1 or not symbolic[0]:
            return None
        constraints = []
        for column, value in symbolic[0]:
            if isinstance(value, _ParamToken):
                source = env.source_for(query.params[value.index])
                if source is None:
                    return None
                constraints.append((column, source))
            else:
                constraints.append((column, ("const", value)))
        return (query.table, tuple(sorted(constraints)))

    # -- prediction -------------------------------------------------------

    def predict(
        self, script: str, request: HttpRequest
    ) -> Optional["PredictedFootprint"]:
        """Instantiate the script's template against one request; ``None``
        when no footprint is known (no recorded runs of the script)."""
        template = self.template_for(script)
        if template is None:
            return None
        resolver = _Resolver(self._ttdb, request)
        predicted = PredictedFootprint(tables_all=set(template.tables_all))
        for table, constraints in template.read_disjuncts:
            resolved = tuple(
                (column, resolver.resolve(source)) for column, source in constraints
            )
            predicted.read_disjuncts.append((table, resolved))
        for (table, column), slot in template.write_columns.items():
            if slot.dynamic:
                predicted.dynamic_columns.add((table, column))
            for source in slot.sources:
                value = resolver.resolve(source)
                if value is _UNRESOLVED:
                    predicted.dynamic_columns.add((table, column))
                else:
                    predicted.write_keys.add((table, column, value))
            for probe_table, probe_constraints in slot.probes:
                values = resolver.probe(probe_table, column, probe_constraints)
                if values is None:
                    predicted.dynamic_columns.add((table, column))
                else:
                    predicted.write_keys.update(
                        (table, column, value) for value in values
                    )
        return predicted


_UNRESOLVED = object()


class _Resolver:
    """Resolves template sources against one concrete request."""

    def __init__(self, ttdb, request: HttpRequest) -> None:
        self._ttdb = ttdb
        self._request = request
        self._lookup_cache: Dict[Tuple[str, object], Optional[tuple]] = {}

    def resolve(self, source: Source):
        if source is DYNAMIC or source == DYNAMIC:
            return _UNRESOLVED
        kind = source[0]
        if kind == "const":
            return source[1]
        if kind == "param":
            return self._request.params.get(source[1], _UNRESOLVED)
        if kind == "cookie":
            return self._request.cookies.get(source[1], _UNRESOLVED)
        if kind == "affix":
            _, prefix, inner, suffix = source
            value = self.resolve(inner)
            if value is _UNRESOLVED or not isinstance(value, str):
                return _UNRESOLVED
            return f"{prefix}{value}{suffix}"
        if kind == "lookup":
            _, sql, inner, column = source
            value = self.resolve(inner)
            if value is _UNRESOLVED:
                return _UNRESOLVED
            row = self._peek_one(sql, value)
            if row is None or column not in row:
                return _UNRESOLVED
            return row[column]
        return _UNRESOLVED

    def probe(self, table: str, column: str, constraints) -> Optional[List[object]]:
        """Current values of ``column`` for the rows a write's WHERE clause
        selects; ``None`` when a constraint cannot be resolved."""
        clauses, params = [], []
        for col, source in constraints:
            value = self.resolve(source)
            if value is _UNRESOLVED:
                return None
            clauses.append(f"{col} = ?")
            params.append(value)
        sql = f"SELECT {column} FROM {table} WHERE " + " AND ".join(clauses)
        try:
            result = self._ttdb.peek(sql, tuple(params))
        except Exception:
            return None
        if not result.ok or result.rows is None:
            return None
        return [row.get(column) for row in result.rows]

    def _peek_one(self, sql: str, param) -> Optional[dict]:
        key = (sql, param)
        if key not in self._lookup_cache:
            try:
                result = self._ttdb.peek(sql, (param,))
                rows = result.rows if result.ok else None
            except Exception:
                rows = None
            self._lookup_cache[key] = tuple(rows[0].items()) if rows else None
        cached = self._lookup_cache[key]
        return dict(cached) if cached is not None else None


@dataclass
class PredictedFootprint:
    """One request's instantiated footprint."""

    read_disjuncts: List[Tuple[str, Tuple[Tuple[str, object], ...]]] = field(
        default_factory=list
    )
    write_keys: Set[PartitionKey] = field(default_factory=set)
    dynamic_columns: Set[Tuple[str, str]] = field(default_factory=set)
    tables_all: Set[str] = field(default_factory=set)


# ---------------------------------------------------------------------------
# the gate
# ---------------------------------------------------------------------------


@dataclass
class QueuedRequest:
    """One conflicting request parked until the generation switch."""

    ticket: int
    ts: int
    request: HttpRequest
    reason: str
    response: Optional[HttpResponse] = None
    applied: bool = False


@dataclass
class GateStats:
    served: int = 0
    queued: int = 0
    applied: int = 0
    apply_errors: int = 0
    #: Served requests whose predicted footprint was unknown (no recorded
    #: runs of the script) — impossible while gating, kept for symmetry.
    no_footprint: int = 0


class RepairGate:
    """Decides, per request, whether live service can proceed during repair.

    ``policy`` selects the gating granularity:

    * ``"partition"`` — footprint-vs-owned-partitions check (the point of
      this subsystem);
    * ``"global"`` — every request conflicts while repair is active: the
      old whole-application suspend, kept as the benchmark baseline.
    """

    def __init__(self, ttdb, graph, policy: str = "partition") -> None:
        if policy not in ("partition", "global"):
            raise ValueError(f"unknown gate policy {policy!r}")
        self.ttdb = ttdb
        self.graph = graph
        self.policy = policy
        #: Fault plane (repro.faults); WarpSystem points this at its own.
        self.faults = _active_plane()
        self.footprints = FootprintIndex(graph, ttdb)
        self.stats = GateStats()
        self.active = False
        #: Set once the repair's damage components are planned; before
        #: that, the partition policy *serves* everything (the repair has
        #: made no modification yet, so every request is trivially
        #: disjoint — the finalize re-application pass covers any request
        #: that touched what the repair later owns).
        self.scoped = False
        self.own_all = True
        self.owned_keys: Set[PartitionKey] = set()
        self.owned_tables: Set[str] = set()
        self.owned_columns: Set[Tuple[str, str]] = set()
        self.owned_clients: Set[str] = set()
        self.queue: List[QueuedRequest] = []
        self.results: Dict[int, QueuedRequest] = {}
        self._next_ticket = 0
        self._lock = threading.Lock()

    # -- lifecycle (repair thread) ----------------------------------------

    def begin(self) -> None:
        with self._lock:
            self.active = True
            self.scoped = False
            self.own_all = True
            self.owned_keys.clear()
            self.owned_tables.clear()
            self.owned_columns.clear()
            self.owned_clients.clear()
            self.queue = []
            # Per-repair accounting: a second repair on a long-lived
            # deployment must not report the first one's counters (or keep
            # its tickets resolvable forever).
            self.stats = GateStats()
            self.results = {}
            self._next_ticket = self.graph.store.next_gate_ticket()
            # Templates go stale across repairs (new runs were recorded).
            self.footprints = FootprintIndex(self.graph, self.ttdb)

    def set_scope(self, groups) -> None:
        """Install the repair's ownership from its planned groups.

        Ownership starts from the *seed damage footprint* — the partitions
        the entry point's canceled/re-executed runs wrote, plus a
        retroactive fix's own keys — and widens lazily as re-execution
        reports modifications (``note_modification``).  Deliberately NOT
        the whole component's ``covered_keys``: a component member whose
        state repair never actually touches (an entangled client's other
        pages, its session row) should keep being served; if repair does
        reach one of its partitions later, the finalize re-application
        pass still catches any request served in the window.

        An unscoped (global-worklist) group cannot be bounded — everything
        stays owned, which degrades to the conservative global suspend.
        """
        with self._lock:
            self.scoped = True
            if self.policy == "global":
                self.own_all = True
                return
            scoped = [group for group in groups if group.scoped]
            if not scoped or len(scoped) != len(groups):
                self.own_all = True
                return
            self.own_all = False
            for group in scoped:
                for key in group.seed_keys:
                    self._own_key(key)
                for run_id in group.seed_runs:
                    run = self.graph.runs.get(run_id)
                    if run is None:
                        continue
                    for query in run.queries:
                        if not query.is_write:
                            continue
                        if query.full_table_write:
                            self.owned_tables.add(query.table)
                        for key in query.written_partitions:
                            full = (
                                key
                                if len(key) == 3
                                else (query.table,) + tuple(key)
                            )
                            self._own_key(full)

    def note_modification(self, table: str, keys, whole_table: bool = False) -> None:
        """Repair touched partitions outside the static scope (escapes,
        re-execution writing new keys): widen ownership so later requests
        gate against them."""
        if not self.active or self.own_all:
            return
        with self._lock:
            if whole_table:
                self.owned_tables.add(table)
            for key in keys:
                full = key if len(key) == 3 else (table,) + tuple(key)
                self._own_key(full)

    def note_client(self, client_id: str) -> None:
        if client_id is None:
            return
        with self._lock:
            self.owned_clients.add(client_id)

    def _own_key(self, key: PartitionKey) -> None:
        self.owned_keys.add(key)
        self.owned_columns.add((key[0], key[1]))

    def pop_next(self) -> Optional[QueuedRequest]:
        """Next queued request in arrival order, or ``None`` — in which
        case the gate has atomically deactivated.

        The drain loop keeps the gate *active* while it works: a fresh
        arrival that would race a queued request on the same partition
        queues behind it instead (FIFO per the ticket order), so the
        re-application of a client's parked writes can never interleave
        with that client's new writes and lose an update.  The gate turns
        off exactly when the queue is observed empty.
        """
        with self._lock:
            if not self.queue:
                self.active = False
                return None
        # Fired *before* popping: a non-crash injected failure leaves the
        # entry queued (and journaled), so retrying the drain loses nothing.
        self.faults.fire("gate.reapply")
        with self._lock:
            if not self.queue:
                self.active = False
                return None
            return self.queue.pop(0)

    # -- admission (request threads) --------------------------------------

    def admit(self, script_name: str, request: HttpRequest) -> Optional[QueuedRequest]:
        """``None`` — serve the request now; otherwise the queued ticket."""
        reason = self._conflict(script_name, request)
        if reason is None:
            with self._lock:
                if not self.active:
                    return None
                self.stats.served += 1
            return None
        with self._lock:
            if not self.active:
                # The repair finished while we were classifying: serve.
                return None
            ticket = self._next_ticket
            self._next_ticket += 1
            entry = QueuedRequest(
                ticket=ticket,
                ts=self.ttdb.clock.now(),
                request=request.copy(),
                reason=reason,
            )
            self.queue.append(entry)
            self.results[ticket] = entry
            self.stats.queued += 1
        # Journal outside the gate lock (the store has its own).
        self.graph.store.log_gate_queue(
            entry.ticket, entry.ts, entry.request.to_dict()
        )
        return entry

    def _conflict(self, script_name: str, request: HttpRequest) -> Optional[str]:
        with self._lock:
            if self.policy == "global":
                return "repair owns the whole application"
            if not self.scoped:
                # Damage components not planned yet: nothing has been
                # modified, so nothing can conflict.
                return None
            if self.own_all:
                return "repair owns the whole application"
            client_id = request.client_id
            if client_id is not None and client_id in self.owned_clients:
                return f"client {client_id!r} is under repair"
        # Prediction is the slow part (template instantiation, DB probes):
        # run it unlocked, then re-take the lock for the ownership checks —
        # the repair thread mutates the owned sets under the same lock, and
        # an unlocked set iteration could observe a resize mid-walk.
        # Ownership widening between the two critical sections is benign:
        # a request served against a stale view is caught by the finalize
        # re-application pass.
        predicted = self.footprints.predict(script_name, request)
        if predicted is None:
            return f"no recorded footprint for {script_name!r}"
        with self._lock:
            for table in predicted.tables_all:
                if self._touches_table(table):
                    return f"whole-table read of {table!r} under repair"
            for key in predicted.write_keys:
                if key in self.owned_keys or key[0] in self.owned_tables:
                    return f"write to repaired partition {key!r}"
            for table, column in predicted.dynamic_columns:
                if table in self.owned_tables or (table, column) in self.owned_columns:
                    return f"dynamic key on repaired column {table}.{column}"
            for table, constraints in predicted.read_disjuncts:
                if self._disjunct_owned(table, constraints):
                    return f"read of repaired partition of {table!r}"
        return None

    def _touches_table(self, table: str) -> bool:
        if table in self.owned_tables:
            return True
        return any(key[0] == table for key in self.owned_keys)

    def _disjunct_owned(self, table: str, constraints) -> bool:
        """Mirror of ``ModifiedPartitions.affects``: a conjunction can
        observe repaired data only if *every* constraint is owned; an
        unresolved constraint counts as possibly-owned."""
        if table in self.owned_tables:
            return True
        if not constraints:
            return self._touches_table(table)
        saw_resolved = False
        for column, value in constraints:
            if value is _UNRESOLVED:
                if (table, column) not in self.owned_columns:
                    return False
                continue
            saw_resolved = True
            if (table, column, value) not in self.owned_keys:
                return False
        if not saw_resolved:
            # Entirely dynamic conjunction: owned if the repair touches the
            # table at all.
            return self._touches_table(table)
        return True

    # -- results -----------------------------------------------------------

    def record_applied(self, entry: QueuedRequest, response: HttpResponse) -> None:
        entry.response = response
        entry.applied = True
        with self._lock:
            self.stats.applied += 1
        self.graph.store.log_gate_apply(entry.ticket)

    def record_failed(self, entry: QueuedRequest, reason: str) -> None:
        """The queued script raised during re-application: the ticket is
        consumed (a retry could duplicate partial effects) and the failure
        is surfaced on the stored response."""
        entry.response = HttpResponse(status=500, body=reason)
        entry.applied = True
        with self._lock:
            self.stats.applied += 1
            self.stats.apply_errors += 1
        self.graph.store.log_gate_apply(entry.ticket)

    def response_for(self, ticket: int) -> Optional[HttpResponse]:
        entry = self.results.get(ticket)
        return entry.response if entry else None


def queued_response(entry: QueuedRequest) -> HttpResponse:
    """The 202 a queued request's client receives immediately."""
    return HttpResponse(
        status=202,
        body="request queued: the partitions it touches are under repair",
        headers={
            "X-Warp-Queued": str(entry.ticket),
            "Retry-After": "1",
        },
    )
