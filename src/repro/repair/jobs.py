"""Repair Job API v2: async job handles and the job manager.

Where :mod:`repro.repair.api` *describes* a repair, this module *runs*
one as a managed, observable job — the shape Ancora gives recovery
(a supervised job, not a function call) and the missing half of the PR 4
story: with repair on a worker thread, the submitting thread keeps
serving traffic through the online gate instead of blocking inside the
repair entry point.

* :meth:`RepairJobManager.submit` validates a spec, enqueues a
  :class:`RepairJob`, and executes jobs **one at a time, in submission
  order** on per-job worker threads (the controller and time-travel
  database support one active repair generation).
* :class:`RepairJob` exposes ``status``, ``progress()`` (phase, groups
  done, re-execution counters — fed live from ``RepairStats`` via the
  controller's progress listeners), ``result()`` (blocking join that
  re-raises the job's failure), ``cancel()`` (cooperative: the
  controller aborts through the existing abort path at the next worklist
  item), and a subscribable event stream (``phase_started``,
  ``groups_planned``, ``group_done``, ``conflict_found``, ``finalized``,
  ``aborted``).
* :meth:`RepairJobManager.preview` is the read-only dry run
  (:func:`repro.repair.api.compute_plan`).
* Job execution is journaled through the record store (``job_start`` /
  ``job_end``), so a deployment reloaded after a crash reports the job
  that was interrupted mid-repair
  (:meth:`RepairJobManager.interrupted_jobs`).

The manager also hosts the **patch catalog**: script exports are Python
callables and cannot ride in JSON, so an operator registers named
patches in-process (``register_patch``) and references them from
:class:`~repro.repair.api.PatchSpec.patch_name`` — which is how a patch
repair is driven over the HTTP admin surface (:class:`AdminApi`).
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import replace as _dc_replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import (
    DurabilityError,
    RepairCanceled,
    RepairError,
    ReproError,
)
from repro.faults.plane import InjectedFault, SimulatedCrash
from repro.http.message import HttpRequest, HttpResponse
from repro.repair.api import (
    CancelClientSpec,
    CancelVisitSpec,
    DbFixSpec,
    PatchSpec,
    RepairBatch,
    RepairPlan,
    RepairSpec,
    compute_plan,
    parse_spec,
)
from repro.repair.controller import RepairResult

__all__ = ["RepairJob", "RepairJobManager", "AdminApi", "ADMIN_PREFIX"]

#: Terminal job statuses.
_TERMINAL = frozenset({"done", "aborted", "failed", "canceled"})

#: How many trailing events a status document carries.
_EVENT_TAIL = 50


class RepairJob:
    """Handle for one submitted repair.

    Status lifecycle::

        queued -> running -> done      (finalized; result().ok)
                          -> aborted   (non-admin undo hit conflicts)
                          -> failed    (a script raised; repair unwound)
                          -> canceled  (cancel(); abort path)
        queued -> canceled             (canceled before it started)
    """

    def __init__(self, job_id: str, spec: RepairSpec, submitted_ts: int) -> None:
        self.job_id = job_id
        self.spec = spec
        self.submitted_ts = submitted_ts
        self.events: List[Tuple[str, dict]] = []
        self._status = "queued"
        self._phase: Optional[str] = None
        self._groups_done = 0
        self._n_groups: Optional[int] = None
        self._result: Optional[RepairResult] = None
        self._error: Optional[BaseException] = None
        self._stats = None
        self._controller = None
        self._cancel_requested = False
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._subscribers: List[Callable[[str, dict], None]] = []

    # -- observation -------------------------------------------------------

    @property
    def status(self) -> str:
        return self._status

    @property
    def finished(self) -> bool:
        return self._finished.is_set()

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal status."""
        return self._finished.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> RepairResult:
        """Blocking join: the repair's :class:`RepairResult`, or re-raise
        whatever ended the job (script failure, code-version mismatch,
        :class:`RepairCanceled`)."""
        if not self._finished.wait(timeout):
            raise TimeoutError(f"repair job {self.job_id} still {self._status}")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def progress(self) -> dict:
        """Live progress snapshot (safe to call from any thread)."""
        out = {
            "job_id": self.job_id,
            "status": self._status,
            "phase": self._phase,
            "n_groups": self._n_groups,
            "groups_done": self._groups_done,
        }
        stats = self._stats
        if stats is not None:
            out.update(
                visits_reexecuted=stats.visits_reexecuted,
                runs_reexecuted=stats.runs_reexecuted,
                runs_pruned=stats.runs_pruned,
                runs_canceled=stats.runs_canceled,
                queries_reexecuted=stats.queries_reexecuted,
                conflicts=stats.conflicts,
            )
        return out

    def subscribe(self, listener: Callable[[str, dict], None]) -> None:
        """Receive every subsequent ``(event, payload)``; events already
        emitted are in :attr:`events`.  Listeners run on the job's worker
        thread and must not block."""
        with self._lock:
            self._subscribers.append(listener)

    def to_dict(self) -> dict:
        """JSON status document (the admin API's GET /repair/<id>)."""
        out = {
            "job_id": self.job_id,
            "spec": self.spec.describe(),
            "status": self._status,
            "submitted_ts": self.submitted_ts,
            "progress": self.progress(),
            "events": [
                {"event": event, **payload}
                for event, payload in self.events[-_EVENT_TAIL:]
            ],
        }
        if self._error is not None:
            out["error"] = repr(self._error)
        if self._result is not None:
            out["result"] = self._result.to_dict()
        return out

    # -- control -----------------------------------------------------------

    def cancel(self) -> bool:
        """Request cancellation.  A queued job is canceled immediately; a
        running one aborts cooperatively at its next worklist item (the
        repair generation is discarded, live state untouched).  Returns
        False when the job already finished.  Best-effort: a job past its
        worklist (mid-finalize) completes normally."""
        with self._lock:
            if self._finished.is_set():
                return False
            self._cancel_requested = True
            controller = self._controller
            if controller is not None:
                controller.cancel_requested = True
            elif self._status == "queued":
                # Not started yet: the manager's worker will observe the
                # flag and skip execution; settle the job here so result()
                # unblocks immediately.
                self._settle_locked(
                    "canceled", error=RepairCanceled("job canceled while queued")
                )
            return True

    # -- internal (manager side) ------------------------------------------

    def _on_event(self, event: str, payload: dict) -> None:
        with self._lock:
            self.events.append((event, dict(payload)))
            if event == "phase_started":
                self._phase = payload.get("phase")
            elif event == "groups_planned":
                self._n_groups = payload.get("n_groups")
            elif event == "group_done":
                self._groups_done += 1
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            try:
                subscriber(event, dict(payload))
            except Exception:
                # Observers must never sink a repair; swallowing here is
                # safe by the fault-plane contract: coordinator
                # cancellation travels as RepairCanceled through the
                # *controller* (never a subscriber), and SimulatedCrash is
                # a BaseException this clause cannot catch.
                pass

    def _settle_locked(self, status: str, result=None, error=None) -> None:
        self._status = status
        self._result = result
        self._error = error
        self._finished.set()

    def _settle(self, status: str, result=None, error=None) -> None:
        with self._lock:
            if not self._finished.is_set():
                self._settle_locked(status, result=result, error=error)


class RepairJobManager:
    """``warp.repair``: submit, preview, observe, and cancel repair jobs.

    Jobs execute one at a time in submission order; each runs on its own
    daemon worker thread so the submitting thread (and the request
    threads the PR 4 gate keeps serving) never block inside the repair.
    """

    def __init__(self, warp) -> None:
        self._warp = warp
        self._jobs: Dict[str, RepairJob] = {}
        self._order: List[str] = []
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._turnstile = threading.Condition(self._lock)
        self._executing: Optional[str] = None
        self._executing_thread: Optional[threading.Thread] = None
        self._patch_catalog: Dict[str, Tuple[str, Dict]] = {}
        self.admin = AdminApi(self)

    # -- patch catalog -----------------------------------------------------

    def register_patch(self, name: str, file: str, exports: Dict) -> None:
        """Register a named patch so JSON specs (and HTTP admins) can
        reference it: ``PatchSpec(file, patch_name=name)``."""
        self._patch_catalog[name] = (file, exports)

    def patch_names(self) -> List[str]:
        return sorted(self._patch_catalog)

    def _resolve(self, spec: RepairSpec) -> RepairSpec:
        """Materialize catalog patches into exports (copy, never mutate
        the caller's spec)."""
        if isinstance(spec, PatchSpec) and spec.patch_name is not None:
            entry = self._patch_catalog.get(spec.patch_name)
            if entry is None:
                known = ", ".join(self.patch_names()) or "<none>"
                raise RepairError(
                    f"unknown patch {spec.patch_name!r} (registered: {known})"
                )
            file, exports = entry
            if spec.file and spec.file != file:
                raise RepairError(
                    f"patch {spec.patch_name!r} targets {file!r}, "
                    f"spec says {spec.file!r}"
                )
            return _dc_replace(spec, file=file, exports=exports)
        if isinstance(spec, RepairBatch):
            return RepairBatch(specs=[self._resolve(member) for member in spec.specs])
        return spec

    # -- submit / preview --------------------------------------------------

    def submit(self, spec: RepairSpec) -> RepairJob:
        """Validate ``spec`` and enqueue it; returns the observable job.

        The job executes asynchronously — ``submit(spec).result()`` is
        the blocking v1-equivalent call.
        """
        spec.validate()
        # Fail fast with full resolution semantics (unknown patch_name,
        # file/catalog mismatch); the result is discarded — execution
        # re-resolves against the catalog as of its own start time.
        self._resolve(spec)
        if threading.current_thread() is self._executing_thread:
            # A v1 wrapper (or submit().result()) called from repair
            # context — a step hook, event subscriber, or controller
            # listener runs on this very worker thread.  The FIFO queue
            # can never reach the nested job while its submitter blocks,
            # so keep the v1 fail-fast instead of deadlocking.
            raise RepairError(
                "cannot submit a repair from inside a running repair job "
                "(a repair is already in progress)"
            )
        with self._lock:
            seq = self._warp.graph.store.next_repair_job_seq()
            taken = {job_id for job_id in self._jobs}
            while f"job-{seq}" in taken:
                seq += 1
            job = RepairJob(
                f"job-{seq}", spec, submitted_ts=self._warp.clock.now()
            )
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._queue.append(job.job_id)
        worker = threading.Thread(
            target=self._drive, args=(job,), name=f"repair-{job.job_id}", daemon=True
        )
        worker.start()
        return job

    def preview(self, spec: RepairSpec) -> RepairPlan:
        """Dry-run impact estimate; mutates nothing (no generation, no
        patching, no statement execution)."""
        return compute_plan(
            self._warp.graph, self._warp.ttdb, self._preview_resolve(spec)
        )

    def _preview_resolve(self, spec: RepairSpec) -> RepairSpec:
        """Fill in a catalog patch's target file so its plan sees the
        damaged runs (exports stay unmaterialized — preview never patches)."""
        if isinstance(spec, PatchSpec) and spec.patch_name and not spec.file:
            entry = self._patch_catalog.get(spec.patch_name)
            if entry is not None:
                return _dc_replace(spec, file=entry[0])
        if isinstance(spec, RepairBatch):
            return RepairBatch(
                specs=[self._preview_resolve(member) for member in spec.specs]
            )
        return spec

    # -- observation -------------------------------------------------------

    def get(self, job_id: str) -> Optional[RepairJob]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[RepairJob]:
        """All jobs this manager has seen, in submission order."""
        return [self._jobs[job_id] for job_id in self._order]

    def interrupted_jobs(self) -> List[dict]:
        """Jobs journaled as started but never ended — a deployment
        reloaded after a crash reports what was mid-repair (the repair
        generation itself died with the process; re-submit the spec)."""
        store = self._warp.graph.store
        # Snapshot under the store lock: the admin listing polls this
        # while job workers journal starts/ends concurrently.
        with store.lock:
            pending = store.pending_repair_jobs
            return [dict(pending[job_id]) for job_id in sorted(pending)]

    def acknowledge_interrupted(self, job_id: str) -> bool:
        """Clear one interrupted-job report (journals the end)."""
        store = self._warp.graph.store
        if job_id not in store.pending_repair_jobs:
            return False
        store.log_repair_job_end(job_id, "interrupted")
        return True

    # -- execution ---------------------------------------------------------

    def _drive(self, job: RepairJob) -> None:
        with self._turnstile:
            # FIFO: run only once every earlier submission settled.
            self._turnstile.wait_for(
                lambda: self._executing is None and self._queue[0] == job.job_id
            )
            self._queue.popleft()
            if job.finished:  # canceled while queued
                self._turnstile.notify_all()
                return
            self._executing = job.job_id
            self._executing_thread = threading.current_thread()
            job._status = "running"
        store = self._warp.graph.store
        try:
            store.log_repair_job_start(
                job.job_id, job.spec.describe(), self._warp.clock.now()
            )
            self._run_with_retry(job, store)
        except SimulatedCrash:
            # Injected process death mid-repair.  Deliberately NO job-end
            # journal entry: a reloaded deployment must report this job as
            # interrupted (paper §6.2 — the admin is told what was
            # mid-repair).  Settle so in-process waiters unblock.
            job._settle("failed", error=RepairError("process crashed mid-repair"))
        except BaseException as exc:
            # Start-journaling failure (sick log) or anything else the
            # retry loop does not own: the waiter must still unblock.
            job._settle("failed", error=exc)
            self._log_job_end(store, job.job_id, "failed")
        finally:
            with self._turnstile:
                self._executing = None
                self._executing_thread = None
                self._turnstile.notify_all()

    def _run_with_retry(self, job: RepairJob, store) -> None:
        """Execute ``job``, retrying transient faults up to the system's
        ``repair_retry_limit``.  Only attempts that unwound through the
        controller's abort path (generation discarded, scripts restored)
        are retried — a fault that escaped *after* the generation switch
        left the repair committed, so the job settles as done-with-warning
        instead (see ``RepairController.post_switch_failure``)."""
        attempts = 0
        while True:
            try:
                result = self._execute(job)
            except RepairCanceled as exc:
                # Cancellation must win over every other disposition —
                # including the post-switch check below: the controller only
                # honors a cancel *before* the switch, so a RepairCanceled
                # here always means the generation was discarded.
                job._settle("canceled", error=exc)
                self._log_job_end(store, job.job_id, "canceled")
                return
            except Exception as exc:
                # SimulatedCrash is a BaseException by contract and sails
                # past this handler to _drive's interrupted-job path.
                controller = job._controller
                if controller is not None and getattr(
                    controller, "post_switch_failure", False
                ):
                    # The generation switch was already live when the fault
                    # fired (repair.finalized, gate-queue drain): the
                    # repaired state is committed and kept, so re-running
                    # the spec would apply the retroactive patches a second
                    # time against already-repaired state.  Settle as
                    # done-with-warning instead of retrying — for *any*
                    # escaping Exception, not just the injected/storage
                    # kinds: settling "failed" here would invite the admin
                    # to re-submit a repair that already committed.
                    job._on_event("post_commit_fault", {"error": repr(exc)})
                    result = RepairResult(
                        ok=True,
                        aborted=False,
                        stats=controller.stats,
                        conflicts=controller._repair_conflicts(),
                    )
                    job._settle("done", result=result)
                    self._log_job_end(store, job.job_id, "done")
                    return
                if not isinstance(exc, (DurabilityError, OSError, InjectedFault)):
                    # Not transient by construction (a script bug, a
                    # malformed spec surfacing late): the abort path
                    # unwound the generation; retrying would fail the
                    # same way.
                    job._settle("failed", error=exc)
                    self._log_job_end(store, job.job_id, "failed")
                    return
                # Transient storage-layer faults: the repair aborted and
                # unwound; retry unless the budget is spent or the admin
                # asked for cancellation in the meantime.
                attempts += 1
                limit = getattr(self._warp, "repair_retry_limit", 0)
                if attempts <= limit and not job._cancel_requested:
                    job._on_event(
                        "retrying",
                        {"attempt": attempts, "limit": limit, "error": repr(exc)},
                    )
                    continue
                job._settle("failed", error=exc)
                self._log_job_end(store, job.job_id, "failed")
                return
            else:
                status = "aborted" if result.aborted else "done"
                job._settle(status, result=result)
                self._log_job_end(store, job.job_id, status)
                return

    @staticmethod
    def _log_job_end(store, job_id: str, status: str) -> None:
        """Journal the job end; a sick log must not turn a settled job
        outcome into an escaped exception.  The entry stays parked in the
        WAL and is flushed by ``heal()`` — and if the process dies first,
        the job is correctly reported as interrupted on reload."""
        try:
            store.log_repair_job_end(job_id, status)
        except (DurabilityError, OSError):
            pass

    def _execute(self, job: RepairJob) -> RepairResult:
        warp = self._warp
        spec = self._resolve(job.spec)
        controller = warp._controller()
        controller.listeners.append(job._on_event)
        with job._lock:
            job._controller = controller
            job._stats = controller.stats
            if job._cancel_requested:
                controller.cancel_requested = True
        if isinstance(spec, RepairBatch):
            result = controller.repair_batch(spec.specs)
        elif isinstance(spec, PatchSpec):
            result = controller.retroactive_patch(
                spec.file, spec.exports, spec.apply_ts
            )
        elif isinstance(spec, CancelVisitSpec):
            result = controller.cancel_visit(
                spec.client_id,
                spec.visit_id,
                spec.initiated_by_admin,
                spec.allow_conflicts,
            )
        elif isinstance(spec, CancelClientSpec):
            result = controller.cancel_client(spec.client_id)
        elif isinstance(spec, DbFixSpec):
            result = controller.retroactive_db_fix(
                spec.sql, tuple(spec.params), spec.ts
            )
        else:
            raise RepairError(f"cannot execute spec of kind {spec.kind!r}")
        warp.last_repair = result
        return result


# ---------------------------------------------------------------------------
# the HTTP admin surface
# ---------------------------------------------------------------------------

ADMIN_PREFIX = "/warp/admin"


def _json_response(payload, status: int = 200) -> HttpResponse:
    return HttpResponse(
        status=status,
        body=json.dumps(payload, sort_keys=True),
        headers={"Content-Type": "application/json"},
    )


def _error(status: int, message: str) -> HttpResponse:
    return _json_response({"error": message}, status=status)


class AdminApi:
    """Privileged repair endpoints, mounted under ``/warp/admin`` on the
    logged :class:`~repro.http.server.HttpServer`.

    Routes (spec JSON travels in the ``spec`` request parameter)::

        POST /warp/admin/repair               submit  -> 202 {job_id}
        GET  /warp/admin/repair               list jobs
        POST /warp/admin/repair/preview       dry-run a spec -> plan
        GET  /warp/admin/repair/<id>          status / progress / result
        GET  /warp/admin/repair/<id>/preview  dry-run the job's spec
        POST /warp/admin/repair/<id>/cancel   cooperative cancel
        GET  /warp/admin/conflicts            pending conflict queue
        GET  /warp/admin/incidents            detector incidents + previews
                                              (?status= filter, ?refresh=1
                                              recompute previews first)
        GET  /warp/admin/incidents/<id>       one incident's full record
        POST /warp/admin/incidents/<id>/repair   submit its spec -> 202
        POST /warp/admin/incidents/<id>/dismiss  close a false positive
        GET  /warp/admin/health               serving mode, WAL lag, pool
                                              depth, last fault (503 body
                                              while degraded)
        GET  /warp/admin/shard/info           shard identity + backend
        GET  /warp/admin/shard/touch-summary  compact TouchIndex image for
                                              coordinator repair planning
        POST /warp/admin/shard/save           persist this shard's snapshot

    While the system is degraded (read-only serving after a durability
    failure), mutating admin requests are refused with a structured 503
    carrying the current health document — except ``cancel``, which an
    operator needs precisely when things are going wrong.

    Admin requests are control plane: never recorded into the action
    history graph, never gated (status polls must work *during* a
    repair).  When the server has an ``admin_token``, requests must carry
    it in the ``X-Warp-Admin-Token`` header (403 otherwise).
    """

    def __init__(self, manager: RepairJobManager) -> None:
        self._manager = manager
        #: Incident surface (repro.detect.IncidentManager); installed by
        #: ``WarpSystem.enable_detection``, 404s until then.
        self.incident_manager = None

    def handle(self, request: HttpRequest) -> HttpResponse:
        path = request.path
        if not path.startswith(ADMIN_PREFIX):
            return _error(404, f"not an admin path: {path}")
        tail = path[len(ADMIN_PREFIX):].rstrip("/")
        try:
            return self._route(request, tail)
        except ReproError as exc:
            # Malformed specs, unknown tables in a fix, bad SQL: the
            # caller's fault, reported as JSON (StorageError/SqlError
            # included — a preview of a bogus statement must not crash
            # the serving thread).
            return _error(400, str(exc))
        except Exception as exc:
            # Catch-all for the HTTP boundary only: submit() returns before
            # the job runs, so no repair outcome (cancellation included)
            # ever unwinds through here, and SimulatedCrash passes by as a
            # BaseException.  Everything this catches is a server-side bug
            # reported as a 500.
            return _error(500, f"admin handler failed: {exc!r}")

    def _route(self, request: HttpRequest, tail: str) -> HttpResponse:
        manager = self._manager
        health = getattr(manager._warp, "health", None)
        if tail == "/health":
            if request.method != "GET":
                return _error(405, "health is GET")
            if health is None:
                return _error(404, "no health monitor on this deployment")
            doc = health.to_dict()
            return _json_response(doc, 200 if doc["mode"] == "normal" else 503)
        if (
            request.method == "POST"
            and health is not None
            and not tail.endswith("/cancel")
        ):
            # Probe-on-write, same as the serving path: a cleared fault
            # heals here instead of bouncing the operator.
            health.try_heal()
            if health.mode != "normal":
                return _json_response(
                    {
                        "error": "system is degraded (read-only); "
                        "mutating admin operations are refused",
                        "health": health.to_dict(),
                    },
                    503,
                )
        if tail == "/repair":
            if request.method == "POST":
                spec = self._spec_from(request)
                job = manager.submit(spec)
                return _json_response({"job_id": job.job_id, "status": job.status}, 202)
            if request.method == "GET":
                return _json_response(
                    {
                        "jobs": [
                            {"job_id": job.job_id, "status": job.status}
                            for job in manager.jobs()
                        ],
                        "interrupted": manager.interrupted_jobs(),
                    }
                )
            return _error(405, f"{request.method} not allowed on {tail}")
        if tail == "/repair/preview":
            if request.method != "POST":
                return _error(405, "preview is POST (spec JSON in the spec param)")
            plan = manager.preview(self._spec_from(request))
            return _json_response(plan.to_dict())
        if tail == "/conflicts":
            conflicts = manager._warp.conflicts
            return _json_response(
                {"pending": [c.to_dict() for c in conflicts.pending()]}
            )
        if tail == "/incidents":
            if request.method != "GET":
                return _error(405, "incidents listing is GET")
            incidents = self.incident_manager
            if incidents is None:
                return _error(404, "detection is not enabled on this deployment")
            if request.params.get("refresh"):
                incidents.refresh_once(force=bool(request.params.get("force")))
            entries = [
                self._reconcile_incident(entry)
                for entry in incidents.list(status=request.params.get("status"))
            ]
            status = incidents.status()
            return _json_response(
                {
                    "incidents": entries,
                    "n_incidents": status["incidents"],
                    "by_status": status["by_status"],
                }
            )
        if tail.startswith("/incidents/"):
            incidents = self.incident_manager
            if incidents is None:
                return _error(404, "detection is not enabled on this deployment")
            rest = tail[len("/incidents/"):]
            incident_id, _, action = rest.partition("/")
            entry = incidents.get(incident_id)
            if entry is None:
                return _error(404, f"unknown incident {incident_id!r}")
            if not action:
                if request.method != "GET":
                    return _error(405, "incident status is GET")
                return _json_response(self._reconcile_incident(entry))
            if action == "repair":
                if request.method != "POST":
                    return _error(405, "incident repair is POST")
                entry = self._reconcile_incident(entry)
                if entry.get("status") == "repairing" and entry.get("job_id"):
                    # Idempotent: the suspect is already under repair.
                    return _json_response(
                        {
                            "incident_id": incident_id,
                            "job_id": entry["job_id"],
                            "status": "repairing",
                        },
                        202,
                    )
                spec_data = entry.get("spec")
                if not spec_data:
                    return _error(
                        400,
                        f"incident {incident_id!r} has no derivable repair "
                        "spec (no client identity on the flagged request)",
                    )
                job = manager.submit(parse_spec(spec_data))
                incidents.mark_repairing(incident_id, job.job_id)
                return _json_response(
                    {
                        "incident_id": incident_id,
                        "job_id": job.job_id,
                        "status": job.status,
                    },
                    202,
                )
            if action == "dismiss":
                if request.method != "POST":
                    return _error(405, "dismiss is POST")
                incidents.dismiss(incident_id)
                return _json_response(
                    {"incident_id": incident_id, "status": "dismissed"}
                )
            return _error(404, f"unknown incident action {action!r}")
        if tail.startswith("/repair/"):
            rest = tail[len("/repair/"):]
            job_id, _, action = rest.partition("/")
            job = manager.get(job_id)
            if job is None:
                return _error(404, f"unknown repair job {job_id!r}")
            if not action:
                if request.method != "GET":
                    return _error(405, "job status is GET")
                return _json_response(job.to_dict())
            if action == "preview":
                return _json_response(manager.preview(job.spec).to_dict())
            if action == "cancel":
                if request.method != "POST":
                    return _error(405, "cancel is POST")
                accepted = job.cancel()
                return _json_response(
                    {"job_id": job.job_id, "canceled": accepted, "status": job.status}
                )
            return _error(404, f"unknown job action {action!r}")
        # -- shard control plane (repro.shard): what a coordinator asks a
        # worker over the same wire as every other admin operation.
        if tail == "/shard/info":
            if request.method != "GET":
                return _error(405, "shard info is GET")
            warp = manager._warp
            return _json_response(
                {
                    "shard_id": warp.shard_id,
                    "backend": warp.db_backend,
                    "n_runs": warp.graph.n_runs,
                    "pid": os.getpid(),
                }
            )
        if tail == "/shard/touch-summary":
            if request.method != "GET":
                return _error(405, "touch-summary is GET")
            return _json_response(manager._warp.graph.store.touch_summary())
        if tail == "/shard/save":
            if request.method != "POST":
                return _error(405, "shard save is POST")
            warp = manager._warp
            path = request.params.get("path") or warp.shard_snapshot_path
            if not path:
                return _error(400, "no snapshot path: not a shard and no 'path' param")
            warp.save(path)
            return _json_response({"saved": path})
        return _error(404, f"unknown admin path {ADMIN_PREFIX}{tail}")

    def _reconcile_incident(self, entry: dict) -> dict:
        """Lazy lifecycle reconciliation on read: an incident whose
        repair job reached a terminal state flips to ``resolved`` (job
        done) or back to ``open`` (job failed/aborted/canceled — the
        suspect damage is still there)."""
        if entry.get("status") != "repairing" or not entry.get("job_id"):
            return entry
        job = self._manager.get(entry["job_id"])
        if job is None or job.status not in _TERMINAL:
            return entry
        self.incident_manager.resolve(entry["incident_id"], job.status == "done")
        return self.incident_manager.get(entry["incident_id"]) or entry

    def _spec_from(self, request: HttpRequest) -> RepairSpec:
        raw = request.params.get("spec")
        if raw is None:
            raise RepairError("missing 'spec' parameter (JSON-encoded repair spec)")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RepairError(f"spec is not valid JSON: {exc}") from exc
        return parse_spec(data)
