"""Repair Job API v2: declarative repair specs and dry-run plans.

The paper's administrator "initiates repair by selecting the offending
actions" (§2.1); the v1 surface exposed that as four ad-hoc blocking
methods on :class:`~repro.warp.WarpSystem`.  This module is the
declarative half of the v2 redesign:

* a :class:`RepairSpec` hierarchy — :class:`PatchSpec`,
  :class:`CancelVisitSpec`, :class:`CancelClientSpec`, :class:`DbFixSpec`
  — with JSON round-trip (``to_dict``/``from_dict``/:func:`parse_spec`),
  so a repair can be described, stored, journaled, and POSTed over the
  admin HTTP surface;
* :class:`RepairBatch`, which composes N intrusions into **one**
  generation pass (the controller unions the damage sets, runs cluster
  discovery once, and re-executes each affected action at most once —
  see :meth:`repro.repair.controller.RepairController.repair_batch`);
* :class:`RepairPlan` and :func:`compute_plan` — the dry-run preview:
  taint-connected components, affected clients/partitions, estimated
  re-execution counts, and whether the clustering futility bailout would
  trip, computed **read-only** from the record store's
  :class:`~repro.store.recordstore.TouchIndex` — no repair generation is
  created and nothing is mutated.

Specs are *descriptions*, not handles: submit one via
``warp.repair.submit(spec)`` (:mod:`repro.repair.jobs`) to get an
observable :class:`~repro.repair.jobs.RepairJob`.

A note on patches: script exports are Python callables and cannot ride in
JSON.  A :class:`PatchSpec` therefore carries either in-process
``exports`` *or* a ``patch_name`` resolved against the job manager's
registered patch catalog (``warp.repair.register_patch``) at execution
time — the catalog is how an operator drives a patch repair over HTTP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import RepairError
from repro.repair.clusters import (
    ClusteringFutile,
    compute_repair_groups,
)

__all__ = [
    "RepairSpec",
    "PatchSpec",
    "CancelVisitSpec",
    "CancelClientSpec",
    "DbFixSpec",
    "RepairBatch",
    "RepairPlan",
    "parse_spec",
    "compute_plan",
]


#: kind string -> spec class, filled by ``_register``.
_SPEC_KINDS: Dict[str, type] = {}


def _register(cls: type) -> type:
    _SPEC_KINDS[cls.kind] = cls  # type: ignore[attr-defined]
    return cls


class RepairSpec:
    """Base class: one declarative description of a repair to perform."""

    kind: str = "?"

    def to_dict(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: dict) -> "RepairSpec":
        """Rebuild any spec from its JSON image (dispatches on ``kind``)."""
        return parse_spec(data)

    def describe(self) -> dict:
        """JSON-safe summary — always serializable, even for specs whose
        ``to_dict`` raises (in-process patch exports); used by the jobs
        journal and status endpoints."""
        return self.to_dict()

    def validate(self) -> None:
        """Raise :class:`RepairError` when the spec is malformed."""

    def routing_hints(self) -> dict:
        """What a shard coordinator (repro.shard) can route by: the
        client identities and code files this spec names.  Empty means
        "no hint — plan against every shard" (e.g. a raw DB fix, whose
        reach only preview can establish)."""
        return {}


@_register
@dataclass
class PatchSpec(RepairSpec):
    """Retroactively apply a security patch to the past (paper §3).

    Exactly one of ``exports`` (in-process: the patched script's callables)
    or ``patch_name`` (resolved against the registered patch catalog at
    execution time) must be provided.  Only the ``patch_name`` form is
    JSON-serializable.
    """

    file: str
    exports: Optional[Dict] = None
    patch_name: Optional[str] = None
    apply_ts: int = 0
    kind = "patch"

    def validate(self) -> None:
        if (self.exports is None) == (self.patch_name is None):
            raise RepairError(
                "PatchSpec needs exactly one of exports (in-process) or "
                "patch_name (registered catalog)"
            )
        if not self.file and self.patch_name is None:
            # A catalog patch supplies its own target file.
            raise RepairError("PatchSpec needs a target file")

    def to_dict(self) -> dict:
        if self.patch_name is None:
            raise RepairError(
                "PatchSpec with raw exports is not JSON-serializable — "
                "register the patch (warp.repair.register_patch) and "
                "reference it by patch_name"
            )
        return {
            "kind": self.kind,
            "file": self.file,
            "patch_name": self.patch_name,
            "apply_ts": self.apply_ts,
        }

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "file": self.file,
            "patch_name": self.patch_name,
            "apply_ts": self.apply_ts,
            "inline_exports": self.exports is not None,
        }

    def routing_hints(self) -> dict:
        return {"files": [self.file]} if self.file else {}

    @classmethod
    def _from_dict(cls, data: dict) -> "PatchSpec":
        # ``file`` is optional for catalog patches (the registration
        # supplies the target file).
        return cls(
            file=data.get("file", ""),
            patch_name=data.get("patch_name"),
            apply_ts=data.get("apply_ts", 0),
        )


@_register
@dataclass
class CancelVisitSpec(RepairSpec):
    """Undo one recorded page visit and its descendants (paper §5.5)."""

    client_id: str
    visit_id: int
    initiated_by_admin: bool = True
    allow_conflicts: bool = False
    kind = "cancel_visit"

    def validate(self) -> None:
        if not self.client_id or int(self.visit_id) <= 0:
            raise RepairError("CancelVisitSpec needs a client_id and visit_id")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "client_id": self.client_id,
            "visit_id": self.visit_id,
            "initiated_by_admin": self.initiated_by_admin,
            "allow_conflicts": self.allow_conflicts,
        }

    def routing_hints(self) -> dict:
        return {"clients": [self.client_id]}

    @classmethod
    def _from_dict(cls, data: dict) -> "CancelVisitSpec":
        return cls(
            client_id=data["client_id"],
            visit_id=int(data["visit_id"]),
            initiated_by_admin=data.get("initiated_by_admin", True),
            allow_conflicts=data.get("allow_conflicts", False),
        )


@_register
@dataclass
class CancelClientSpec(RepairSpec):
    """Undo every recorded action of one client (paper §2)."""

    client_id: str
    kind = "cancel_client"

    def validate(self) -> None:
        if not self.client_id:
            raise RepairError("CancelClientSpec needs a client_id")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "client_id": self.client_id}

    def routing_hints(self) -> dict:
        return {"clients": [self.client_id]}

    @classmethod
    def _from_dict(cls, data: dict) -> "CancelClientSpec":
        return cls(client_id=data["client_id"])


@_register
@dataclass
class DbFixSpec(RepairSpec):
    """Retroactively fix past database state (paper §2), repairing
    everything that depended on it."""

    sql: str
    params: Tuple = ()
    ts: int = 0
    kind = "db_fix"

    def __post_init__(self) -> None:
        self.params = tuple(self.params)

    def validate(self) -> None:
        if not self.sql:
            raise RepairError("DbFixSpec needs a SQL statement")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "sql": self.sql,
            "params": list(self.params),
            "ts": self.ts,
        }

    @classmethod
    def _from_dict(cls, data: dict) -> "DbFixSpec":
        return cls(
            sql=data["sql"],
            params=tuple(data.get("params", ())),
            ts=int(data.get("ts", 0)),
        )


@_register
@dataclass
class RepairBatch(RepairSpec):
    """N intrusions repaired in one generation pass.

    The controller computes the **union** damage set across all member
    specs, runs cluster discovery once, and re-executes each affected
    action at most once — instead of once per attack, which is what N
    sequential repairs cost (each one pays its own generation switch,
    graph merge, and overlapping re-executions).
    """

    specs: List[RepairSpec] = field(default_factory=list)
    kind = "batch"

    def __post_init__(self) -> None:
        # Flatten nested batches: a batch of batches is just one pass.
        flat: List[RepairSpec] = []
        for spec in self.specs:
            if isinstance(spec, RepairBatch):
                flat.extend(spec.specs)
            else:
                flat.append(spec)
        self.specs = flat

    def validate(self) -> None:
        if not self.specs:
            raise RepairError("RepairBatch needs at least one spec")
        for spec in self.specs:
            spec.validate()

    def to_dict(self) -> dict:
        return {"kind": self.kind, "specs": [spec.to_dict() for spec in self.specs]}

    def describe(self) -> dict:
        return {"kind": self.kind, "specs": [spec.describe() for spec in self.specs]}

    def routing_hints(self) -> dict:
        merged: dict = {}
        for spec in self.specs:
            for key, values in spec.routing_hints().items():
                bucket = merged.setdefault(key, [])
                for value in values:
                    if value not in bucket:
                        bucket.append(value)
        return merged

    @classmethod
    def _from_dict(cls, data: dict) -> "RepairBatch":
        return cls(specs=[parse_spec(item) for item in data.get("specs", ())])


def parse_spec(data: dict) -> RepairSpec:
    """Rebuild a spec from its JSON image.  Raises RepairError on an
    unknown kind or a malformed payload — every malformation, including a
    non-dict body or a non-string ``kind``, must surface as RepairError so
    the admin HTTP surface answers a structured 400, never a 500."""
    if not isinstance(data, dict):
        raise RepairError(
            f"repair spec must be a JSON object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    if not isinstance(kind, str):
        # A list/dict kind would TypeError out of the registry lookup.
        raise RepairError(
            "repair spec 'kind' must be a string, got "
            f"{type(kind).__name__}"
        )
    cls = _SPEC_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(_SPEC_KINDS))
        raise RepairError(f"unknown repair spec kind {kind!r} (known: {known})")
    try:
        spec = cls._from_dict(data)  # type: ignore[attr-defined]
    except RepairError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise RepairError(f"malformed {kind!r} spec: {exc!r}") from exc
    spec.validate()
    return spec


# ---------------------------------------------------------------------------
# dry-run preview
# ---------------------------------------------------------------------------


@dataclass
class RepairPlan:
    """A cheap pre-repair impact estimate (no mutations, no generation).

    Computed from the eagerly maintained partition-touch connectivity
    index, so the cost is O(damage component), never a log scan.  The
    run/visit counts are the taint-connected component membership — an
    *upper bound* on what repair will re-execute (pruning §5.3 and
    affects-gating typically re-execute less), and the same quantity the
    futility bailout reasons about.
    """

    kind: str
    #: Would the clustering futility bailout trip?  (The repair still
    #: runs — monolithically — but its cost tracks the workload, not the
    #: attack footprint.)
    futile: bool = False
    #: Seed damage: directly attacked/canceled runs, a fix's partitions.
    seed_runs: int = 0
    seed_partitions: List[List[object]] = field(default_factory=list)
    #: Taint-connected components (empty when futile).
    n_groups: int = 0
    groups: List[Dict[str, object]] = field(default_factory=list)
    #: Union membership over all components.
    affected_runs: int = 0
    affected_clients: List[str] = field(default_factory=list)
    affected_partitions: int = 0
    sample_partitions: List[List[object]] = field(default_factory=list)
    #: Workload totals, for "how much of the site does this touch".
    total_runs: int = 0
    total_visits: int = 0
    total_queries: int = 0

    @property
    def estimated_reexec_fraction(self) -> float:
        if not self.total_runs:
            return 0.0
        bound = self.total_runs if self.futile else self.affected_runs
        return bound / self.total_runs

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "futile": self.futile,
            "seed_runs": self.seed_runs,
            "seed_partitions": [list(key) for key in self.seed_partitions],
            "n_groups": self.n_groups,
            "groups": [dict(row) for row in self.groups],
            "affected_runs": self.affected_runs,
            "affected_clients": list(self.affected_clients),
            "affected_partitions": self.affected_partitions,
            "sample_partitions": [list(key) for key in self.sample_partitions],
            "total_runs": self.total_runs,
            "total_visits": self.total_visits,
            "total_queries": self.total_queries,
            "estimated_reexec_fraction": round(self.estimated_reexec_fraction, 4),
        }


#: How many concrete partition keys a plan lists verbatim.
_PLAN_KEY_SAMPLE = 16


def _spec_seeds(graph, ttdb, spec: RepairSpec):
    """Read-only seed extraction: (run_seeds, key_seed_groups) where each
    key seed group is (keys, full_tables, ts) for one db-fix statement.

    Mirrors what the corresponding entry point damages, without mutating
    anything: a patch's damaged runs come straight from the file index
    (the patch itself is *not* applied), a cancelation's from the
    visit/client indexes, and a database fix's partitions are derived
    **symbolically** from the statement (WHERE-clause equality constraints
    on partition columns; INSERT values) rather than by executing it —
    an approximation of the keys the real fix's rollback would touch.
    """
    from repro.db.sql import ast
    from repro.db.sql.parser import parse
    from repro.ttdb.partitions import read_partitions

    run_seeds: List[int] = []
    key_groups: List[Tuple[List, List, int]] = []
    if isinstance(spec, RepairBatch):
        for member in spec.specs:
            member_runs, member_keys = _spec_seeds(graph, ttdb, member)
            run_seeds.extend(member_runs)
            key_groups.extend(member_keys)
    elif isinstance(spec, PatchSpec):
        run_seeds.extend(
            run.run_id for run in graph.runs_loading_file(spec.file, spec.apply_ts)
        )
    elif isinstance(spec, CancelVisitSpec):
        for visit_id in graph.visit_and_descendants(spec.client_id, spec.visit_id):
            run_seeds.extend(
                run.run_id for run in graph.runs_of_visit(spec.client_id, visit_id)
            )
    elif isinstance(spec, CancelClientSpec):
        run_seeds.extend(run.run_id for run in graph.client_runs(spec.client_id))
    elif isinstance(spec, DbFixSpec):
        keys: List[Tuple[str, str, object]] = []
        full_tables: List[str] = []
        try:
            stmt = parse(spec.sql)
        except Exception as exc:
            raise RepairError(f"cannot plan db fix: {exc}") from exc
        if not ast.is_write(stmt):
            raise RepairError("DbFixSpec must be a write statement")
        table = stmt.table  # type: ignore[attr-defined]
        schema = ttdb.database.table(table).schema
        partition_cols = set(schema.partition_columns)
        if isinstance(stmt, ast.Insert):
            for row in stmt.rows:
                for column, expr in zip(stmt.columns, row):
                    if column not in partition_cols:
                        continue
                    value = _literal_value(expr, spec.params)
                    if value is _NOT_LITERAL:
                        full_tables.append(table)
                    else:
                        keys.append((table, column, value))
        else:
            read = read_partitions(stmt, spec.params, schema)
            if read.is_all:
                full_tables.append(table)
            else:
                for disjunct in read.disjuncts:
                    for column, value in disjunct:
                        keys.append((table, column, value))
        key_groups.append((sorted(set(keys), key=repr), sorted(set(full_tables)), spec.ts))
    else:
        raise RepairError(f"cannot plan spec of kind {spec.kind!r}")
    return run_seeds, key_groups


_NOT_LITERAL = object()


def _literal_value(expr, params: Sequence[object]):
    from repro.db.sql import ast

    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param):
        if expr.index < len(params):
            return params[expr.index]
    return _NOT_LITERAL


def compute_plan(
    graph, ttdb, spec: RepairSpec, futility_limit: Optional[int] = None
) -> RepairPlan:
    """Dry-run a spec: what would this repair touch?

    Strictly read-only — no repair generation, no script patching, no
    statement execution, no graph mutation (the acceptance test asserts
    the version-store and graph dumps are byte-identical before/after).
    ``futility_limit`` overrides the clustering bailout threshold (tests;
    the default is the production one).
    """
    spec.validate()
    # The admin surface serves previews ungated during live traffic;
    # hold the store's lock so the component walk never iterates an
    # index a request thread is resizing.  Reentrant, read-only, and
    # O(component) — request threads stall at most briefly.
    with graph.store.lock:
        return _compute_plan_locked(graph, ttdb, spec, futility_limit)


def _compute_plan_locked(
    graph, ttdb, spec: RepairSpec, futility_limit: Optional[int]
) -> RepairPlan:
    plan = RepairPlan(
        kind=spec.kind,
        total_runs=graph.n_runs,
        total_visits=graph.n_visits,
        total_queries=graph.n_queries,
    )
    run_seeds, key_groups = _spec_seeds(graph, ttdb, spec)
    plan.seed_runs = len(set(run_seeds))
    seed_keys: List = []
    for keys, full_tables, _ts in key_groups:
        seed_keys.extend(keys)
        seed_keys.extend((table, "*", "*") for table in full_tables)
    plan.seed_partitions = [list(key) for key in seed_keys[:_PLAN_KEY_SAMPLE]]
    if not run_seeds and not key_groups:
        return plan
    try:
        groups = compute_repair_groups(
            graph,
            run_seeds=run_seeds,
            key_seed_groups=[
                (keys, full_tables, ts) for keys, full_tables, ts in key_groups
            ],
            futility_limit=futility_limit,
        )
    except ClusteringFutile:
        plan.futile = True
        plan.affected_runs = graph.n_runs
        plan.affected_clients = sorted(
            {
                run.client_id
                for run in graph.runs.values()
                if run.client_id is not None
            }
        )
        return plan
    plan.n_groups = len(groups)
    all_clients: set = set()
    all_keys: set = set()
    affected = 0
    for group in groups:
        affected += len(group.run_ids or ())
        all_clients |= group.clients
        all_keys |= group.covered_keys
        plan.groups.append(
            {
                "group": group.group_id,
                "runs": len(group.run_ids or ()),
                "clients": sorted(group.clients),
                "partitions": len(group.covered_keys),
                "tables": sorted(group.covered_tables),
                "seed_runs": len(group.seed_runs),
                "first_damage_ts": group.first_damage_ts,
            }
        )
    plan.affected_runs = affected
    plan.affected_clients = sorted(all_clients)
    plan.affected_partitions = len(all_keys)
    plan.sample_partitions = [
        list(key) for key in sorted(all_keys, key=repr)[:_PLAN_KEY_SAMPLE]
    ]
    return plan
