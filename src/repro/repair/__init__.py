"""The repair subsystem (paper §2–§5).

``RepairController`` orchestrates rollback and selective re-execution over
the action history graph; ``BrowserReplayer`` is the server-side browser
re-execution manager; conflicts that cannot be auto-resolved are queued in
``ConflictQueue`` for the affected user.
"""

from repro.repair.api import (
    CancelClientSpec,
    CancelVisitSpec,
    DbFixSpec,
    PatchSpec,
    RepairBatch,
    RepairPlan,
    RepairSpec,
    compute_plan,
    parse_spec,
)
from repro.repair.clusters import (
    ClusteringFutile,
    RepairGroup,
    compute_repair_groups,
)
from repro.repair.conflicts import Conflict, ConflictQueue
from repro.repair.controller import RepairController, RepairResult
from repro.repair.jobs import RepairJob, RepairJobManager
from repro.repair.stats import RepairStats

__all__ = [
    "RepairController",
    "RepairResult",
    "RepairStats",
    "RepairGroup",
    "compute_repair_groups",
    "ClusteringFutile",
    "Conflict",
    "ConflictQueue",
    # Repair API v2 (see API.md)
    "RepairSpec",
    "PatchSpec",
    "CancelVisitSpec",
    "CancelClientSpec",
    "DbFixSpec",
    "RepairBatch",
    "RepairPlan",
    "parse_spec",
    "compute_plan",
    "RepairJob",
    "RepairJobManager",
]
