"""Dependency-clustered repair groups.

The paper's central scaling claim (§8.5, Table 8) is that repair cost is
proportional to the *attack's footprint*, not the workload.  A single
global worklist gets most of the way there, but two costs still scale
with the workload: discovering which actions the damage can reach, and
building the per-table partition indexes that propagation consults (the
Table 7 "Graph" column) — both scan the full run log.

This module computes **taint-connected components** over the action
history graph instead: a union-find joining clients and ``(table,
partition-key)`` nodes through the queries that read/write them, walked
outward from the initial damage set through the record store's eagerly
maintained :class:`~repro.store.recordstore.TouchIndex`.  Each component
becomes an independent :class:`RepairGroup` — its own time-ordered
worklist, its own ``ModifiedPartitions``, run/visit state, scheduled-qid
set, and a **group-scoped partition query index** built from the group's
runs only, so both discovery and propagation are O(component), never
O(workload).

Edges (the connectivity relation; an undirected over-approximation of the
time-directed dependencies repair actually follows):

* run ↔ its client (a browser's visits replay as one ordered history,
  and a conflict silences the whole client, §5.4);
* run that **writes** partition key K ↔ every run touching K, every
  ALL-partition reader of K's table, and every full-table writer;
* run that **reads** key K ↔ every writer of K and full-table writer of
  K's table (two mere readers of K are *not* joined — read-read sharing
  carries no taint);
* ALL-partition reader of table T ↔ every writer of T;
* full-table writer of T ↔ everything touching T.

**Coverage and the escape hatch.**  A group records the partition keys
its member runs statically write (``covered_keys``).  By construction the
component is closed over those keys: every run touching a covered key is
a member, so group-local propagation lookups are complete.  Re-execution
can *escape* — write a key the original timeline never wrote (a repaired
page saved under a new title).  Propagation for uncovered keys falls back
to the graph's global index (paying its lazy build only when an escape
actually happens) and the group counts the escape in its stats.
"""

from __future__ import annotations

import heapq
import time as _time
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ahg.records import QueryRecord
from repro.store.recordstore import merge_bucket_tails, partition_index_keys
from repro.ttdb.partitions import ModifiedPartitions

PartitionKey = Tuple[str, str, object]

#: Per-group re-execution counters folded into ``RepairStats.groups``.
GROUP_COUNTER_FIELDS = (
    "visits_reexecuted",
    "runs_reexecuted",
    "runs_pruned",
    "runs_canceled",
    "queries_reexecuted",
)

class GroupQueryIndex:
    """Partition buckets over one group's runs only.

    Same bucket structure and lookup contract as the record store's
    global index (`RecordStore.queries_touching`) — key derivation and
    the merge lookup are shared helpers, since the escape path mixes
    results from both — but built from the group's member runs:
    O(group queries) to build, so a small repair group never pays for
    indexing the whole table's history.
    """

    def __init__(self, graph, run_ids: Iterable[int]) -> None:
        started = _time.perf_counter()
        self._keys: Dict[PartitionKey, List] = {}
        self._all: Dict[str, List] = {}
        self._table: Dict[str, List] = {}
        for run_id in run_ids:
            run = graph.runs.get(run_id)
            if run is None:
                continue
            for query in run.queries:
                entry = (query.ts, query.qid, query)
                self._table.setdefault(query.table, []).append(entry)
                keys, in_all_bucket = partition_index_keys(query)
                if in_all_bucket:
                    self._all.setdefault(query.table, []).append(entry)
                for key in keys:
                    self._keys.setdefault(key, []).append(entry)
        for buckets in (self._keys, self._all, self._table):
            for bucket in buckets.values():
                bucket.sort()
        self.build_seconds = _time.perf_counter() - started

    def touching(
        self,
        table: str,
        keys: Iterable[PartitionKey],
        since_ts: int,
        whole_table: bool = False,
    ) -> List[QueryRecord]:
        if whole_table:
            buckets = [self._table.get(table, [])]
        else:
            buckets = [self._keys.get(key, []) for key in keys]
            buckets.append(self._all.get(table, []))
        return merge_bucket_tails(buckets, since_ts)


class RepairGroup:
    """One independent repair worklist over one taint component.

    ``run_ids is None`` means *global scope*: the monolithic worklist the
    controller always starts with (and keeps when clustering is off) —
    every lookup goes straight to the graph's global index and nothing is
    considered an escape.
    """

    def __init__(
        self,
        group_id: int,
        run_ids: Optional[Set[int]] = None,
        clients: Optional[Set[str]] = None,
        covered_keys: Optional[Set[PartitionKey]] = None,
        covered_tables: Optional[Set[str]] = None,
        mods: Optional[ModifiedPartitions] = None,
    ) -> None:
        self.group_id = group_id
        self.run_ids = run_ids
        self.clients: Set[str] = set(clients or ())
        self.covered_keys: Set[PartitionKey] = set(covered_keys or ())
        self.covered_tables: Set[str] = set(covered_tables or ())
        #: Damaged runs / fixed partitions assigned to this group.
        self.seed_runs: List[int] = []
        self.seed_keys: List[PartitionKey] = []
        self.first_damage_ts: int = 0

        # -- worklist state (what the monolithic controller kept flat) -----
        self.mods = mods if mods is not None else ModifiedPartitions()
        self.heap: List[Tuple[int, int, str, object]] = []
        self.heap_seq = 0
        self.run_state: Dict[int, str] = {}
        self.visit_state: Dict[Tuple[str, int], str] = {}
        self.scheduled_qids: Set[int] = set()
        self.counted_visits: Set[Tuple[str, int]] = set()
        #: Clients whose replay hit a conflict (paper §5.4): scoped to the
        #: group because a client belongs to exactly one component.
        self.conflicted_clients: Set[str] = set()

        # -- accounting -----------------------------------------------------
        self.counters: Dict[str, int] = {name: 0 for name in GROUP_COUNTER_FIELDS}
        #: Progress bookkeeping: a ``group_done`` event fires at most once
        #: per group (re-sweeps after escaped propagation must not double-count).
        self.done_emitted = False
        self.escaped_keys = 0
        self.seconds = 0.0
        self.index_build_seconds = 0.0
        self._index: Optional[GroupQueryIndex] = None

    @property
    def scoped(self) -> bool:
        return self.run_ids is not None

    def schedule(self, ts: int, kind: str, payload) -> None:
        self.heap_seq += 1
        heapq.heappush(self.heap, (ts, self.heap_seq, kind, payload))

    def covers(self, key: PartitionKey) -> bool:
        return key in self.covered_keys or key[0] in self.covered_tables

    def member_run(self, run_id: int) -> bool:
        return self.run_ids is None or run_id in self.run_ids

    def _ensure_index(self, graph) -> GroupQueryIndex:
        if self._index is None:
            self._index = GroupQueryIndex(graph, self.run_ids or ())
            self.index_build_seconds += self._index.build_seconds
        return self._index

    def queries_touching(
        self,
        graph,
        table: str,
        keys,
        since_ts: int,
        whole_table: bool = False,
    ) -> List[QueryRecord]:
        """Candidate queries for a modification, preferring the group-local
        index; uncovered (escaped) keys consult the global one."""
        if not self.scoped:
            return graph.queries_touching(table, keys, since_ts, whole_table)
        if whole_table:
            if table in self.covered_tables:
                return self._ensure_index(graph).touching(table, (), since_ts, True)
            self.escaped_keys += 1
            return graph.queries_touching(table, (), since_ts, True)
        covered: List[PartitionKey] = []
        uncovered: List[PartitionKey] = []
        for key in keys:
            full = key if len(key) == 3 else (table,) + tuple(key)
            (covered if self.covers(full) else uncovered).append(full)
        out: List[QueryRecord] = []
        if covered or not uncovered:
            out.extend(self._ensure_index(graph).touching(table, covered, since_ts))
        if uncovered:
            self.escaped_keys += len(uncovered)
            seen = {query.qid for query in out}
            for query in graph.queries_touching(table, uncovered, since_ts):
                if query.qid not in seen:
                    out.append(query)
        return out

    def describe(self) -> Dict[str, object]:
        """One JSON-friendly per-group stats row."""
        row: Dict[str, object] = {
            "group": self.group_id,
            "runs": len(self.run_ids) if self.run_ids is not None else None,
            "clients": len(self.clients),
            "seed_runs": len(self.seed_runs),
            "escaped_keys": self.escaped_keys,
            "seconds": round(self.seconds, 6),
            "index_build_seconds": round(self.index_build_seconds, 6),
        }
        row.update(self.counters)
        return row


class _Build:
    """A component under construction (mutable union-find payload)."""

    __slots__ = (
        "runs",
        "clients",
        "covered_keys",
        "covered_tables",
        "seed_runs",
        "seed_keys",
        "first_ts",
        "read_keys_done",
        "allfull_pulled",
        "fullw_pulled",
        "writers_pulled",
        "touchers_pulled",
    )

    def __init__(self) -> None:
        self.runs: Set[int] = set()
        self.clients: Set[str] = set()
        self.covered_keys: Set[PartitionKey] = set()
        self.covered_tables: Set[str] = set()
        self.seed_runs: List[int] = []
        self.seed_keys: List[PartitionKey] = []
        self.first_ts: float = float("inf")
        self.read_keys_done: Set[PartitionKey] = set()
        self.allfull_pulled: Set[str] = set()
        self.fullw_pulled: Set[str] = set()
        self.writers_pulled: Set[str] = set()
        self.touchers_pulled: Set[str] = set()

    def absorb(self, other: "_Build") -> None:
        self.runs |= other.runs
        self.clients |= other.clients
        self.covered_keys |= other.covered_keys
        self.covered_tables |= other.covered_tables
        self.seed_runs.extend(other.seed_runs)
        self.seed_keys.extend(other.seed_keys)
        self.first_ts = min(self.first_ts, other.first_ts)
        self.read_keys_done |= other.read_keys_done
        self.allfull_pulled |= other.allfull_pulled
        self.fullw_pulled |= other.fullw_pulled
        self.writers_pulled |= other.writers_pulled
        self.touchers_pulled |= other.touchers_pulled


class ClusteringFutile(Exception):
    """A component is about to swallow most of the workload: group-scoped
    repair would only duplicate the global index.  Callers should fall
    back to the monolithic worklist (distinct from the empty-damage case,
    where :func:`compute_repair_groups` returns ``[]``)."""


def compute_repair_groups(
    graph,
    run_seeds: Iterable[int] = (),
    key_seeds: Iterable[PartitionKey] = (),
    full_table_seeds: Iterable[str] = (),
    damage_ts: int = 0,
    futility_limit: Optional[int] = None,
    key_seed_groups: Iterable[Tuple[Iterable[PartitionKey], Iterable[str], int]] = (),
) -> List[RepairGroup]:
    """Partition the damage set into taint-connected repair groups.

    ``run_seeds`` are initially damaged run ids (a patched file's runs, a
    canceled visit's or client's runs); ``key_seeds``/``full_table_seeds``
    are the partitions a retroactive database fix writes directly.  All
    key/table seeds belong to one statement and therefore one group —
    batched repairs with several independent fix statements pass
    ``key_seed_groups`` instead, one ``(keys, full_tables, damage_ts)``
    entry per statement, so two fixes touching unrelated partitions keep
    their own components (they still merge if taint connects them).

    Deterministic: groups come back ordered by earliest damage timestamp
    (ties by smallest seed run id), with members discovered by BFS whose
    visited sets make the result independent of expansion order.

    Raises :class:`ClusteringFutile` when clustering is pointless: a
    component's distinct membership (visited runs plus its deduplicated
    BFS frontier) exceeds ``futility_limit`` (default: half the workload,
    floored at 1024 so small deployments never bail).  One write to a
    partition whose table has thousands of ALL-partition readers trips
    this within a few expansions — the whole point is to detect
    "everything is connected" *without* paying for the full walk, and let
    the caller keep the monolithic worklist whose lazy global index is
    already the right tool there.  Returns ``[]`` only for an empty
    damage set.
    """
    touch = graph.touch
    if futility_limit is None:
        futility_limit = max(1024, len(graph.runs) // 2)
    builds: List[Optional[_Build]] = []
    parent: List[int] = []
    run_owner: Dict[int, int] = {}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(a: int, b: int) -> int:
        ra, rb = find(a), find(b)
        if ra == rb:
            return ra
        if len(builds[ra].runs) < len(builds[rb].runs):  # type: ignore[union-attr]
            ra, rb = rb, ra
        parent[rb] = ra
        builds[ra].absorb(builds[rb])  # type: ignore[union-attr]
        builds[rb] = None
        return ra

    def expand_write_key(build: _Build, key: PartitionKey, frontier: deque) -> None:
        if key in build.covered_keys:
            return
        build.covered_keys.add(key)
        frontier.extend(touch.touchers_of_key(key))
        table = key[0]
        if table not in build.allfull_pulled:
            build.allfull_pulled.add(table)
            build.fullw_pulled.add(table)
            frontier.extend(touch.all_readers_of_table(table))
            frontier.extend(touch.full_writers_of_table(table))

    def expand_read_key(build: _Build, key: PartitionKey, frontier: deque) -> None:
        if key in build.read_keys_done:
            return
        build.read_keys_done.add(key)
        frontier.extend(touch.writers_of_key(key))
        table = key[0]
        if table not in build.fullw_pulled:
            build.fullw_pulled.add(table)
            frontier.extend(touch.full_writers_of_table(table))

    def expand_all_read(build: _Build, table: str, frontier: deque) -> None:
        if table in build.writers_pulled:
            return
        build.writers_pulled.add(table)
        frontier.extend(touch.writers_of_table(table))

    def expand_full_write(build: _Build, table: str, frontier: deque) -> None:
        build.covered_tables.add(table)
        if table in build.touchers_pulled:
            return
        build.touchers_pulled.add(table)
        build.writers_pulled.add(table)
        build.allfull_pulled.add(table)
        build.fullw_pulled.add(table)
        frontier.extend(touch.touchers_of_table(table))

    def grow(root: int, frontier: deque) -> int:
        while frontier:
            root = find(root)
            build = builds[root]
            assert build is not None
            if len(build.runs) + len(frontier) > futility_limit:
                # The frontier holds duplicates and already-visited runs;
                # compact it (preserving order and cross-build merge
                # triggers) before deciding the component really is huge.
                compacted: List[int] = []
                fresh = 0
                seen: Set[int] = set()
                for rid in frontier:
                    if rid in seen:
                        continue
                    seen.add(rid)
                    owner = run_owner.get(rid)
                    if owner is None:
                        fresh += 1
                    elif find(owner) == root:
                        continue  # already a member: nothing left to do
                    compacted.append(rid)
                if len(build.runs) + fresh > futility_limit:
                    raise ClusteringFutile
                frontier.clear()
                frontier.extend(compacted)
                if not frontier:
                    break
            run_id = frontier.popleft()
            owner = run_owner.get(run_id)
            if owner is not None:
                owner_root = find(owner)
                if owner_root != root:
                    root = union(root, owner_root)
                continue
            run_owner[run_id] = root
            build.runs.add(run_id)
            run = graph.runs.get(run_id)
            if run is None:
                continue
            client_id = run.client_id
            if client_id is not None and client_id not in build.clients:
                build.clients.add(client_id)
                frontier.extend(r.run_id for r in graph.client_runs(client_id))
            for query in run.queries:
                table = query.table
                if query.is_write:
                    if query.full_table_write:
                        expand_full_write(build, table, frontier)
                    for key in query.written_partitions:
                        expand_write_key(build, key, frontier)
                if query.read_set.is_all:
                    expand_all_read(build, table, frontier)
                else:
                    for column, value in query.read_set.keys():
                        expand_read_key(build, (table, column, value), frontier)
        return find(root)

    for run_id in run_seeds:
        run = graph.runs.get(run_id)
        seed_ts = run.ts_start if run is not None else damage_ts
        owner = run_owner.get(run_id)
        if owner is not None:
            build = builds[find(owner)]
            assert build is not None
            build.seed_runs.append(run_id)
            build.first_ts = min(build.first_ts, seed_ts)
            continue
        build = _Build()
        build.seed_runs.append(run_id)
        build.first_ts = seed_ts
        builds.append(build)
        parent.append(len(builds) - 1)
        grow(len(builds) - 1, deque([run_id]))

    statement_seeds = [
        (list(keys), list(tables), ts) for keys, tables, ts in key_seed_groups
    ]
    key_seeds = list(key_seeds)
    full_table_seeds = list(full_table_seeds)
    if key_seeds or full_table_seeds:
        statement_seeds.append((key_seeds, full_table_seeds, damage_ts))
    for stmt_keys, stmt_tables, stmt_ts in statement_seeds:
        if not stmt_keys and not stmt_tables:
            continue
        build = _Build()
        build.seed_keys = list(stmt_keys)
        build.first_ts = stmt_ts
        builds.append(build)
        root = len(builds) - 1
        parent.append(root)
        frontier: deque = deque()
        for key in stmt_keys:
            expand_write_key(build, key, frontier)
        for table in stmt_tables:
            expand_full_write(build, table, frontier)
        grow(root, frontier)

    finished = [
        builds[i]
        for i in range(len(builds))
        if builds[i] is not None and find(i) == i
    ]
    finished.sort(
        key=lambda b: (b.first_ts, min(b.seed_runs) if b.seed_runs else -1)
    )
    groups: List[RepairGroup] = []
    for index, build in enumerate(finished, start=1):
        group = RepairGroup(
            index,
            run_ids=build.runs,
            clients=build.clients,
            covered_keys=build.covered_keys,
            covered_tables=build.covered_tables,
        )
        group.seed_runs = build.seed_runs
        group.seed_keys = build.seed_keys
        group.first_damage_ts = 0 if build.first_ts == float("inf") else int(build.first_ts)
        groups.append(group)
    return groups
