"""The time-travel database facade (paper §4).

``TimeTravelDB`` is what application code talks to.  During normal
execution every statement is stamped with a fresh logical timestamp and
runs in the *current* generation; rich results (read partitions, written
row IDs, result snapshots) are returned so the application runtime can log
them as dependencies.  During repair, statements are re-executed *at their
original historical timestamps* in the *next* generation.

``enabled=False`` gives the "No WARP" baseline used by Table 6: plain
in-place execution with no versioning and no dependency information.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.clock import INFINITY, LogicalClock
from repro.core.errors import RepairError, SqlError
from repro.faults.plane import active as _active_plane
from repro.db.executor import ExecContext, Executor, QueryResult
from repro.db.sql import ast
from repro.db.sql.parser import parse
from repro.db.storage import Database, Table, TableSchema
from repro.db.storage import RowVersion
from repro.ttdb.partitions import ReadSet, ReadSetPlanner, read_partitions
from repro.ttdb.rollback import rollback_row as _rollback_row

#: Statement-cache bounds: entry count (LRU-evicted) and the largest
#: result (rows) worth pinning — big scans are cheap to re-run relative
#: to the memory they would hold live.
_STMT_CACHE_MAX = 2048
_STMT_CACHE_MAX_ROWS = 8

#: Partition-key value types the write side tracks (db.executor
#: ``_partition_keys``): reads constrained to anything else must fall
#: back to the table-level any-write counter.
_SCALAR = (str, int, float, bool)


def _validation_keys(read_set: ReadSet) -> Tuple[object, ...]:
    """The write-counter keys whose stability proves a cached SELECT is
    still current.  Narrowed reads validate against their partition keys
    — invalidation on *any* constrained key is a superset of the
    ``affects`` rule (which requires a write to match every constraint in
    some disjunct), so this can only produce spurious misses, never stale
    hits.  ALL-partition reads, empty disjuncts and non-scalar constraint
    values validate against the table's any-write counter, which every
    write bumps."""
    table = read_set.table
    disjuncts = read_set.disjuncts
    if not disjuncts:  # None (reads everything) or () — be conservative
        return (table,)
    keys: List[object] = []
    for disjunct in disjuncts:
        if not disjunct:  # unconstrained branch reads everything
            return (table,)
        for column, value in disjunct:
            if value is not None and not isinstance(value, _SCALAR):
                return (table,)
            keys.append((table, column, value))
    return tuple(keys)


class RepairJournal:
    """Versions touched by an active repair generation (paper §4.3).

    ``created`` are versions whose ``start_gen`` was set into the repair
    generation (new writes, re-homed originals); ``fenced`` are versions
    whose ``end_gen`` was clamped to the live generation (preserved
    copies, rollback exclusions).  ``abort_repair`` undoes exactly these,
    making abort O(repair footprint) instead of O(database)."""

    __slots__ = ("created", "fenced")

    def __init__(self) -> None:
        self.created: List[Tuple[Table, RowVersion]] = []
        self.fenced: List[Tuple[Table, RowVersion]] = []

    def note_created(self, table: Table, version: RowVersion) -> None:
        self.created.append((table, version))

    def note_fenced(self, table: Table, version: RowVersion) -> None:
        self.fenced.append((table, version))


@dataclass
class TTResult:
    """One executed statement plus everything dependency tracking needs."""

    sql: str
    params: Tuple[object, ...]
    ts: int
    gen: int
    result: QueryResult
    read_set: ReadSet
    #: True when a write had no WHERE clause (modifies the whole table).
    full_table_write: bool = False

    @property
    def rows(self) -> Optional[List[dict]]:
        return self.result.rows

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def is_write(self) -> bool:
        return self.result.kind != "select"

    def one(self) -> Optional[dict]:
        """First result row or None (SELECT convenience)."""
        if self.result.rows:
            return self.result.rows[0]
        return None

    def scalar(self):
        """Sole value of the first row (aggregate convenience)."""
        row = self.one()
        if row is None:
            return None
        return next(iter(row.values()))


class TimeTravelDB:
    """Versioned, generation-aware execution over :class:`Database`."""

    def __init__(
        self,
        database: Database,
        clock: LogicalClock,
        enabled: bool = True,
        fault_plane=None,
    ) -> None:
        self.database = database
        self.clock = clock
        self.enabled = enabled
        self.faults = fault_plane if fault_plane is not None else _active_plane()
        self.executor = Executor(database, versioned=enabled)
        self.current_gen = 0
        self.repair_gen: Optional[int] = None
        #: Count of statements executed (all modes), for metrics.
        self.statements_executed = 0
        #: Ablation switch: with partition analysis off, every query reads
        #: ALL partitions of its table (whole-table dependencies).
        self.partition_analysis = True
        #: Ablation switch: with the cache off, partition analysis walks
        #: the WHERE AST on every execution (the seed behavior) instead of
        #: instantiating a per-statement-shape template.
        self.use_read_set_cache = True
        self._read_set_planner = ReadSetPlanner()
        #: Versions created/fenced by the active repair generation; makes
        #: ``abort_repair`` O(repair footprint).
        self._journal: Optional[RepairJournal] = None
        #: Serializes statement execution and generation transitions so
        #: concurrent request threads can hammer the live generation while
        #: a repair writes the next one.  Statement-granular: a run's
        #: queries may interleave with other runs' (as on a real server);
        #: recorded per-query timestamps preserve the actual order for
        #: repair-time re-execution.
        self._lock = threading.RLock()
        #: Called with the TTResult of every committed non-repair write,
        #: *inside* the statement lock — the response cache subscribes so
        #: invalidation is atomic with the commit (repro.http.cache).
        self.write_hook = None
        #: Read-through SELECT cache: a repeated ``(sql, params)`` read
        #: whose *read partitions* have not been written since (write
        #: counters per partition key, checked under the statement lock)
        #: replays the cached rows/snapshot at a fresh timestamp instead
        #: of re-executing.  Observably identical to re-execution — no
        #: write touched a partition the read depends on, so the visible
        #: version set is the same — and recorded identically (same
        #: snapshot, read rows, read set; fresh ts).  Reads that cannot be
        #: narrowed (ALL-partition, non-scalar constraint values) fall
        #: back to the per-table any-write counter.  Only normal execution
        #: uses the cache; repair re-execution always runs for real.
        self.use_statement_cache = enabled
        self._stmt_cache: "OrderedDict[Tuple[str, Tuple[object, ...]], Tuple[TTResult, int, int, Tuple, Tuple[int, ...]]]" = (
            OrderedDict()
        )
        #: Write counters: a table name keys "any write to the table"; a
        #: ``(table, column, value)`` partition key counts writes whose
        #: written partitions include it.
        self._write_counts: Dict[object, int] = {}

    @property
    def backend(self) -> str:
        """Identifier of the storage engine underneath (``"python"``,
        ``"sqlite"``); recorded in :meth:`state_dict` for diagnostics."""
        return getattr(self.database, "backend", "python")

    @property
    def statement_lock(self) -> threading.RLock:
        """The statement-granular execution lock; the response cache's hit
        path holds it while validating an entry and drawing timestamps so
        hits serialize against write commits exactly like real reads."""
        return self._lock

    # -- schema ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.database.create_table(schema)

    def schema(self, table: str) -> TableSchema:
        return self.database.table(table).schema

    # -- normal execution --------------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> TTResult:
        """Execute one statement in the current generation, now."""
        stmt = parse(sql)
        if self.use_statement_cache and isinstance(stmt, ast.Select):
            return self._execute_select(stmt, sql, tuple(params))
        ts = self.clock.tick()
        ctx = ExecContext(
            ts=ts, gen=self.current_gen, current_gen=self.current_gen, repair=False
        )
        return self._run(stmt, sql, tuple(params), ctx)

    # -- statement cache ---------------------------------------------------------

    def _execute_select(
        self, stmt: ast.Select, sql: str, params: Tuple[object, ...]
    ) -> TTResult:
        """Serve a normal-execution SELECT through the statement cache.

        The timestamp is drawn *inside* the lock (uncached execution draws
        it just before acquiring the lock), so a cached read observes the
        same visible version set a re-execution at that timestamp would:
        the write counters prove no write touching a partition the read
        depends on committed between the cached execution and now.
        """
        key = (sql, params)
        with self._lock:
            counts = self._write_counts
            cached = self._stmt_cache.get(key)
            if cached is not None:
                entry, gen, epoch, vkeys, versions = cached
                if (
                    gen == self.current_gen
                    and epoch == self.database.ddl_epoch
                    and versions == tuple(counts.get(k, 0) for k in vkeys)
                ):
                    self._stmt_cache.move_to_end(key)
                    self.statements_executed += 1
                    return self._replay_select(entry, self.clock.tick())
                del self._stmt_cache[key]
            ctx = ExecContext(
                ts=self.clock.tick(),
                gen=self.current_gen,
                current_gen=self.current_gen,
                repair=False,
            )
            tt_result = self._run_locked(stmt, sql, params, ctx)
            result = tt_result.result
            if result.ok and result.rows is not None and len(result.rows) <= _STMT_CACHE_MAX_ROWS:
                vkeys = _validation_keys(tt_result.read_set)
                self._stmt_cache[key] = (
                    self._replay_select(tt_result, tt_result.ts),
                    ctx.gen,
                    self.database.ddl_epoch,
                    vkeys,
                    tuple(counts.get(k, 0) for k in vkeys),
                )
                if len(self._stmt_cache) > _STMT_CACHE_MAX:
                    self._stmt_cache.popitem(last=False)
            return tt_result

    @staticmethod
    def _replay_select(entry: TTResult, ts: int) -> TTResult:
        """A fresh TTResult sharing ``entry``'s immutable payload.  Rows
        are copied dict-by-dict: scripts receive (and may mutate) the row
        dicts, so the cached copy must stay pristine."""
        source = entry.result
        result = QueryResult(
            kind="select",
            table=source.table,
            rows=[dict(row) for row in source.rows],
            rowcount=source.rowcount,
            read_row_ids=source.read_row_ids,
        )
        result._snapshot = source.snapshot()
        return TTResult(
            sql=entry.sql,
            params=entry.params,
            ts=ts,
            gen=entry.gen,
            result=result,
            read_set=entry.read_set,
        )

    def _flush_statement_cache(self) -> None:
        """Drop every cached SELECT.  Called around anything that changes
        visibility outside the write counters (generation
        transitions, row rollback, gc, state restore) — the counters make
        these flushes redundant in most cases, but the cache must stay
        correct even if a future path forgets to bump one."""
        self._stmt_cache.clear()

    def execute_script(self, sql: str, params: Sequence[object] = ()) -> List[TTResult]:
        """Execute a semicolon-separated batch (the SQL-injection vector).

        A parameterised API would never expose this, which is exactly the
        point: vulnerable application code that builds SQL by string
        concatenation routes through here, so a piggybacked statement in
        user input really executes.
        """
        results = []
        for piece in split_statements(sql):
            results.append(self.execute(piece, params))
        return results

    # -- repair execution ---------------------------------------------------------

    def execute_at(
        self,
        sql: str,
        params: Sequence[object],
        ts: int,
        forced_row_ids: Tuple[int, ...] = (),
    ) -> TTResult:
        """Re-execute a statement at historical time ``ts`` in the repair
        generation (paper §4.4: 'the query always executes in the next
        generation')."""
        if self.repair_gen is None:
            raise RepairError("no repair generation is active")
        stmt = parse(sql)
        ctx = ExecContext(
            ts=ts,
            gen=self.repair_gen,
            current_gen=self.current_gen,
            repair=True,
            forced_row_ids=forced_row_ids,
            journal=self._journal,
        )
        return self._run(stmt, sql, tuple(params), ctx)

    def matching_row_ids(self, sql: str, params: Sequence[object], ts: int) -> Tuple[int, ...]:
        """Row IDs a write's WHERE clause selects at (ts, repair_gen), for
        two-phase re-execution of multi-row writes (paper §4.2)."""
        if self.repair_gen is None:
            raise RepairError("no repair generation is active")
        stmt = parse(sql)
        where = getattr(stmt, "where", None)
        if isinstance(stmt, ast.Insert):
            return ()
        ctx = ExecContext(
            ts=ts,
            gen=self.repair_gen,
            current_gen=self.current_gen,
            repair=True,
            journal=self._journal,
        )
        with self._lock:
            rows = self.executor.matching_rows(
                _table_of(stmt), where, tuple(params), ctx, stmt=stmt, sql=sql
            )
        return tuple(version.row_id for version in rows)

    def peek(self, sql: str, params: Sequence[object] = ()) -> TTResult:
        """Execute a read-only statement at the current time in the current
        generation *without* advancing the clock or counting as workload.

        Used by the online-repair gate to resolve request-derived values
        (e.g. the session's user) before deciding whether to serve a
        request; a probe must not perturb the logical timeline.
        """
        stmt = parse(sql)
        if ast.is_write(stmt):
            raise RepairError("peek only executes read-only statements")
        ctx = ExecContext(
            ts=self.clock.now(),
            gen=self.current_gen,
            current_gen=self.current_gen,
            repair=False,
        )
        with self._lock:
            result = self.executor.execute(stmt, tuple(params), ctx, sql=sql)
        return TTResult(
            sql=sql,
            params=tuple(params),
            ts=ctx.ts,
            gen=ctx.gen,
            result=result,
            read_set=ReadSet(_table_of(stmt), disjuncts=None),
        )

    def _run(
        self, stmt: ast.Statement, sql: str, params: Tuple[object, ...], ctx: ExecContext
    ) -> TTResult:
        with self._lock:
            return self._run_locked(stmt, sql, params, ctx)

    def _run_locked(
        self, stmt: ast.Statement, sql: str, params: Tuple[object, ...], ctx: ExecContext
    ) -> TTResult:
        schema = self.database.table(_table_of(stmt)).schema
        if not self.partition_analysis:
            read_set = ReadSet(_table_of(stmt), disjuncts=None)
        elif self.use_read_set_cache:
            read_set = self._read_set_planner.read_set_for(
                sql, stmt, params, schema, self.database.ddl_epoch
            )
        else:
            read_set = read_partitions(stmt, params, schema)
        result = self.executor.execute(stmt, params, ctx, sql=sql)
        self.statements_executed += 1
        if result.kind != "select":
            # Any write (normal or repair — the latter is conservative but
            # cheap) bumps the table's any-write counter plus one counter
            # per written partition key, staling exactly the cached
            # SELECTs whose read partitions it could have changed.
            counts = self._write_counts
            table = result.table
            counts[table] = counts.get(table, 0) + 1
            for key in result.written_partitions:
                counts[key] = counts.get(key, 0) + 1
        full_table_write = (
            isinstance(stmt, (ast.Update, ast.Delete)) and stmt.where is None
        )
        tt_result = TTResult(
            sql=sql,
            params=params,
            ts=ctx.ts,
            gen=ctx.gen,
            result=result,
            read_set=read_set,
            full_table_write=full_table_write,
        )
        if (
            self.write_hook is not None
            and not ctx.repair
            and result.kind != "select"
        ):
            self.write_hook(tt_result)
        return tt_result

    # -- generations -----------------------------------------------------------------

    def begin_repair(self) -> int:
        """Fork the next repair generation (paper §4.3)."""
        with self._lock:
            if self.repair_gen is not None:
                raise RepairError("a repair generation is already active")
            if not self.enabled:
                raise RepairError("time-travel is disabled; repair is impossible")
            self.repair_gen = self.current_gen + 1
            self._journal = RepairJournal()
            self._flush_statement_cache()
            return self.repair_gen

    def finalize_repair(self) -> None:
        """Atomically switch the repaired generation live.  The lock makes
        the switch atomic with respect to in-flight statements: no
        statement observes a half-switched generation pair."""
        # Fired before the switch: an injected crash here models dying at
        # the commit point, leaving the repair generation invisible (the
        # paper's all-or-nothing repair contract).
        self.faults.fire("ttdb.finalize_switch")
        with self._lock:
            if self.repair_gen is None:
                raise RepairError("no repair generation is active")
            self.current_gen = self.repair_gen
            self.repair_gen = None
            self._journal = None
            self._flush_statement_cache()

    def integrity_errors(self, max_errors: int = 20) -> List[str]:
        """Version-store consistency sweep across every table, evaluated
        at the current generation (see :meth:`Table.integrity_errors`).
        The crash-recovery harness runs this after every reload; an empty
        list is the "store ≡ graph ≡ version-store" invariant's
        version-store leg."""
        errors: List[str] = []
        with self._lock:
            gen = self.current_gen
            for name, table in self.database.tables.items():
                remaining = max_errors - len(errors)
                if remaining <= 0:
                    break
                errors.extend(table.integrity_errors(gen, remaining, name))
        return errors

    def abort_repair(self) -> None:
        """Discard the repair generation, restoring the pre-repair state.

        Every mutation repair makes is reversible by construction: versions
        created during repair carry ``start_gen == repair_gen`` (dropped),
        and versions fenced away from the repair generation carry
        ``end_gen == current_gen`` (re-extended) — the live generation never
        observes either.  The repair journal records exactly those versions,
        so abort is O(repair footprint), not a scan of every version of
        every table; the scan remains as a fallback for restored states
        with no journal.
        """
        with self._lock:
            self._abort_repair_locked()

    def _abort_repair_locked(self) -> None:
        if self.repair_gen is None:
            raise RepairError("no repair generation is active")
        repair_gen = self.repair_gen
        journal = self._journal
        if journal is not None:
            for table, version in journal.created:
                table.discard_version(version)
            for table, version in journal.fenced:
                table.unfence_version(version, self.current_gen)
        else:  # pragma: no cover - defensive fallback
            for table in self.database.tables.values():
                for version in list(table.all_versions()):
                    if version.start_gen >= repair_gen:
                        table.remove_version(version)
                    else:
                        table.unfence_version(version, self.current_gen)
        self.repair_gen = None
        self._journal = None
        self._flush_statement_cache()

    # -- persistence ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Generation counters and execution accounting (the database's row
        versions are persisted separately by :class:`Database`).  An active
        repair generation is never persisted: an in-flight repair does not
        survive a crash, it is simply re-run (its versions are fenced into
        the never-finalized generation and invisible to the live one)."""
        return {
            "current_gen": self.current_gen,
            "statements_executed": self.statements_executed,
            "partition_analysis": self.partition_analysis,
            "db_backend": self.backend,
        }

    def restore_state(self, state: dict) -> None:
        self.current_gen = state["current_gen"]
        self.statements_executed = state["statements_executed"]
        self.partition_analysis = state.get("partition_analysis", True)
        self.repair_gen = None
        self._journal = None
        self._flush_statement_cache()

    # -- rollback -------------------------------------------------------------------

    def rollback_row(self, table_name: str, row_id: int, ts: int) -> Set[Tuple]:
        """Roll ``row_id`` back to just before ``ts`` in the repair gen."""
        if self.repair_gen is None:
            raise RepairError("rollback requires an active repair generation")
        table = self.database.table(table_name)
        with self._lock:
            self._flush_statement_cache()
            return _rollback_row(
                table, row_id, ts, self.current_gen, self.repair_gen, self._journal
            )

    # -- maintenance ------------------------------------------------------------------

    def gc(self, horizon_ts: int) -> int:
        """Drop row versions unreachable from ``horizon_ts`` onwards, plus
        versions stranded in superseded generations (paper §4.2)."""
        removed = 0
        with self._lock:
            self._flush_statement_cache()
            for table in self.database.tables.values():
                removed += table.gc_superseded(self.current_gen)
                removed += table.gc(horizon_ts)
        return removed

    def total_versions(self) -> int:
        return self.database.total_versions()


def _table_of(stmt: ast.Statement) -> str:
    for attr in ("table",):
        name = getattr(stmt, attr, None)
        if name:
            return name
    raise SqlError("statement has no target table")


def split_statements(sql: str) -> List[str]:
    """Split a batch on top-level semicolons, honouring string literals."""
    pieces: List[str] = []
    current: List[str] = []
    in_string = False
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if in_string:
            current.append(ch)
            if ch == "'":
                if i + 1 < n and sql[i + 1] == "'":
                    current.append("'")
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
            current.append(ch)
        elif ch == ";":
            piece = "".join(current).strip()
            if piece and not piece.startswith("--"):
                pieces.append(piece)
            current = []
        else:
            current.append(ch)
        i += 1
    piece = "".join(current).strip()
    if piece and not piece.startswith("--"):
        pieces.append(piece)
    return pieces
