"""The time-travel database facade (paper §4).

``TimeTravelDB`` is what application code talks to.  During normal
execution every statement is stamped with a fresh logical timestamp and
runs in the *current* generation; rich results (read partitions, written
row IDs, result snapshots) are returned so the application runtime can log
them as dependencies.  During repair, statements are re-executed *at their
original historical timestamps* in the *next* generation.

``enabled=False`` gives the "No WARP" baseline used by Table 6: plain
in-place execution with no versioning and no dependency information.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.clock import INFINITY, LogicalClock
from repro.core.errors import RepairError, SqlError
from repro.db.executor import ExecContext, Executor, QueryResult
from repro.db.sql import ast
from repro.db.sql.parser import parse
from repro.db.storage import Database, Table, TableSchema
from repro.db.storage import RowVersion
from repro.ttdb.partitions import ReadSet, ReadSetPlanner, read_partitions
from repro.ttdb.rollback import rollback_row as _rollback_row


class RepairJournal:
    """Versions touched by an active repair generation (paper §4.3).

    ``created`` are versions whose ``start_gen`` was set into the repair
    generation (new writes, re-homed originals); ``fenced`` are versions
    whose ``end_gen`` was clamped to the live generation (preserved
    copies, rollback exclusions).  ``abort_repair`` undoes exactly these,
    making abort O(repair footprint) instead of O(database)."""

    __slots__ = ("created", "fenced")

    def __init__(self) -> None:
        self.created: List[Tuple[Table, RowVersion]] = []
        self.fenced: List[Tuple[Table, RowVersion]] = []

    def note_created(self, table: Table, version: RowVersion) -> None:
        self.created.append((table, version))

    def note_fenced(self, table: Table, version: RowVersion) -> None:
        self.fenced.append((table, version))


@dataclass
class TTResult:
    """One executed statement plus everything dependency tracking needs."""

    sql: str
    params: Tuple[object, ...]
    ts: int
    gen: int
    result: QueryResult
    read_set: ReadSet
    #: True when a write had no WHERE clause (modifies the whole table).
    full_table_write: bool = False

    @property
    def rows(self) -> Optional[List[dict]]:
        return self.result.rows

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def is_write(self) -> bool:
        return self.result.kind != "select"

    def one(self) -> Optional[dict]:
        """First result row or None (SELECT convenience)."""
        if self.result.rows:
            return self.result.rows[0]
        return None

    def scalar(self):
        """Sole value of the first row (aggregate convenience)."""
        row = self.one()
        if row is None:
            return None
        return next(iter(row.values()))


class TimeTravelDB:
    """Versioned, generation-aware execution over :class:`Database`."""

    def __init__(
        self,
        database: Database,
        clock: LogicalClock,
        enabled: bool = True,
    ) -> None:
        self.database = database
        self.clock = clock
        self.enabled = enabled
        self.executor = Executor(database, versioned=enabled)
        self.current_gen = 0
        self.repair_gen: Optional[int] = None
        #: Count of statements executed (all modes), for metrics.
        self.statements_executed = 0
        #: Ablation switch: with partition analysis off, every query reads
        #: ALL partitions of its table (whole-table dependencies).
        self.partition_analysis = True
        #: Ablation switch: with the cache off, partition analysis walks
        #: the WHERE AST on every execution (the seed behavior) instead of
        #: instantiating a per-statement-shape template.
        self.use_read_set_cache = True
        self._read_set_planner = ReadSetPlanner()
        #: Versions created/fenced by the active repair generation; makes
        #: ``abort_repair`` O(repair footprint).
        self._journal: Optional[RepairJournal] = None
        #: Serializes statement execution and generation transitions so
        #: concurrent request threads can hammer the live generation while
        #: a repair writes the next one.  Statement-granular: a run's
        #: queries may interleave with other runs' (as on a real server);
        #: recorded per-query timestamps preserve the actual order for
        #: repair-time re-execution.
        self._lock = threading.RLock()

    # -- schema ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.database.create_table(schema)

    def schema(self, table: str) -> TableSchema:
        return self.database.table(table).schema

    # -- normal execution --------------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> TTResult:
        """Execute one statement in the current generation, now."""
        stmt = parse(sql)
        ts = self.clock.tick()
        ctx = ExecContext(
            ts=ts, gen=self.current_gen, current_gen=self.current_gen, repair=False
        )
        return self._run(stmt, sql, tuple(params), ctx)

    def execute_script(self, sql: str, params: Sequence[object] = ()) -> List[TTResult]:
        """Execute a semicolon-separated batch (the SQL-injection vector).

        A parameterised API would never expose this, which is exactly the
        point: vulnerable application code that builds SQL by string
        concatenation routes through here, so a piggybacked statement in
        user input really executes.
        """
        results = []
        for piece in split_statements(sql):
            results.append(self.execute(piece, params))
        return results

    # -- repair execution ---------------------------------------------------------

    def execute_at(
        self,
        sql: str,
        params: Sequence[object],
        ts: int,
        forced_row_ids: Tuple[int, ...] = (),
    ) -> TTResult:
        """Re-execute a statement at historical time ``ts`` in the repair
        generation (paper §4.4: 'the query always executes in the next
        generation')."""
        if self.repair_gen is None:
            raise RepairError("no repair generation is active")
        stmt = parse(sql)
        ctx = ExecContext(
            ts=ts,
            gen=self.repair_gen,
            current_gen=self.current_gen,
            repair=True,
            forced_row_ids=forced_row_ids,
            journal=self._journal,
        )
        return self._run(stmt, sql, tuple(params), ctx)

    def matching_row_ids(self, sql: str, params: Sequence[object], ts: int) -> Tuple[int, ...]:
        """Row IDs a write's WHERE clause selects at (ts, repair_gen), for
        two-phase re-execution of multi-row writes (paper §4.2)."""
        if self.repair_gen is None:
            raise RepairError("no repair generation is active")
        stmt = parse(sql)
        where = getattr(stmt, "where", None)
        if isinstance(stmt, ast.Insert):
            return ()
        ctx = ExecContext(
            ts=ts,
            gen=self.repair_gen,
            current_gen=self.current_gen,
            repair=True,
            journal=self._journal,
        )
        with self._lock:
            rows = self.executor.matching_rows(
                _table_of(stmt), where, tuple(params), ctx, stmt=stmt, sql=sql
            )
        return tuple(version.row_id for version in rows)

    def peek(self, sql: str, params: Sequence[object] = ()) -> TTResult:
        """Execute a read-only statement at the current time in the current
        generation *without* advancing the clock or counting as workload.

        Used by the online-repair gate to resolve request-derived values
        (e.g. the session's user) before deciding whether to serve a
        request; a probe must not perturb the logical timeline.
        """
        stmt = parse(sql)
        if ast.is_write(stmt):
            raise RepairError("peek only executes read-only statements")
        ctx = ExecContext(
            ts=self.clock.now(),
            gen=self.current_gen,
            current_gen=self.current_gen,
            repair=False,
        )
        with self._lock:
            result = self.executor.execute(stmt, tuple(params), ctx, sql=sql)
        return TTResult(
            sql=sql,
            params=tuple(params),
            ts=ctx.ts,
            gen=ctx.gen,
            result=result,
            read_set=ReadSet(_table_of(stmt), disjuncts=None),
        )

    def _run(
        self, stmt: ast.Statement, sql: str, params: Tuple[object, ...], ctx: ExecContext
    ) -> TTResult:
        with self._lock:
            return self._run_locked(stmt, sql, params, ctx)

    def _run_locked(
        self, stmt: ast.Statement, sql: str, params: Tuple[object, ...], ctx: ExecContext
    ) -> TTResult:
        schema = self.database.table(_table_of(stmt)).schema
        if not self.partition_analysis:
            read_set = ReadSet(_table_of(stmt), disjuncts=None)
        elif self.use_read_set_cache:
            read_set = self._read_set_planner.read_set_for(
                sql, stmt, params, schema, self.database.ddl_epoch
            )
        else:
            read_set = read_partitions(stmt, params, schema)
        result = self.executor.execute(stmt, params, ctx, sql=sql)
        self.statements_executed += 1
        full_table_write = (
            isinstance(stmt, (ast.Update, ast.Delete)) and stmt.where is None
        )
        return TTResult(
            sql=sql,
            params=params,
            ts=ctx.ts,
            gen=ctx.gen,
            result=result,
            read_set=read_set,
            full_table_write=full_table_write,
        )

    # -- generations -----------------------------------------------------------------

    def begin_repair(self) -> int:
        """Fork the next repair generation (paper §4.3)."""
        with self._lock:
            if self.repair_gen is not None:
                raise RepairError("a repair generation is already active")
            if not self.enabled:
                raise RepairError("time-travel is disabled; repair is impossible")
            self.repair_gen = self.current_gen + 1
            self._journal = RepairJournal()
            return self.repair_gen

    def finalize_repair(self) -> None:
        """Atomically switch the repaired generation live.  The lock makes
        the switch atomic with respect to in-flight statements: no
        statement observes a half-switched generation pair."""
        with self._lock:
            if self.repair_gen is None:
                raise RepairError("no repair generation is active")
            self.current_gen = self.repair_gen
            self.repair_gen = None
            self._journal = None

    def abort_repair(self) -> None:
        """Discard the repair generation, restoring the pre-repair state.

        Every mutation repair makes is reversible by construction: versions
        created during repair carry ``start_gen == repair_gen`` (dropped),
        and versions fenced away from the repair generation carry
        ``end_gen == current_gen`` (re-extended) — the live generation never
        observes either.  The repair journal records exactly those versions,
        so abort is O(repair footprint), not a scan of every version of
        every table; the scan remains as a fallback for restored states
        with no journal.
        """
        with self._lock:
            self._abort_repair_locked()

    def _abort_repair_locked(self) -> None:
        if self.repair_gen is None:
            raise RepairError("no repair generation is active")
        repair_gen = self.repair_gen
        journal = self._journal
        if journal is not None:
            for table, version in journal.created:
                chain = table.versions.get(version.row_id)
                if chain is not None and any(v is version for v in chain):
                    table.remove_version(version)
            for table, version in journal.fenced:
                if version.end_gen == self.current_gen:
                    version.end_gen = INFINITY
        else:  # pragma: no cover - defensive fallback
            for table in self.database.tables.values():
                for version in list(table.all_versions()):
                    if version.start_gen >= repair_gen:
                        table.remove_version(version)
                    elif version.end_gen == self.current_gen:
                        version.end_gen = INFINITY
        self.repair_gen = None
        self._journal = None

    # -- persistence ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Generation counters and execution accounting (the database's row
        versions are persisted separately by :class:`Database`).  An active
        repair generation is never persisted: an in-flight repair does not
        survive a crash, it is simply re-run (its versions are fenced into
        the never-finalized generation and invisible to the live one)."""
        return {
            "current_gen": self.current_gen,
            "statements_executed": self.statements_executed,
            "partition_analysis": self.partition_analysis,
        }

    def restore_state(self, state: dict) -> None:
        self.current_gen = state["current_gen"]
        self.statements_executed = state["statements_executed"]
        self.partition_analysis = state.get("partition_analysis", True)
        self.repair_gen = None
        self._journal = None

    # -- rollback -------------------------------------------------------------------

    def rollback_row(self, table_name: str, row_id: int, ts: int) -> Set[Tuple]:
        """Roll ``row_id`` back to just before ``ts`` in the repair gen."""
        if self.repair_gen is None:
            raise RepairError("rollback requires an active repair generation")
        table = self.database.table(table_name)
        with self._lock:
            return _rollback_row(
                table, row_id, ts, self.current_gen, self.repair_gen, self._journal
            )

    # -- maintenance ------------------------------------------------------------------

    def gc(self, horizon_ts: int) -> int:
        """Drop row versions unreachable from ``horizon_ts`` onwards, plus
        versions stranded in superseded generations (paper §4.2)."""
        removed = 0
        with self._lock:
            for table in self.database.tables.values():
                for version in list(table.all_versions()):
                    if version.end_gen < self.current_gen:
                        table.remove_version(version)
                        removed += 1
                removed += table.gc(horizon_ts)
        return removed

    def total_versions(self) -> int:
        return self.database.total_versions()


def _table_of(stmt: ast.Statement) -> str:
    for attr in ("table",):
        name = getattr(stmt, attr, None)
        if name:
            return name
    raise SqlError("statement has no target table")


def split_statements(sql: str) -> List[str]:
    """Split a batch on top-level semicolons, honouring string literals."""
    pieces: List[str] = []
    current: List[str] = []
    in_string = False
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if in_string:
            current.append(ch)
            if ch == "'":
                if i + 1 < n and sql[i + 1] == "'":
                    current.append("'")
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
            current.append(ch)
        elif ch == ";":
            piece = "".join(current).strip()
            if piece and not piece.startswith("--"):
                pieces.append(piece)
            current = []
        else:
            current.append(ch)
        i += 1
    piece = "".join(current).strip()
    if piece and not piece.startswith("--"):
        pieces.append(piece)
    return pieces
