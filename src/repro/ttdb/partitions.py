"""Partition dependency analysis (paper §4.1).

WARP logically splits each table into partitions keyed by the values of
designated partition columns.  A query's WHERE clause is inspected to
determine which partitions it can possibly read; if the clause cannot be
analysed the query conservatively reads *all* partitions.

A :class:`ReadSet` is either ``ALL`` (whole table) or a disjunction of
conjunctions over ``(column, value)`` pairs.  For example, with partition
columns ``(title, editor)``::

    WHERE title = 'Home'                  -> [{title: Home}]
    WHERE title = ? AND editor = ?        -> [{title: p0, editor: p1}]
    WHERE title IN ('A', 'B')             -> [{title: A}, {title: B}]
    WHERE length(body) > 3                -> ALL

Soundness argument for the overlap test: a modified-row set is summarised
by the flat set M of partition keys its rows belong to.  If a query
disjunct D (a conjunction) matches some modified row r, then every
``(col, val)`` in D restricted to partition columns is one of r's keys,
hence a subset of M.  Requiring ``D ⊆ M`` is therefore a sound (and quite
precise) necessary condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.serialize import decode_pairs, encode_pairs
from repro.db.sql import ast
from repro.db.storage import TableSchema

#: Upper bound on disjunct fan-out before falling back to ALL.
_MAX_DISJUNCTS = 64

Constraint = Tuple[str, object]  # (column, value)


@dataclass(frozen=True)
class ReadSet:
    """The partitions of one table a query may read."""

    table: str
    #: ``None`` means ALL partitions; otherwise a list of conjunctions.
    disjuncts: Optional[Tuple[FrozenSet[Constraint], ...]]

    @property
    def is_all(self) -> bool:
        return self.disjuncts is None

    def keys(self) -> FrozenSet[Constraint]:
        """Flat union of all constrained keys (empty when ALL).  Memoized:
        the touch index walks this on every run append, and replayed-run
        clones share their base's ReadSet instances."""
        cached = self.__dict__.get("_keys")
        if cached is not None:
            return cached
        if self.disjuncts is None:
            out = frozenset()
        elif len(self.disjuncts) == 1:
            out = self.disjuncts[0]
        else:
            union = set()
            for disjunct in self.disjuncts:
                union |= disjunct
            out = frozenset(union)
        object.__setattr__(self, "_keys", out)
        return out

    def to_dict(self) -> dict:
        disjuncts = None
        if self.disjuncts is not None:
            disjuncts = [encode_pairs(disjunct) for disjunct in self.disjuncts]
        return {"table": self.table, "disjuncts": disjuncts}

    @classmethod
    def from_dict(cls, data: dict) -> "ReadSet":
        raw = data["disjuncts"]
        disjuncts = None
        if raw is not None:
            disjuncts = tuple(decode_pairs(disjunct) for disjunct in raw)
        return cls(table=data["table"], disjuncts=disjuncts)


def read_partitions(
    stmt: ast.Statement,
    params: Sequence[object],
    schema: TableSchema,
) -> ReadSet:
    """Compute the :class:`ReadSet` for ``stmt`` against ``schema``.

    SELECT/UPDATE/DELETE read the partitions their WHERE clause selects;
    INSERT reads nothing (its written partitions come from the actual rows,
    but uniqueness checks make it *read* its own keys — modelled by the
    caller via written partitions).
    """
    if isinstance(stmt, ast.Insert):
        return ReadSet(stmt.table, disjuncts=())
    where = stmt.where  # type: ignore[union-attr]
    if where is None:
        return ReadSet(stmt.table, disjuncts=None)
    partition_cols = set(schema.partition_columns)
    if not partition_cols:
        return ReadSet(stmt.table, disjuncts=None)
    disjuncts = _analyze(where, params, partition_cols)
    if disjuncts is None:
        return ReadSet(stmt.table, disjuncts=None)
    # An unconstrained disjunct means the query can read any partition.
    for disjunct in disjuncts:
        if not disjunct:
            return ReadSet(stmt.table, disjuncts=None)
    return ReadSet(stmt.table, disjuncts=tuple(frozenset(d.items()) for d in disjuncts))


def _analyze(
    expr: ast.Expr,
    params: Sequence[object],
    partition_cols: set,
) -> Optional[List[Dict[str, object]]]:
    """Return the disjunct list for ``expr``; None signals "give up" (ALL).

    Every returned disjunct is a dict of equality constraints on partition
    columns; ``{}`` means "this branch is unconstrained".
    """
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "AND":
            left = _analyze(expr.left, params, partition_cols)
            right = _analyze(expr.right, params, partition_cols)
            if left is None and right is None:
                return None
            if left is None:
                return right
            if right is None:
                return left
            return _cross(left, right)
        if expr.op == "OR":
            left = _analyze(expr.left, params, partition_cols)
            right = _analyze(expr.right, params, partition_cols)
            if left is None or right is None:
                return None
            merged = left + right
            if len(merged) > _MAX_DISJUNCTS:
                return None
            return merged
        if expr.op == "=":
            constraint = _equality_constraint(expr, params, partition_cols)
            if constraint is not None:
                return [dict([constraint])]
            return [{}]
        # Other comparisons don't pin a partition but don't widen either.
        return [{}]
    if isinstance(expr, ast.InList) and not expr.negated:
        column = _partition_column(expr.needle, partition_cols)
        if column is not None:
            disjuncts = []
            for item in expr.items:
                value = _const_value(item, params)
                if value is _NOT_CONST:
                    return [{}]
                disjuncts.append({column: value})
            if len(disjuncts) > _MAX_DISJUNCTS:
                return None
            return disjuncts
        return [{}]
    # LIKE, BETWEEN, IS NULL, NOT, functions...: no partition information.
    return [{}]


def _cross(
    left: List[Dict[str, object]], right: List[Dict[str, object]]
) -> Optional[List[Dict[str, object]]]:
    out: List[Dict[str, object]] = []
    for a in left:
        for b in right:
            merged = dict(a)
            compatible = True
            for col, val in b.items():
                if col in merged and merged[col] != val:
                    compatible = False  # contradictory conjunction: drop it
                    break
                merged[col] = val
            if compatible:
                out.append(merged)
            if len(out) > _MAX_DISJUNCTS:
                return None
    return out


_NOT_CONST = object()


def _const_value(expr: ast.Expr, params: Sequence[object]):
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param):
        if expr.index < len(params):
            return params[expr.index]
    return _NOT_CONST


def _partition_column(expr: ast.Expr, partition_cols: set) -> Optional[str]:
    if isinstance(expr, ast.ColumnRef) and expr.name in partition_cols:
        return expr.name
    return None


def _equality_constraint(
    expr: ast.BinaryOp, params: Sequence[object], partition_cols: set
) -> Optional[Constraint]:
    column = _partition_column(expr.left, partition_cols)
    value = _const_value(expr.right, params)
    if column is not None and value is not _NOT_CONST:
        return (column, value)
    column = _partition_column(expr.right, partition_cols)
    value = _const_value(expr.left, params)
    if column is not None and value is not _NOT_CONST:
        return (column, value)
    return None


class _ParamToken:
    """Placeholder for an unknown parameter value during symbolic analysis.

    Identity-equal only: comparing two *different* tokens (or a token with
    a constant) means the analysis outcome could depend on runtime values,
    so the template is abandoned (``flag.unsafe``) and that statement falls
    back to per-execution analysis.  Comparing a token with itself is safe
    (``params[i] == params[i]`` at runtime) and stays precise.
    """

    __slots__ = ("index", "_flag")

    def __init__(self, index: int, flag: "_SafetyFlag") -> None:
        self.index = index
        self._flag = flag

    def __eq__(self, other) -> bool:
        if other is self:
            return True
        self._flag.unsafe = True
        return False

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"?{self.index}"


class _SafetyFlag:
    __slots__ = ("unsafe",)

    def __init__(self) -> None:
        self.unsafe = False


def _max_param_index(expr: Optional[ast.Expr]) -> int:
    """Highest ``?`` index in ``expr``, or -1 when parameter-free."""
    if expr is None:
        return -1
    best = -1
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Param):
            best = max(best, node.index)
        elif isinstance(node, ast.BinaryOp):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, ast.UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, ast.InList):
            stack.append(node.needle)
            stack.extend(node.items)
        elif isinstance(node, ast.Like):
            stack.append(node.operand)
            stack.append(node.pattern)
        elif isinstance(node, ast.Between):
            stack.append(node.operand)
            stack.append(node.low)
            stack.append(node.high)
        elif isinstance(node, ast.IsNull):
            stack.append(node.operand)
        elif isinstance(node, (ast.FuncCall, ast.Aggregate)):
            args = node.args if isinstance(node, ast.FuncCall) else (
                (node.arg,) if node.arg is not None else ()
            )
            stack.extend(args)
    return best


class _ReadSetPlan:
    """Cached analysis for one statement shape.

    ``mode`` is ``const`` (parameter-independent result), ``template``
    (disjuncts with token slots to substitute per execution), or
    ``dynamic`` (analysis outcome depends on parameter values; recompute
    every time)."""

    __slots__ = ("epoch", "mode", "read_set", "disjuncts", "n_params")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.mode = "dynamic"
        self.read_set: Optional[ReadSet] = None
        self.disjuncts: Tuple[Tuple[Constraint, ...], ...] = ()
        self.n_params = 0

    def instantiate(
        self, stmt: ast.Statement, params: Sequence[object], schema: TableSchema
    ) -> ReadSet:
        if self.mode == "const":
            assert self.read_set is not None
            return self.read_set
        if self.mode == "template":
            if self.n_params > len(params):
                # A referenced parameter is missing: the seed analysis
                # treats it as non-constant, which the template cannot
                # express — recompute.
                return read_partitions(stmt, params, schema)
            table = getattr(stmt, "table")
            out = []
            for disjunct in self.disjuncts:
                items = []
                for column, value in disjunct:
                    if isinstance(value, _ParamToken):
                        items.append((column, params[value.index]))
                    else:
                        items.append((column, value))
                out.append(frozenset(items))
            return ReadSet(table, tuple(out))
        return read_partitions(stmt, params, schema)


class ReadSetPlanner:
    """Per-statement-shape cache for :func:`read_partitions`.

    The analysis walks the WHERE AST on every execution in the seed; here
    it runs once per ``(sql, table)`` shape — symbolically, with parameter
    tokens — and each execution only substitutes parameter values.
    Invalidated by ``Database.ddl_epoch`` (schema changes)."""

    _CACHE_MAX = 4096

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, str], _ReadSetPlan] = {}

    def read_set_for(
        self,
        sql: str,
        stmt: ast.Statement,
        params: Sequence[object],
        schema: TableSchema,
        epoch: int,
    ) -> ReadSet:
        key = (sql, schema.name)
        plan = self._cache.get(key)
        if plan is None or plan.epoch != epoch:
            plan = self._build(stmt, schema, epoch)
            if len(self._cache) >= self._CACHE_MAX:
                self._cache.clear()
            self._cache[key] = plan
        return plan.instantiate(stmt, params, schema)

    def _build(
        self, stmt: ast.Statement, schema: TableSchema, epoch: int
    ) -> _ReadSetPlan:
        plan = _ReadSetPlan(epoch)
        where = getattr(stmt, "where", None)
        if isinstance(stmt, ast.Insert) or where is None or not schema.partition_columns:
            plan.mode = "const"
            plan.read_set = read_partitions(stmt, (), schema)
            return plan
        max_index = _max_param_index(where)
        if max_index < 0:
            plan.mode = "const"
            plan.read_set = read_partitions(stmt, (), schema)
            return plan
        flag = _SafetyFlag()
        tokens = tuple(_ParamToken(i, flag) for i in range(max_index + 1))
        symbolic = read_partitions(stmt, tokens, schema)
        if flag.unsafe:
            plan.mode = "dynamic"
            return plan
        if symbolic.disjuncts is None:
            # ALL partitions regardless of parameter values.
            plan.mode = "const"
            plan.read_set = symbolic
            return plan
        plan.mode = "template"
        plan.n_params = max_index + 1
        plan.disjuncts = tuple(
            tuple(disjunct) for disjunct in symbolic.disjuncts
        )
        return plan


class ModifiedPartitions:
    """Tracks which partitions repair has touched, and since when.

    ``record(table, keys, ts)`` notes that rows belonging to partition
    ``keys`` changed at logical time ``ts``; ``record_all(table, ts)`` marks
    the whole table.  ``affects(read_set, ts)`` answers: could a query with
    this read set, executed at this time, observe any repaired data?
    """

    def __init__(self) -> None:
        self._keys: Dict[Tuple[str, str, object], int] = {}
        self._tables_all: Dict[str, int] = {}
        self._tables_any: Dict[str, int] = {}

    def record(self, table: str, keys, ts: int) -> None:
        for key in keys:
            full = key if len(key) == 3 else (table,) + tuple(key)
            prior = self._keys.get(full)
            if prior is None or ts < prior:
                self._keys[full] = ts
        if keys:
            prior = self._tables_any.get(table)
            if prior is None or ts < prior:
                self._tables_any[table] = ts

    def record_all(self, table: str, ts: int) -> None:
        prior = self._tables_all.get(table)
        if prior is None or ts < prior:
            self._tables_all[table] = ts
        prior = self._tables_any.get(table)
        if prior is None or ts < prior:
            self._tables_any[table] = ts

    def affects(self, read_set: ReadSet, ts: int) -> bool:
        table = read_set.table
        all_ts = self._tables_all.get(table)
        if all_ts is not None and all_ts <= ts:
            return True
        if read_set.is_all:
            any_ts = self._tables_any.get(table)
            return any_ts is not None and any_ts <= ts
        for disjunct in read_set.disjuncts or ():
            if not disjunct:
                any_ts = self._tables_any.get(table)
                if any_ts is not None and any_ts <= ts:
                    return True
                continue
            if all(
                self._keys.get((table, col, val)) is not None
                and self._keys[(table, col, val)] <= ts
                for col, val in disjunct
            ):
                return True
        return False

    def affects_keys(self, table: str, keys, ts: int) -> bool:
        """True if any of the concrete partition ``keys`` was modified at or
        before ``ts`` (used for write-write dependencies)."""
        all_ts = self._tables_all.get(table)
        if all_ts is not None and all_ts <= ts:
            return True
        for key in keys:
            full = key if len(key) == 3 else (table,) + tuple(key)
            mod_ts = self._keys.get(full)
            if mod_ts is not None and mod_ts <= ts:
                return True
        return False

    def is_empty(self) -> bool:
        return not self._keys and not self._tables_all

    def snapshot_keys(self):
        return dict(self._keys)
