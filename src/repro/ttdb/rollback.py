"""Row-level rollback inside a repair generation (paper §4.2).

Rolling back row R to time T means: in the repair (next) generation, R's
history after T never happened.  Versions that started at or after T are
excluded from the next generation; the version valid just before T is
re-extended to ``∞``.  The current generation's view must stay untouched
(§4.3), so versions shared with the live generation are never mutated in a
way the live generation can observe — they are either re-homed with a
preserved copy or fenced off by ``end_gen``.

All ``end_ts`` changes go through :meth:`Table.close_version` /
:meth:`Table.reopen_version` so the table's live-version map stays exact,
and every created/fenced version is reported to the repair journal (when
given) so ``abort_repair`` can undo the repair in O(footprint).
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.core.clock import INFINITY
from repro.db.storage import RowVersion, Table


def rollback_row(
    table: Table,
    row_id: int,
    ts: int,
    current_gen: int,
    repair_gen: int,
    journal=None,
) -> Set[Tuple[str, str, object]]:
    """Roll back ``row_id`` to just before ``ts`` in ``repair_gen``.

    Returns the set of partition keys whose contents changed as a result
    (used to drive re-execution of dependent queries).
    """
    schema = table.schema
    touched: Set[Tuple[str, str, object]] = set()
    chain = list(table.row_versions(row_id))
    if not chain:
        return touched

    survivors = []
    for version in chain:
        if not version.visible_in_gen(repair_gen):
            continue
        if version.start_ts >= ts:
            _exclude_from_gen(table, version, current_gen, repair_gen, journal)
            touched |= _partition_keys(schema, version.data)
        else:
            survivors.append(version)

    if not survivors:
        return touched

    latest = max(survivors, key=lambda v: v.end_ts)
    if latest.end_ts == INFINITY:
        return touched
    # Re-extend the latest surviving version to "current" in the repair
    # generation without disturbing the live generation's view of it.
    if latest.visible_in_gen(current_gen):
        extended = latest.copy()
        extended.start_gen = repair_gen
        extended.end_ts = INFINITY
        table.fence_version(latest, min(latest.end_gen, current_gen))
        table.add_version(extended)
        if journal is not None:
            journal.note_created(table, extended)
            journal.note_fenced(table, latest)
    else:
        table.reopen_version(latest)
    touched |= _partition_keys(schema, latest.data)
    return touched


def version_at(table: Table, row_id: int, ts: int, gen: int) -> Optional[RowVersion]:
    """The version of ``row_id`` visible at ``(ts, gen)``, if any."""
    return table.visible_version(row_id, ts, gen)


def _exclude_from_gen(
    table: Table, version: RowVersion, current_gen: int, repair_gen: int, journal
) -> None:
    if version.start_gen >= repair_gen:
        # Created during this repair: it can simply be discarded.
        table.remove_version(version)
    else:
        table.fence_version(version, current_gen)
        if journal is not None:
            journal.note_fenced(table, version)


def _partition_keys(schema, data) -> Set[Tuple[str, str, object]]:
    keys = set()
    for column in schema.partition_columns:
        value = data.get(column)
        if isinstance(value, (str, int, float, bool)) or value is None:
            keys.add((schema.name, column, value))
    return keys
