"""WARP's time-travel database (paper §4).

Layers continuous versioning, repair generations, partition-based
dependency analysis and row-level rollback over the raw SQL engine in
:mod:`repro.db`.
"""

from repro.ttdb.partitions import ReadSet, read_partitions
from repro.ttdb.rollback import rollback_row
from repro.ttdb.timetravel import TimeTravelDB, TTResult

__all__ = [
    "TimeTravelDB",
    "TTResult",
    "ReadSet",
    "read_partitions",
    "rollback_row",
]
