"""Pluggable storage engines — the seam under the time-travel database.

The reproduction originally hard-wired the pure-Python version-chain store
(:mod:`repro.db.storage`).  This module names the contract that store was
implicitly defining, so alternate backends — notably the SQLite WAL-mode
engine in :mod:`repro.db.sqlite_engine` — can slot in underneath the
executor, the time-travel layer, repair, and persistence without any of
those layers changing.

Engine contract
===============

A storage engine is a ``Database``-shaped object:

``backend``
    Stable identifier string recorded in snapshots (``"python"``,
    ``"sqlite"``).
``tables`` / ``ddl_epoch`` / ``create_table`` / ``table`` / ``has_table``
    / ``drop_table`` / ``total_versions`` / ``gc`` / ``to_dict`` /
    ``restore``
    DDL and whole-database operations, exactly as on
    :class:`repro.db.storage.Database`.  ``to_dict``/``restore`` use the
    backend-independent JSON shape, so snapshots are portable across
    engines.

Each table it returns is a ``Table``-shaped object providing:

* **version plumbing** — ``add_version``, ``close_version``,
  ``reopen_version``, ``remove_version``, ``replace_data``, plus the
  mutation seam used by repair/rollback/abort: ``note_row_id``,
  ``rehome_version``, ``fence_version``, ``unfence_version``,
  ``discard_version``, ``gc_superseded``, ``set_plain_data``;
* **visibility** — ``visible_rows``, ``visible_version``,
  ``row_versions``, ``all_versions``, ``plain_rows``;
* **access paths** — ``candidate_row_ids`` (may return None: "no index,
  scan"), and optionally ``range_candidate_row_ids`` / ``ordered_groups``
  (the in-memory engine's ordered value index) or ``fetch_plan`` (the
  SQLite engine's SQL-lowering fast path; see
  :mod:`repro.db.sql.lower`);
* **bookkeeping** — ``allocate_row_id``, ``unique_conflict``, ``gc``,
  ``integrity_errors``, ``version_count``, ``schema``, ``to_dict``.

Mutators receive the same :class:`repro.db.storage.RowVersion` objects the
reads returned.  The in-memory engine keys everything on object identity;
the SQLite engine stamps ``RowVersion.vid`` with the shadow-table rowid at
materialization time and keys write-through updates on it, which is why
all generation/interval mutations above the storage layer must go through
the seam methods rather than poking attributes.

Backend selection
=================

:func:`create_database` resolves the backend from an explicit argument or
the ``REPRO_DB_BACKEND`` environment variable (default ``"python"``), so
every test suite and bench can be pointed at either engine without code
changes.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.core.errors import StorageError
from repro.db.storage import Database

#: Environment knob consulted when no explicit backend is requested.
BACKEND_ENV = "REPRO_DB_BACKEND"

#: Default engine when neither the caller nor the environment chooses.
DEFAULT_BACKEND = "python"


class PyMemoryEngine(Database):
    """The original pure-Python version-chain store, now one engine among
    several.  Deliberately adds nothing: :class:`repro.db.storage.Database`
    *is* the reference implementation of the engine contract, and the
    40-seed planned≡naive property suite pins its behavior."""

    backend = "python"


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalize a backend choice: explicit argument wins, then the
    ``REPRO_DB_BACKEND`` environment variable, then ``"python"``."""
    choice = backend
    if choice is None:
        choice = os.environ.get(BACKEND_ENV)
    choice = (choice or DEFAULT_BACKEND).strip().lower()
    if choice not in ("python", "sqlite"):
        raise StorageError(
            f"unknown storage backend {choice!r} (expected 'python' or 'sqlite')"
        )
    return choice


def create_database(
    backend: Optional[str] = None,
    path: Optional[str] = None,
    fault_plane=None,
):
    """Instantiate a storage engine.

    ``path`` only matters for file-backed engines: the SQLite engine puts
    its WAL-mode database files there (and reattaches to existing ones);
    when omitted it uses a self-cleaning temporary directory, which keeps
    every existing suite hermetic under ``REPRO_DB_BACKEND=sqlite``.
    ``fault_plane`` lets the deterministic fault-injection plane intercept
    the engine's I/O boundary (see ``sqlite.exec`` / ``sqlite.commit`` in
    :mod:`repro.faults.plane`).
    """
    choice = resolve_backend(backend)
    if choice == "python":
        return PyMemoryEngine()
    from repro.db.sqlite_engine import SqliteEngine

    return SqliteEngine(path=path, fault_plane=fault_plane)


def snapshot_backend(state: dict, default: Optional[str] = None) -> str:
    """Backend recorded in a persisted system snapshot.

    Pre-engine snapshots carry no ``storage_config``; they were produced
    by the in-memory store but restore cleanly into any engine, so the
    caller's default (usually the environment) wins for them.
    """
    config = state.get("storage_config") or {}
    recorded = config.get("backend")
    if recorded is None:
        return resolve_backend(default)
    return resolve_backend(recorded)
