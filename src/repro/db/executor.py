"""Statement execution against the versioned storage.

The executor implements the query-rewriting semantics of paper §4.4
directly on :class:`repro.db.storage.Table` version chains:

* reads are restricted to versions visible at ``(ts, gen)``;
* normal-execution writes close the old version at ``ts`` and open a new
  one in the executing generation;
* repair-mode writes first preserve a copy of each modified row for the
  *current* generation, so the live application keeps an unchanged view
  while repair rewrites history in the *next* generation (§4.3).

It also supports a *plain* mode (``versioned=False``) used by the
"No WARP" baseline in Table 6: updates mutate rows in place and nothing is
versioned, which is what a stock database would do.

Execution runs through cached, compiled :class:`repro.db.planner.ExecPlan`
objects by default (``use_planner=True``).  Setting ``use_planner=False``
switches to the naive tree-walking reference paths, which are kept
byte-for-byte equivalent — ``tests/test_executor_property.py`` proves
result, dependency and version-store parity between the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.clock import INFINITY
from repro.core.errors import SqlError, StorageError
from repro.db.planner import MISSING, ExecPlan, build_plan, default_name, sort_key
from repro.db.sql import ast
from repro.db.sql.eval import aggregate, evaluate, truthy
from repro.db.storage import Database, RowVersion, Table, order_key

PartitionKey = Tuple[str, str, object]  # (table, column, value)

#: Plan-cache bound; unique statement texts (e.g. injected SQL built by
#: string concatenation) must not grow the cache without limit.
_PLAN_CACHE_MAX = 4096


@dataclass
class ExecContext:
    """Where/when a statement executes.

    ``gen`` is the generation the statement runs in; ``current_gen`` is the
    live generation (they differ only during repair); ``repair`` marks
    repair-mode writes which must preserve current-generation copies.
    ``forced_row_ids`` makes INSERT re-execution reuse the original rows'
    IDs so identical re-executions compare equal (paper §4.2).
    ``journal`` (set for repair-context execution) records created/fenced
    versions so ``abort_repair`` is O(repair footprint).
    """

    ts: int
    gen: int
    current_gen: int
    repair: bool = False
    forced_row_ids: Tuple[int, ...] = ()
    journal: Optional[object] = field(default=None, repr=False)


@dataclass
class QueryResult:
    """Outcome of one statement, rich enough for dependency tracking."""

    kind: str  # 'select' | 'insert' | 'update' | 'delete'
    table: str
    rows: Optional[List[Dict[str, object]]] = None
    rowcount: int = 0
    affected_row_ids: Tuple[int, ...] = ()
    inserted_row_ids: Tuple[int, ...] = ()
    #: Logical rows a SELECT examined (row-level read dependencies; used by
    #: the taint-tracking baseline of §8.4).
    read_row_ids: Tuple[int, ...] = ()
    ok: bool = True
    error: Optional[str] = None
    written_partitions: FrozenSet[PartitionKey] = frozenset()

    def snapshot(self) -> Tuple:
        """Canonical comparable form (paper: 'produces results different
        from the original execution').  Memoized: callers snapshot at
        record time, before scripts can mutate the returned row dicts, and
        the recording pipeline asks more than once per statement."""
        cached = self.__dict__.get("_snapshot")
        if cached is not None:
            return cached
        if self.kind == "select":
            assert self.rows is not None
            value = (
                "select",
                self.ok,
                tuple(tuple(sorted(row.items())) for row in self.rows),
            )
        else:
            value = (
                "write",
                self.kind,
                self.ok,
                self.rowcount,
                tuple(sorted(self.affected_row_ids)),
                tuple(sorted(self.inserted_row_ids)),
            )
        self._snapshot = value
        return value


class Executor:
    """Executes parsed statements against a :class:`Database`."""

    def __init__(
        self, database: Database, versioned: bool = True, use_planner: bool = True
    ) -> None:
        self.database = database
        self.versioned = versioned
        #: Planner switch: False falls back to the naive tree-walking
        #: reference (used by the equivalence property test and ablations).
        self.use_planner = use_planner
        self._plan_cache: Dict[object, ExecPlan] = {}

    # -- dispatch -------------------------------------------------------------

    def execute(
        self,
        stmt: ast.Statement,
        params: Sequence[object],
        ctx: ExecContext,
        sql: Optional[str] = None,
    ) -> QueryResult:
        plan = self.plan_for(stmt, sql) if self.use_planner else None
        if isinstance(stmt, ast.Select):
            return self._select(stmt, params, ctx, plan)
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt, params, ctx, plan)
        if isinstance(stmt, ast.Update):
            return self._update(stmt, params, ctx, plan)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt, params, ctx, plan)
        raise SqlError(f"cannot execute {type(stmt).__name__}")

    def plan_for(self, stmt: ast.Statement, sql: Optional[str] = None) -> ExecPlan:
        """Cached compiled plan for ``stmt`` (keyed by SQL text when given,
        else by the statement AST), invalidated on any schema change."""
        key = sql if sql is not None else stmt
        epoch = self.database.ddl_epoch
        plan = self._plan_cache.get(key)
        if plan is None or plan.epoch != epoch:
            table = self.database.table(_stmt_table(stmt))
            plan = build_plan(stmt, table, epoch)
            if len(self._plan_cache) >= _PLAN_CACHE_MAX:
                self._plan_cache.clear()
            self._plan_cache[key] = plan
        return plan

    # -- visibility -----------------------------------------------------------

    def _visible(self, table: Table, ctx: ExecContext):
        if self.versioned:
            yield from table.visible_rows(ctx.ts, ctx.gen)
        else:
            yield from table.plain_rows()

    def _version_of(self, table: Table, row_id: int, ctx: ExecContext):
        if self.versioned:
            return table.visible_version(row_id, ctx.ts, ctx.gen)
        chain = table.row_versions(row_id)
        return chain[0] if chain else None

    def _matching(
        self,
        table: Table,
        where: Optional[ast.Expr],
        params: Sequence[object],
        ctx: ExecContext,
        plan: Optional[ExecPlan] = None,
    ) -> List[RowVersion]:
        if plan is not None:
            fetch = getattr(table, "fetch_plan", None)
            if fetch is not None:
                # SQL-lowering engines fetch matched rows natively (lowered
                # WHERE plus visibility in one query); order is row-ID order.
                matched, _ = fetch(plan, params, ctx, self.versioned, False)
                return matched
            candidates = self._plan_candidates(table, plan, params)
            if candidates is not None:
                return self._match_candidates(table, candidates, plan, params, ctx)
            return self._plan_scan(table, plan, params, ctx)
        candidates = self._index_candidates(table, where, params)
        if candidates is not None:
            matched = []
            for row_id in sorted(candidates):
                version = self._version_of(table, row_id, ctx)
                if version is not None and (
                    where is None or truthy(evaluate(where, version.data, params))
                ):
                    matched.append(version)
            return matched
        matched = []
        for version in self._visible(table, ctx):
            if where is None or truthy(evaluate(where, version.data, params)):
                matched.append(version)
        return matched

    # -- planned access paths ---------------------------------------------------

    def _plan_candidates(
        self, table: Table, plan: ExecPlan, params: Sequence[object]
    ) -> Optional[set]:
        """Candidate row IDs from the best index probe, or None to scan."""
        best = None
        for column, getter in plan.eq_probes:
            value = getter(params)
            if value is MISSING:
                continue
            rows = table.candidate_row_ids(column, value)
            if rows is None:
                continue
            if best is None or len(rows) < len(best):
                best = rows
        if best is not None:
            return best
        if plan.range_probe is not None:
            column, lo_getter, lo_incl, hi_getter, hi_incl = plan.range_probe
            lo = hi = None
            if lo_getter is not None:
                lo = lo_getter(params)
                if lo is MISSING or lo is None:
                    return None
            if hi_getter is not None:
                hi = hi_getter(params)
                if hi is MISSING or hi is None:
                    return None
            return table.range_candidate_row_ids(column, lo, lo_incl, hi, hi_incl)
        return None

    def _match_candidates(
        self, table, candidates, plan: ExecPlan, params, ctx
    ) -> List[RowVersion]:
        pred = plan.pred
        matched = []
        for row_id in sorted(candidates):
            version = self._version_of(table, row_id, ctx)
            if version is not None and (pred is None or pred(version.data, params)):
                matched.append(version)
        return matched

    def _plan_scan(self, table, plan: ExecPlan, params, ctx) -> List[RowVersion]:
        pred = plan.pred
        if pred is None:
            return list(self._visible(table, ctx))
        return [
            version
            for version in self._visible(table, ctx)
            if pred(version.data, params)
        ]

    def _ordered_matched(
        self, table: Table, plan: ExecPlan, params, ctx
    ) -> Optional[List[RowVersion]]:
        """Matched rows already in ORDER BY order, via the ordered value
        index; equal-sort-key groups are merged and walked in row-ID order,
        so the result matches a stable sort of the row-ID-ordered scan.

        Deliberately no early termination at LIMIT: ``read_row_ids`` must
        list *every* matched row (row-level read dependencies for the
        taint baseline), so the traversal's win is skipping the sort, not
        the scan."""
        column, descending = plan.order_index
        groups = table.ordered_groups(column, descending)
        if groups is None:
            return None
        pred = plan.pred
        matched = []
        for group_key, row_ids in groups:
            for row_id in row_ids:
                version = self._version_of(table, row_id, ctx)
                if version is None:
                    continue
                if order_key(version.data.get(column)) != group_key:
                    continue  # stale index entry: row moved to another value
                if pred is None or pred(version.data, params):
                    matched.append(version)
        return matched

    def _index_candidates(
        self,
        table: Table,
        where: Optional[ast.Expr],
        params: Sequence[object],
    ):
        """Candidate row IDs from the equality index, or None to full-scan
        (naive reference path).

        Only top-level AND-ed ``col = const`` conjuncts are considered; the
        index is a superset, so every candidate is still visibility- and
        WHERE-checked.
        """
        if where is None:
            return None
        best = None
        for column, value in _equality_conjuncts(where, params):
            rows = table.candidate_row_ids(column, value)
            if rows is None:
                continue
            if best is None or len(rows) < len(best):
                best = rows
        return best

    # -- SELECT ---------------------------------------------------------------

    def _select(
        self,
        stmt: ast.Select,
        params: Sequence[object],
        ctx: ExecContext,
        plan: Optional[ExecPlan] = None,
    ) -> QueryResult:
        table = self.database.table(stmt.table)
        pre_sorted = False
        fetch = getattr(table, "fetch_plan", None) if plan is not None else None
        if fetch is not None:
            matched, pre_sorted = fetch(
                plan,
                params,
                ctx,
                self.versioned,
                bool(stmt.order_by) and not stmt.is_aggregate,
            )
        elif plan is not None:
            candidates = self._plan_candidates(table, plan, params)
            if candidates is not None:
                matched = self._match_candidates(table, candidates, plan, params, ctx)
            elif plan.order_index is not None and not stmt.is_aggregate:
                ordered = self._ordered_matched(table, plan, params, ctx)
                if ordered is not None:
                    matched = ordered
                    pre_sorted = True
                else:
                    matched = self._plan_scan(table, plan, params, ctx)
            else:
                matched = self._plan_scan(table, plan, params, ctx)
        else:
            matched = self._matching(table, stmt.where, params, ctx)

        if stmt.is_aggregate:
            datas = [version.data for version in matched]
            row: Dict[str, object] = {}
            if plan is not None:
                for name, agg_fn in plan.agg_items:
                    row[name] = agg_fn(datas, params)
            else:
                for index, item in enumerate(stmt.items):
                    name = item.alias or default_name(item.expr, index)
                    if isinstance(item.expr, ast.Aggregate):
                        row[name] = aggregate(
                            item.expr.name, item.expr.arg, datas, params
                        )
                    else:
                        raise SqlError("cannot mix aggregates and plain columns")
            return QueryResult(
                kind="select",
                table=stmt.table,
                rows=[row],
                rowcount=1,
                read_row_ids=tuple(version.row_id for version in matched),
            )

        if stmt.order_by and not pre_sorted:
            if plan is not None:
                sort_items = plan.sort_items
                matched.sort(
                    key=lambda v: tuple(
                        sort_key(fn(v.data, params), descending)
                        for fn, descending in sort_items
                    )
                )
            else:
                matched.sort(
                    key=lambda v: tuple(
                        sort_key(evaluate(o.expr, v.data, params), o.descending)
                        for o in stmt.order_by
                    )
                )

        rows: List[Dict[str, object]] = []
        if stmt.is_star:
            for version in matched:
                rows.append(dict(version.data))
        elif plan is not None:
            select_items = plan.select_items
            for version in matched:
                data = version.data
                rows.append(
                    {name: fn(data, params) for name, fn in select_items}
                )
        else:
            for version in matched:
                projected: Dict[str, object] = {}
                for index, item in enumerate(stmt.items):
                    name = item.alias or default_name(item.expr, index)
                    projected[name] = evaluate(item.expr, version.data, params)
                rows.append(projected)

        if stmt.distinct:
            seen = set()
            unique_rows = []
            for row in rows:
                key = tuple(sorted(row.items()))
                if key not in seen:
                    seen.add(key)
                    unique_rows.append(row)
            rows = unique_rows
        if stmt.offset:
            rows = rows[stmt.offset :]
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        return QueryResult(
            kind="select",
            table=stmt.table,
            rows=rows,
            rowcount=len(rows),
            read_row_ids=tuple(version.row_id for version in matched),
        )

    # -- INSERT ---------------------------------------------------------------

    def _insert(
        self,
        stmt: ast.Insert,
        params: Sequence[object],
        ctx: ExecContext,
        plan: Optional[ExecPlan] = None,
    ) -> QueryResult:
        table = self.database.table(stmt.table)
        schema = table.schema
        new_rows: List[Dict[str, object]] = []
        if plan is not None:
            for row_builder in plan.insert_rows:
                data = {col.name: None for col in schema.columns}
                for column, value_fn in row_builder:
                    data[column] = value_fn({}, params)
                new_rows.append(data)
        else:
            for column in stmt.columns:
                if not schema.has_column(column):
                    raise StorageError(
                        f"table {schema.name!r} has no column {column!r}"
                    )
            for value_tuple in stmt.rows:
                data = {col.name: None for col in schema.columns}
                for column, expr in zip(stmt.columns, value_tuple):
                    data[column] = evaluate(expr, {}, params)
                new_rows.append(data)

        # Uniqueness among rows visible *now* (plus the batch itself).
        for index, data in enumerate(new_rows):
            violated = table.unique_conflict(data, ctx.ts, ctx.gen)
            if violated is None:
                violated = _batch_conflict(schema.unique_keys, new_rows, index)
            if violated is not None:
                return QueryResult(
                    kind="insert",
                    table=stmt.table,
                    ok=False,
                    error=f"unique constraint {violated} violated",
                )

        inserted = []
        partitions = set()
        for index, data in enumerate(new_rows):
            if index < len(ctx.forced_row_ids):
                row_id = ctx.forced_row_ids[index]
                table.note_row_id(row_id)
            else:
                row_id = table.allocate_row_id(data)
            # AUTO INCREMENT semantics: surface the allocated ID through the
            # designated row-ID column when the application left it NULL.
            id_column = schema.row_id_column
            if id_column is not None and data.get(id_column) is None:
                data[id_column] = row_id
            if self.versioned:
                version = RowVersion(
                    row_id,
                    data,
                    start_ts=ctx.ts,
                    end_ts=INFINITY,
                    start_gen=ctx.gen,
                    end_gen=INFINITY,
                )
            else:
                version = RowVersion(row_id, data, start_ts=0)
            table.add_version(version)
            if ctx.repair and ctx.journal is not None:
                ctx.journal.note_created(table, version)
            inserted.append(row_id)
            partitions |= _partition_keys(schema, data)
        return QueryResult(
            kind="insert",
            table=stmt.table,
            rowcount=len(inserted),
            inserted_row_ids=tuple(inserted),
            written_partitions=frozenset(partitions),
        )

    # -- UPDATE ---------------------------------------------------------------

    def _update(
        self,
        stmt: ast.Update,
        params: Sequence[object],
        ctx: ExecContext,
        plan: Optional[ExecPlan] = None,
    ) -> QueryResult:
        table = self.database.table(stmt.table)
        schema = table.schema
        if plan is None:
            for column, _ in stmt.assignments:
                if not schema.has_column(column):
                    raise StorageError(
                        f"table {schema.name!r} has no column {column!r}"
                    )
        matched = self._matching(table, stmt.where, params, ctx, plan)

        updates: List[Tuple[RowVersion, Dict[str, object]]] = []
        if plan is not None:
            assignments = plan.assignments
            for version in matched:
                new_data = dict(version.data)
                for column, value_fn in assignments:
                    new_data[column] = value_fn(version.data, params)
                updates.append((version, new_data))
        else:
            for version in matched:
                new_data = dict(version.data)
                for column, expr in stmt.assignments:
                    new_data[column] = evaluate(expr, version.data, params)
                updates.append((version, new_data))

        # Uniqueness check before mutating anything.
        for version, new_data in updates:
            violated = table.unique_conflict(
                new_data, ctx.ts, ctx.gen, exclude_row_id=version.row_id
            )
            if violated is not None:
                return QueryResult(
                    kind="update",
                    table=stmt.table,
                    ok=False,
                    error=f"unique constraint {violated} violated",
                )

        # When no assignment writes a partition (resp. indexed) column, the
        # old and new rows have identical partition keys (index entries), so
        # one computation covers both — observably identical, half the work.
        partitions_once = plan is not None and not plan.touches_partitions
        index_new_data = plan.touches_indexed if plan is not None else True
        partitions = set()
        affected = []
        for version, new_data in updates:
            if partitions_once:
                partitions |= _partition_keys(schema, new_data)
            else:
                partitions |= _partition_keys(schema, version.data)
                partitions |= _partition_keys(schema, new_data)
            affected.append(version.row_id)
            if not self.versioned:
                table.set_plain_data(version, new_data, reindex=index_new_data)
                continue
            self._supersede(table, version, ctx)
            replacement = RowVersion(
                version.row_id,
                new_data,
                start_ts=ctx.ts,
                end_ts=INFINITY,
                start_gen=ctx.gen,
                end_gen=INFINITY,
            )
            table.add_version(replacement, index_data=index_new_data)
            if ctx.repair and ctx.journal is not None:
                ctx.journal.note_created(table, replacement)
        return QueryResult(
            kind="update",
            table=stmt.table,
            rowcount=len(affected),
            affected_row_ids=tuple(affected),
            written_partitions=frozenset(partitions),
        )

    # -- DELETE ---------------------------------------------------------------

    def _delete(
        self,
        stmt: ast.Delete,
        params: Sequence[object],
        ctx: ExecContext,
        plan: Optional[ExecPlan] = None,
    ) -> QueryResult:
        table = self.database.table(stmt.table)
        matched = self._matching(table, stmt.where, params, ctx, plan)
        partitions = set()
        affected = []
        for version in matched:
            partitions |= _partition_keys(table.schema, version.data)
            affected.append(version.row_id)
            if not self.versioned:
                table.remove_version(version)
                continue
            self._supersede(table, version, ctx)
        return QueryResult(
            kind="delete",
            table=stmt.table,
            rowcount=len(affected),
            affected_row_ids=tuple(affected),
            written_partitions=frozenset(partitions),
        )

    # -- repair support -----------------------------------------------------------

    def matching_rows(
        self,
        table_name: str,
        where: Optional[ast.Expr],
        params: Sequence[object],
        ctx: ExecContext,
        stmt: Optional[ast.Statement] = None,
        sql: Optional[str] = None,
    ) -> List[RowVersion]:
        """Rows a WHERE clause selects at (ts, gen) — used by two-phase
        write re-execution to find the *new* matching row IDs (§4.2).
        Hits the same compiled plans as normal execution when available."""
        table = self.database.table(table_name)
        plan = None
        if self.use_planner and stmt is not None:
            plan = self.plan_for(stmt, sql)
        return self._matching(table, where, params, ctx, plan)

    # -- write plumbing ---------------------------------------------------------

    def _supersede(self, table: Table, version: RowVersion, ctx: ExecContext) -> None:
        """End ``version`` at ``ctx.ts`` in the executing generation.

        In repair mode this is the §4.4 dance: matching rows that are still
        visible to the live (current) generation get a preserved copy so
        concurrent normal execution keeps seeing them, and the version being
        modified is re-homed into the repair generation before being closed.
        """
        if ctx.repair and version.start_gen <= ctx.current_gen:
            preserved = version.copy()
            preserved.end_gen = ctx.current_gen
            table.add_version(preserved)
            table.rehome_version(version, ctx.gen)
            if ctx.journal is not None:
                ctx.journal.note_fenced(table, preserved)
                ctx.journal.note_created(table, version)
        table.close_version(version, ctx.ts)


def _batch_conflict(
    unique_keys: Tuple[Tuple[str, ...], ...],
    new_rows: List[Dict[str, object]],
    index: int,
) -> Optional[Tuple[str, ...]]:
    """Check row ``index`` against earlier rows of the same INSERT batch."""
    data = new_rows[index]
    for key in unique_keys:
        candidate = tuple(data.get(col) for col in key)
        if any(value is None for value in candidate):
            continue
        for other in new_rows[:index]:
            if tuple(other.get(col) for col in key) == candidate:
                return key
    return None


def _equality_conjuncts(expr: ast.Expr, params: Sequence[object]):
    """Yield (column, value) for top-level AND-ed equality comparisons."""
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "AND":
            yield from _equality_conjuncts(expr.left, params)
            yield from _equality_conjuncts(expr.right, params)
            return
        if expr.op == "=":
            pairs = (
                (expr.left, expr.right),
                (expr.right, expr.left),
            )
            for column_side, value_side in pairs:
                if isinstance(column_side, ast.ColumnRef):
                    if isinstance(value_side, ast.Literal):
                        yield (column_side.name, value_side.value)
                    elif isinstance(value_side, ast.Param) and value_side.index < len(
                        params
                    ):
                        yield (column_side.name, params[value_side.index])


def _partition_keys(schema, data: Dict[str, object]) -> set:
    """The (table, column, value) partition keys a concrete row belongs to."""
    keys = set()
    for column in schema.partition_columns:
        value = data.get(column)
        if isinstance(value, (str, int, float, bool)) or value is None:
            keys.add((schema.name, column, value))
    return keys


def _stmt_table(stmt: ast.Statement) -> str:
    name = getattr(stmt, "table", None)
    if not name:
        raise SqlError("statement has no target table")
    return name


# Backwards-compatible aliases (historical home of these helpers).
_default_name = default_name
_sort_key = sort_key
