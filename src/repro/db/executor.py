"""Statement execution against the versioned storage.

The executor implements the query-rewriting semantics of paper §4.4
directly on :class:`repro.db.storage.Table` version chains:

* reads are restricted to versions visible at ``(ts, gen)``;
* normal-execution writes close the old version at ``ts`` and open a new
  one in the executing generation;
* repair-mode writes first preserve a copy of each modified row for the
  *current* generation, so the live application keeps an unchanged view
  while repair rewrites history in the *next* generation (§4.3).

It also supports a *plain* mode (``versioned=False``) used by the
"No WARP" baseline in Table 6: updates mutate rows in place and nothing is
versioned, which is what a stock database would do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.clock import INFINITY
from repro.core.errors import SqlError, StorageError
from repro.db.sql import ast
from repro.db.sql.eval import aggregate, evaluate, truthy
from repro.db.storage import Database, RowVersion, Table

PartitionKey = Tuple[str, str, object]  # (table, column, value)


@dataclass
class ExecContext:
    """Where/when a statement executes.

    ``gen`` is the generation the statement runs in; ``current_gen`` is the
    live generation (they differ only during repair); ``repair`` marks
    repair-mode writes which must preserve current-generation copies.
    ``forced_row_ids`` makes INSERT re-execution reuse the original rows'
    IDs so identical re-executions compare equal (paper §4.2).
    """

    ts: int
    gen: int
    current_gen: int
    repair: bool = False
    forced_row_ids: Tuple[int, ...] = ()


@dataclass
class QueryResult:
    """Outcome of one statement, rich enough for dependency tracking."""

    kind: str  # 'select' | 'insert' | 'update' | 'delete'
    table: str
    rows: Optional[List[Dict[str, object]]] = None
    rowcount: int = 0
    affected_row_ids: Tuple[int, ...] = ()
    inserted_row_ids: Tuple[int, ...] = ()
    #: Logical rows a SELECT examined (row-level read dependencies; used by
    #: the taint-tracking baseline of §8.4).
    read_row_ids: Tuple[int, ...] = ()
    ok: bool = True
    error: Optional[str] = None
    written_partitions: FrozenSet[PartitionKey] = frozenset()

    def snapshot(self) -> Tuple:
        """Canonical comparable form (paper: 'produces results different
        from the original execution')."""
        if self.kind == "select":
            assert self.rows is not None
            return (
                "select",
                self.ok,
                tuple(tuple(sorted(row.items())) for row in self.rows),
            )
        return (
            "write",
            self.kind,
            self.ok,
            self.rowcount,
            tuple(sorted(self.affected_row_ids)),
            tuple(sorted(self.inserted_row_ids)),
        )


class Executor:
    """Executes parsed statements against a :class:`Database`."""

    def __init__(self, database: Database, versioned: bool = True) -> None:
        self.database = database
        self.versioned = versioned

    # -- dispatch -------------------------------------------------------------

    def execute(
        self,
        stmt: ast.Statement,
        params: Sequence[object],
        ctx: ExecContext,
    ) -> QueryResult:
        if isinstance(stmt, ast.Select):
            return self._select(stmt, params, ctx)
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt, params, ctx)
        if isinstance(stmt, ast.Update):
            return self._update(stmt, params, ctx)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt, params, ctx)
        raise SqlError(f"cannot execute {type(stmt).__name__}")

    # -- visibility -----------------------------------------------------------

    def _visible(self, table: Table, ctx: ExecContext):
        if self.versioned:
            yield from table.visible_rows(ctx.ts, ctx.gen)
        else:
            for row_id in sorted(table.versions):
                for version in table.versions[row_id]:
                    yield version
                    break

    def _matching(
        self,
        table: Table,
        where: Optional[ast.Expr],
        params: Sequence[object],
        ctx: ExecContext,
    ) -> List[RowVersion]:
        candidates = self._index_candidates(table, where, params)
        if candidates is not None:
            matched = []
            for row_id in sorted(candidates):
                if self.versioned:
                    version = table.visible_version(row_id, ctx.ts, ctx.gen)
                else:
                    chain = table.row_versions(row_id)
                    version = chain[0] if chain else None
                if version is not None and (
                    where is None or truthy(evaluate(where, version.data, params))
                ):
                    matched.append(version)
            return matched
        matched = []
        for version in self._visible(table, ctx):
            if where is None or truthy(evaluate(where, version.data, params)):
                matched.append(version)
        return matched

    def _index_candidates(
        self,
        table: Table,
        where: Optional[ast.Expr],
        params: Sequence[object],
    ):
        """Candidate row IDs from the equality index, or None to full-scan.

        Only top-level AND-ed ``col = const`` conjuncts are considered; the
        index is a superset, so every candidate is still visibility- and
        WHERE-checked.
        """
        if where is None:
            return None
        best = None
        for column, value in _equality_conjuncts(where, params):
            rows = table.candidate_row_ids(column, value)
            if rows is None:
                continue
            if best is None or len(rows) < len(best):
                best = rows
        return best

    # -- SELECT ---------------------------------------------------------------

    def _select(
        self, stmt: ast.Select, params: Sequence[object], ctx: ExecContext
    ) -> QueryResult:
        table = self.database.table(stmt.table)
        matched = self._matching(table, stmt.where, params, ctx)

        if stmt.is_aggregate:
            datas = [version.data for version in matched]
            row: Dict[str, object] = {}
            for index, item in enumerate(stmt.items):
                name = item.alias or _default_name(item.expr, index)
                if isinstance(item.expr, ast.Aggregate):
                    row[name] = aggregate(item.expr.name, item.expr.arg, datas, params)
                else:
                    raise SqlError("cannot mix aggregates and plain columns")
            return QueryResult(
                kind="select",
                table=stmt.table,
                rows=[row],
                rowcount=1,
                read_row_ids=tuple(version.row_id for version in matched),
            )

        if stmt.order_by:
            matched.sort(
                key=lambda v: tuple(
                    _sort_key(evaluate(o.expr, v.data, params), o.descending)
                    for o in stmt.order_by
                )
            )

        rows: List[Dict[str, object]] = []
        for version in matched:
            if stmt.is_star:
                rows.append(dict(version.data))
            else:
                projected: Dict[str, object] = {}
                for index, item in enumerate(stmt.items):
                    name = item.alias or _default_name(item.expr, index)
                    projected[name] = evaluate(item.expr, version.data, params)
                rows.append(projected)

        if stmt.distinct:
            seen = set()
            unique_rows = []
            for row in rows:
                key = tuple(sorted(row.items()))
                if key not in seen:
                    seen.add(key)
                    unique_rows.append(row)
            rows = unique_rows
        if stmt.offset:
            rows = rows[stmt.offset :]
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        return QueryResult(
            kind="select",
            table=stmt.table,
            rows=rows,
            rowcount=len(rows),
            read_row_ids=tuple(version.row_id for version in matched),
        )

    # -- INSERT ---------------------------------------------------------------

    def _insert(
        self, stmt: ast.Insert, params: Sequence[object], ctx: ExecContext
    ) -> QueryResult:
        table = self.database.table(stmt.table)
        schema = table.schema
        for column in stmt.columns:
            if not schema.has_column(column):
                raise StorageError(
                    f"table {schema.name!r} has no column {column!r}"
                )
        new_rows: List[Dict[str, object]] = []
        for value_tuple in stmt.rows:
            data = {col.name: None for col in schema.columns}
            for column, expr in zip(stmt.columns, value_tuple):
                data[column] = evaluate(expr, {}, params)
            new_rows.append(data)

        # Uniqueness among rows visible *now* (plus the batch itself).
        for index, data in enumerate(new_rows):
            violated = table.unique_conflict(data, ctx.ts, ctx.gen)
            if violated is None:
                violated = _batch_conflict(schema.unique_keys, new_rows, index)
            if violated is not None:
                return QueryResult(
                    kind="insert",
                    table=stmt.table,
                    ok=False,
                    error=f"unique constraint {violated} violated",
                )

        inserted = []
        partitions = set()
        for index, data in enumerate(new_rows):
            if index < len(ctx.forced_row_ids):
                row_id = ctx.forced_row_ids[index]
                table._next_row_id = max(table._next_row_id, row_id + 1)
            else:
                row_id = table.allocate_row_id(data)
            # AUTO INCREMENT semantics: surface the allocated ID through the
            # designated row-ID column when the application left it NULL.
            id_column = schema.row_id_column
            if id_column is not None and data.get(id_column) is None:
                data[id_column] = row_id
            if self.versioned:
                version = RowVersion(
                    row_id,
                    data,
                    start_ts=ctx.ts,
                    end_ts=INFINITY,
                    start_gen=ctx.gen,
                    end_gen=INFINITY,
                )
            else:
                version = RowVersion(row_id, data, start_ts=0)
            table.add_version(version)
            inserted.append(row_id)
            partitions |= _partition_keys(schema, data)
        return QueryResult(
            kind="insert",
            table=stmt.table,
            rowcount=len(inserted),
            inserted_row_ids=tuple(inserted),
            written_partitions=frozenset(partitions),
        )

    # -- UPDATE ---------------------------------------------------------------

    def _update(
        self, stmt: ast.Update, params: Sequence[object], ctx: ExecContext
    ) -> QueryResult:
        table = self.database.table(stmt.table)
        schema = table.schema
        for column, _ in stmt.assignments:
            if not schema.has_column(column):
                raise StorageError(f"table {schema.name!r} has no column {column!r}")
        matched = self._matching(table, stmt.where, params, ctx)

        updates: List[Tuple[RowVersion, Dict[str, object]]] = []
        for version in matched:
            new_data = dict(version.data)
            for column, expr in stmt.assignments:
                new_data[column] = evaluate(expr, version.data, params)
            updates.append((version, new_data))

        # Uniqueness check before mutating anything.
        for version, new_data in updates:
            violated = table.unique_conflict(
                new_data, ctx.ts, ctx.gen, exclude_row_id=version.row_id
            )
            if violated is not None:
                return QueryResult(
                    kind="update",
                    table=stmt.table,
                    ok=False,
                    error=f"unique constraint {violated} violated",
                )

        partitions = set()
        affected = []
        for version, new_data in updates:
            partitions |= _partition_keys(schema, version.data)
            partitions |= _partition_keys(schema, new_data)
            affected.append(version.row_id)
            if not self.versioned:
                version.data = new_data
                continue
            self._supersede(table, version, ctx)
            table.add_version(
                RowVersion(
                    version.row_id,
                    new_data,
                    start_ts=ctx.ts,
                    end_ts=INFINITY,
                    start_gen=ctx.gen,
                    end_gen=INFINITY,
                )
            )
        return QueryResult(
            kind="update",
            table=stmt.table,
            rowcount=len(affected),
            affected_row_ids=tuple(affected),
            written_partitions=frozenset(partitions),
        )

    # -- DELETE ---------------------------------------------------------------

    def _delete(
        self, stmt: ast.Delete, params: Sequence[object], ctx: ExecContext
    ) -> QueryResult:
        table = self.database.table(stmt.table)
        matched = self._matching(table, stmt.where, params, ctx)
        partitions = set()
        affected = []
        for version in matched:
            partitions |= _partition_keys(table.schema, version.data)
            affected.append(version.row_id)
            if not self.versioned:
                table.remove_version(version)
                continue
            self._supersede(table, version, ctx)
        return QueryResult(
            kind="delete",
            table=stmt.table,
            rowcount=len(affected),
            affected_row_ids=tuple(affected),
            written_partitions=frozenset(partitions),
        )

    # -- repair support -----------------------------------------------------------

    def matching_rows(
        self,
        table_name: str,
        where: Optional[ast.Expr],
        params: Sequence[object],
        ctx: ExecContext,
    ) -> List[RowVersion]:
        """Rows a WHERE clause selects at (ts, gen) — used by two-phase
        write re-execution to find the *new* matching row IDs (§4.2)."""
        table = self.database.table(table_name)
        return self._matching(table, where, params, ctx)

    # -- write plumbing ---------------------------------------------------------

    def _supersede(self, table: Table, version: RowVersion, ctx: ExecContext) -> None:
        """End ``version`` at ``ctx.ts`` in the executing generation.

        In repair mode this is the §4.4 dance: matching rows that are still
        visible to the live (current) generation get a preserved copy so
        concurrent normal execution keeps seeing them, and the version being
        modified is re-homed into the repair generation before being closed.
        """
        if ctx.repair and version.start_gen <= ctx.current_gen:
            preserved = version.copy()
            preserved.end_gen = ctx.current_gen
            table.add_version(preserved)
            version.start_gen = ctx.gen
        version.end_ts = ctx.ts


def _batch_conflict(
    unique_keys: Tuple[Tuple[str, ...], ...],
    new_rows: List[Dict[str, object]],
    index: int,
) -> Optional[Tuple[str, ...]]:
    """Check row ``index`` against earlier rows of the same INSERT batch."""
    data = new_rows[index]
    for key in unique_keys:
        candidate = tuple(data.get(col) for col in key)
        if any(value is None for value in candidate):
            continue
        for other in new_rows[:index]:
            if tuple(other.get(col) for col in key) == candidate:
                return key
    return None


def _equality_conjuncts(expr: ast.Expr, params: Sequence[object]):
    """Yield (column, value) for top-level AND-ed equality comparisons."""
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "AND":
            yield from _equality_conjuncts(expr.left, params)
            yield from _equality_conjuncts(expr.right, params)
            return
        if expr.op == "=":
            pairs = (
                (expr.left, expr.right),
                (expr.right, expr.left),
            )
            for column_side, value_side in pairs:
                if isinstance(column_side, ast.ColumnRef):
                    if isinstance(value_side, ast.Literal):
                        yield (column_side.name, value_side.value)
                    elif isinstance(value_side, ast.Param) and value_side.index < len(
                        params
                    ):
                        yield (column_side.name, params[value_side.index])


def _partition_keys(schema, data: Dict[str, object]) -> set:
    """The (table, column, value) partition keys a concrete row belongs to."""
    keys = set()
    for column in schema.partition_columns:
        value = data.get(column)
        if isinstance(value, (str, int, float, bool)) or value is None:
            keys.add((schema.name, column, value))
    return keys


def _default_name(expr: ast.Expr, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.Aggregate):
        return expr.name.lower()
    return f"col{index}"


def _sort_key(value, descending: bool):
    """Total order across None/bool/int/float/str for ORDER BY."""
    if value is None:
        rank, key = 0, 0
    elif isinstance(value, bool):
        rank, key = 1, int(value)
    elif isinstance(value, (int, float)):
        rank, key = 1, value
    else:
        rank, key = 2, str(value)
    if descending:
        if rank == 2:
            # Invert strings by negating each character's code point.
            key = tuple(-ord(ch) for ch in key)
            return (-rank, key)
        return (-rank, -key)
    return (rank, key)
