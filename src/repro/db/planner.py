"""Query planning: compiled, cached execution plans per statement shape.

The applications issue the same parameterised statement shapes over and
over — live traffic *and* repair-time re-execution both funnel through
the executor — so everything derivable from ``(sql, schema)`` alone is
computed once and cached:

* the WHERE predicate and SELECT projection as compiled closures
  (:mod:`repro.db.sql.compile`) — no per-row AST walking;
* the access path: equality probes against the value index, a range
  probe against the ordered index, or an index-ordered traversal for
  ``ORDER BY`` on an indexed column;
* compiled UPDATE assignments, INSERT row builders, ORDER BY sort keys
  and aggregate reducers.

Plans are cached by the executor keyed on the SQL text (or the statement
AST) and invalidated by comparing the plan's ``epoch`` against
``Database.ddl_epoch`` (bumped on create/drop/restore).

**Equivalence contract:** planned execution must be observably identical
to the naive tree-walking reference — same ``QueryResult.snapshot()``,
same read/written partitions and row IDs, same row order — so dependency
tracking and repair escalation behave byte-for-byte the same.  The index
access paths return candidate *supersets*; every candidate is still
visibility- and WHERE-checked.  (One documented exception, inherited
from the seed's equality index: a predicate that would *raise* on some
row — e.g. comparing incompatible types — may not raise under any index
plan that never evaluates that row, and index-ordered traversal may
surface a different row's error first.  Range scans gate on the probed
column's value-rank profile so the *range comparison itself* never
silently skips a row it would have raised on; other conjuncts share the
equality index's caveat.)
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.errors import SqlError, StorageError
from repro.db.sql import ast
from repro.db.sql.compile import compile_aggregate, compile_expr, compile_predicate
from repro.db.storage import Table, descending_order_key, order_key

#: Sentinel for "this parameter is not supplied" (mirrors the seed's
#: behavior of ignoring equality conjuncts on out-of-range params).
MISSING = object()

Getter = Callable[[Sequence[object]], object]


class ExecPlan:
    """Everything the executor needs that does not depend on parameters."""

    __slots__ = (
        "epoch",
        "kind",
        "table",
        "pred",
        "eq_probes",
        "range_probe",
        "order_index",
        "sort_items",
        "agg_items",
        "select_items",
        "assignments",
        "insert_rows",
        "touches_indexed",
        "touches_partitions",
        "lowered",
        "lowered_order",
        "referenced",
    )

    def __init__(self, kind: str, table: str, epoch: int) -> None:
        self.kind = kind
        self.table = table
        self.epoch = epoch
        self.pred = None
        self.eq_probes: Tuple[Tuple[str, Getter], ...] = ()
        self.range_probe: Optional[Tuple] = None
        self.order_index: Optional[Tuple[str, bool]] = None
        self.sort_items: Optional[Tuple[Tuple[Callable, bool], ...]] = None
        self.agg_items: Optional[Tuple[Tuple[str, Callable], ...]] = None
        self.select_items: Optional[Tuple[Tuple[str, Callable], ...]] = None
        self.assignments: Tuple[Tuple[str, Callable], ...] = ()
        self.insert_rows: Tuple[Tuple[Tuple[str, Callable], ...], ...] = ()
        #: UPDATE fast-path facts: whether any assignment writes an indexed
        #: (resp. partition) column.  When not, the superseded version's
        #: index entries / partition keys provably cover the new version.
        self.touches_indexed = True
        self.touches_partitions = True
        #: SQL-lowering artifacts, populated only for tables advertising
        #: ``sql_lowering`` (the SQLite engine): a bind-time-renderable
        #: WHERE tree, the ORDER BY column list, and the referenced-column
        #: set for projection pushdown (see :mod:`repro.db.sql.lower`).
        self.lowered = None
        self.lowered_order: Optional[Tuple[Tuple[str, bool], ...]] = None
        self.referenced = None


def build_plan(stmt: ast.Statement, table: Table, epoch: int) -> ExecPlan:
    schema = table.schema
    if isinstance(stmt, ast.Select):
        plan = ExecPlan("select", stmt.table, epoch)
        _plan_where(plan, stmt.where, table)
        if stmt.is_aggregate:
            items = []
            for index, item in enumerate(stmt.items):
                name = item.alias or default_name(item.expr, index)
                if isinstance(item.expr, ast.Aggregate):
                    items.append(
                        (name, compile_aggregate(item.expr.name, item.expr.arg))
                    )
                else:
                    raise SqlError("cannot mix aggregates and plain columns")
            plan.agg_items = tuple(items)
        elif not stmt.is_star:
            plan.select_items = tuple(
                (item.alias or default_name(item.expr, index), compile_expr(item.expr))
                for index, item in enumerate(stmt.items)
            )
        if stmt.order_by:
            plan.sort_items = tuple(
                (compile_expr(order.expr), order.descending)
                for order in stmt.order_by
            )
            if (
                len(stmt.order_by) == 1
                and isinstance(stmt.order_by[0].expr, ast.ColumnRef)
                and stmt.order_by[0].expr.name in table._indexed_columns
                and schema.has_column(stmt.order_by[0].expr.name)
            ):
                plan.order_index = (
                    stmt.order_by[0].expr.name,
                    stmt.order_by[0].descending,
                )
        if getattr(table, "sql_lowering", False):
            from repro.db.sql.lower import build_lowering, referenced_columns

            plan.lowered = build_lowering(stmt.where)
            plan.referenced = referenced_columns(stmt)
            if stmt.order_by and all(
                isinstance(order.expr, ast.ColumnRef) for order in stmt.order_by
            ):
                plan.lowered_order = tuple(
                    (order.expr.name, order.descending) for order in stmt.order_by
                )
        return plan

    if isinstance(stmt, ast.Update):
        plan = ExecPlan("update", stmt.table, epoch)
        for column, _ in stmt.assignments:
            if not schema.has_column(column):
                raise StorageError(f"table {schema.name!r} has no column {column!r}")
        plan.assignments = tuple(
            (column, compile_expr(expr)) for column, expr in stmt.assignments
        )
        assigned = {column for column, _ in stmt.assignments}
        plan.touches_indexed = bool(assigned & table._indexed_columns)
        plan.touches_partitions = bool(assigned & set(schema.partition_columns))
        _plan_where(plan, stmt.where, table)
        if getattr(table, "sql_lowering", False):
            from repro.db.sql.lower import build_lowering

            plan.lowered = build_lowering(stmt.where)
        return plan

    if isinstance(stmt, ast.Delete):
        plan = ExecPlan("delete", stmt.table, epoch)
        _plan_where(plan, stmt.where, table)
        if getattr(table, "sql_lowering", False):
            from repro.db.sql.lower import build_lowering

            plan.lowered = build_lowering(stmt.where)
        return plan

    if isinstance(stmt, ast.Insert):
        plan = ExecPlan("insert", stmt.table, epoch)
        for column in stmt.columns:
            if not schema.has_column(column):
                raise StorageError(f"table {schema.name!r} has no column {column!r}")
        plan.insert_rows = tuple(
            tuple(
                (column, compile_expr(expr))
                for column, expr in zip(stmt.columns, value_tuple)
            )
            for value_tuple in stmt.rows
        )
        return plan

    raise SqlError(f"cannot execute {type(stmt).__name__}")


# -- access-path extraction ---------------------------------------------------


def _plan_where(plan: ExecPlan, where: Optional[ast.Expr], table: Table) -> None:
    plan.pred = compile_predicate(where)
    if where is None:
        return
    eq_probes: List[Tuple[str, Getter]] = []
    ranges = {}
    for conjunct in _conjuncts(where):
        if isinstance(conjunct, ast.BinaryOp):
            op = conjunct.op
            if op == "=":
                for column_side, value_side in (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                ):
                    if isinstance(column_side, ast.ColumnRef):
                        getter = _value_getter(value_side)
                        if getter is not None:
                            eq_probes.append((column_side.name, getter))
            elif op in ("<", "<=", ">", ">="):
                _note_range(ranges, conjunct)
        elif isinstance(conjunct, ast.Between):
            if isinstance(conjunct.operand, ast.ColumnRef):
                lo = _value_getter(conjunct.low)
                hi = _value_getter(conjunct.high)
                if lo is not None and hi is not None:
                    _merge_range(
                        ranges, conjunct.operand.name, lo, True, hi, True
                    )
    plan.eq_probes = tuple(eq_probes)
    for column, (lo, lo_incl, hi, hi_incl) in ranges.items():
        if column in table._indexed_columns:
            plan.range_probe = (column, lo, lo_incl, hi, hi_incl)
            break


def _conjuncts(expr: ast.Expr):
    """Top-level AND-ed conjuncts, in left-to-right order."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        yield from _conjuncts(expr.left)
        yield from _conjuncts(expr.right)
    else:
        yield expr


def _note_range(ranges, conjunct: ast.BinaryOp) -> None:
    op = conjunct.op
    if isinstance(conjunct.left, ast.ColumnRef):
        getter = _value_getter(conjunct.right)
        if getter is None:
            return
        column = conjunct.left.name
    elif isinstance(conjunct.right, ast.ColumnRef):
        getter = _value_getter(conjunct.left)
        if getter is None:
            return
        column = conjunct.right.name
        # Flip the comparison: ``c < col`` is ``col > c``.
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    else:
        return
    if op == "<":
        _merge_range(ranges, column, None, False, getter, False)
    elif op == "<=":
        _merge_range(ranges, column, None, False, getter, True)
    elif op == ">":
        _merge_range(ranges, column, getter, False, None, False)
    else:
        _merge_range(ranges, column, getter, True, None, False)


def _merge_range(ranges, column, lo, lo_incl, hi, hi_incl) -> None:
    """Fill empty bound slots; the compiled predicate enforces the rest
    (the index only needs *a* superset, not the tightest one)."""
    current = ranges.get(column)
    if current is None:
        ranges[column] = [lo, lo_incl, hi, hi_incl]
        return
    if current[0] is None and lo is not None:
        current[0], current[1] = lo, lo_incl
    if current[2] is None and hi is not None:
        current[2], current[3] = hi, hi_incl


def _value_getter(expr: ast.Expr) -> Optional[Getter]:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda params: value
    if isinstance(expr, ast.Param):
        index = expr.index

        def getter(params):
            if index < len(params):
                return params[index]
            return MISSING

        return getter
    return None


# -- shared helpers (also used by the naive reference executor) ----------------


def default_name(expr: ast.Expr, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.Aggregate):
        return expr.name.lower()
    return f"col{index}"


def sort_key(value, descending: bool):
    """ORDER BY sort key, derived from the storage layer's single
    ordering definition so index traversal and in-memory sorts can never
    drift apart."""
    pair = order_key(value)
    if descending:
        return descending_order_key(*pair)
    return pair
