"""The SQL database substrate (replaces PostgreSQL from the paper).

``repro.db`` provides the storage engine and SQL front end; the WARP
time-travel semantics (continuous versioning, repair generations,
partition dependency analysis) are layered on top in :mod:`repro.ttdb`.
"""

from repro.db.engine import PyMemoryEngine, create_database, resolve_backend
from repro.db.executor import ExecContext, Executor, QueryResult
from repro.db.storage import Column, Database, RowVersion, Table, TableSchema

__all__ = [
    "Column",
    "TableSchema",
    "Table",
    "RowVersion",
    "Database",
    "PyMemoryEngine",
    "create_database",
    "resolve_backend",
    "Executor",
    "ExecContext",
    "QueryResult",
]
