"""SQLite (WAL-mode) storage engine behind the :mod:`repro.db.engine` seam.

Versioned rows live in *shadow tables*: one SQLite table per application
table with the WARP interval columns (``__start_ts``/``__end_ts`` half-open
time, ``__start_gen``/``__end_gen`` closed generations, paper §4.2) plus
one untyped shadow column per schema column and a ``__data`` JSON blob.
The blob is the fidelity source of truth — shadow columns exist so WHERE /
ORDER BY / projections can run inside SQLite (:mod:`repro.db.sql.lower`);
whenever a column has ever stored a value the shadow representation would
misrepresent (huge ints, NaN, non-scalars), lowering consults the per-
column :class:`~repro.db.sql.lower.ColumnState` flags and falls back to
materializing rows and re-checking with the compiled Python predicate.

``__vid INTEGER PRIMARY KEY AUTOINCREMENT`` is the engine-private version
identity stamped into :attr:`RowVersion.vid` at materialization time.
AUTOINCREMENT (never reuse a rowid) is load-bearing: repair abort replays
journaled discards/unfences keyed by vid, and a reused id would let an
abort clobber an unrelated version.  All interval/generation mutations
write through by vid *and* update the materialized object's attributes, so
the executor/repair/rollback code observes the same state it would on the
in-memory engine.

Files: one WAL-mode SQLite file per *partition group* (by default one
group per table; a ``groups`` mapping can coalesce tables) under the
engine's directory.  With no directory given the engine uses a
self-cleaning temporary directory — hermetic for tests — and with one it
reattaches to existing files via the ``__warp_meta`` table (schema,
row-id counter, lowering flags), which is flushed by ``checkpoint()`` /
``to_dict()`` / ``close()``.

Fault points (see :mod:`repro.faults.plane`): ``sqlite.exec`` fires before
every statement the engine executes, ``sqlite.commit`` before a
checkpoint — so schedules can inject I/O errors or crashes at the SQL
boundary exactly like they do at the WAL's.
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import tempfile
import threading
import weakref
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.clock import INFINITY
from repro.core.errors import StorageError
from repro.db.sql.lower import (
    ColumnState,
    bindable,
    render_order,
    render_where,
    warp_desc_cmp,
    warp_like,
)
from repro.db.storage import RowVersion, TableSchema
from repro.faults.plane import active as _active_plane

#: Interval/identity columns every shadow table carries, in SELECT order.
_BASE_COLS = "__vid, __row_id, __start_ts, __end_ts, __start_gen, __end_gen"

#: Visibility at (ts, gen): [start_ts, end_ts) half-open, [start_gen,
#: end_gen] closed — binds (ts, ts, gen, gen).
_VIS_SQL = (
    "__start_ts <= ? AND __end_ts > ? AND __start_gen <= ? AND __end_gen >= ?"
)

_DELETE_CHUNK = 500
_BULK_CHUNK = 20000

#: Winner order for non-versioned ("plain") reads: the memory engine's
#: ``chain[0]`` — lowest start_ts, earliest inserted on ties.
_PLAIN_WINNER = "__start_ts ASC, __vid ASC"


def _safe_name(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def _release(conns: dict, directory: str, persistent: bool) -> None:
    """Engine finalizer — must not reference the engine itself."""
    for conn in list(conns.values()):
        try:
            conn.close()
        except Exception:
            pass
    conns.clear()
    if not persistent:
        import shutil

        shutil.rmtree(directory, ignore_errors=True)


def _json_encode(data: dict) -> str:
    # default=str keeps inserts of exotic values working (the column's
    # ``lossy`` flag already forces Python evaluation for them).
    return json.dumps(data, default=str)


class SqliteTable:
    """One application table's version store inside a group file."""

    #: Capability flag: build_plan attaches lowering artifacts
    #: (plan.lowered / lowered_order / referenced) for this table.
    sql_lowering = True

    def __init__(self, engine: "SqliteEngine", schema: TableSchema, group: str):
        self.engine = engine
        self.schema = schema
        self.group = group
        self.version_count = 0
        self._next_row_id = 1
        #: Highest recorded timestamp — reads at or after it can only see
        #: open versions (mirrors the memory engine's ``_max_ts``).
        self._max_ts = 0
        #: Monotone "became open" counter; assigned on insert-open and on
        #: reopen.  Replicates the memory engine's ``_live`` list order,
        #: which decides the winner when a row anomalously has more than
        #: one open visible version (duplicate forced row IDs).
        self._open_seq = 0
        #: Sticky: some row has (or once had) more than one simultaneously
        #: open version — duplicate forced-row-id inserts, repair's
        #: preserved copies, rollback re-extends.  Until then a row has at
        #: most one visible version at any (ts, gen), so WHERE filters may
        #: run before winner selection; once set, filtered fetches pick
        #: each row's visibility winner first (window query).
        self._multi_open = False
        self._sql_name = f'"t_{_safe_name(schema.name)}"'
        #: Column name -> (shadow ident, monotone lowering flags).
        self._states: Dict[str, ColumnState] = {
            col.name: ColumnState(f'"c{index}"')
            for index, col in enumerate(schema.columns)
        }
        self._columns = [col.name for col in schema.columns]
        #: Same set the in-memory engine indexes — the planner consults it
        #: when extracting access paths (unused here, but harmless).
        indexed = set(schema.partition_columns)
        for key in schema.unique_keys:
            indexed.update(key)
        if schema.row_id_column:
            indexed.add(schema.row_id_column)
        self._indexed_columns = indexed
        idents = ", ".join(self._states[name].ident for name in self._columns)
        placeholders = ", ".join("?" for _ in range(7 + len(self._columns)))
        self._insert_sql = (
            f"INSERT INTO {self._sql_name} (__row_id, __start_ts, __end_ts, "
            f"__start_gen, __end_gen, __data"
            + (f", {idents}" if idents else "")
            + f", __open_seq) VALUES ({placeholders})"
        )
        self._full_cols = f"{_BASE_COLS}, __data"

    # -- DDL / meta ------------------------------------------------------------

    def _create_ddl(self) -> List[str]:
        shadow = "".join(
            f", {self._states[name].ident}" for name in self._columns
        )
        base = _safe_name(self.schema.name)
        return [
            f"CREATE TABLE IF NOT EXISTS {self._sql_name} ("
            "__vid INTEGER PRIMARY KEY AUTOINCREMENT, "
            "__row_id INTEGER NOT NULL, "
            "__start_ts INTEGER NOT NULL, "
            "__end_ts INTEGER NOT NULL, "
            "__start_gen INTEGER NOT NULL, "
            "__end_gen INTEGER NOT NULL, "
            "__open_seq INTEGER NOT NULL DEFAULT 0, "
            f"__data TEXT NOT NULL{shadow})",
            f'CREATE INDEX IF NOT EXISTS "ix_{base}_row" '
            f"ON {self._sql_name} (__row_id, __start_ts)",
            f'CREATE INDEX IF NOT EXISTS "ix_{base}_endgen" '
            f"ON {self._sql_name} (__end_gen)",
        ]

    def _meta_dict(self) -> dict:
        return {
            "group": self.group,
            "schema": self.schema.to_dict(),
            "next_row_id": self._next_row_id,
            "version_count": self.version_count,
            "max_ts": self._max_ts,
            "open_seq": self._open_seq,
            "multi_open": self._multi_open,
            "flags": {
                name: state.to_list() for name, state in self._states.items()
            },
        }

    def _load_meta(self, meta: dict) -> None:
        self._next_row_id = meta["next_row_id"]
        self.version_count = meta["version_count"]
        self._max_ts = meta.get("max_ts", 0)
        self._open_seq = meta.get("open_seq", 0)
        self._multi_open = meta.get("multi_open", False)
        for name, flags in meta.get("flags", {}).items():
            state = self._states.get(name)
            if state is not None:
                state.load_list(flags)

    # -- value encoding ----------------------------------------------------------

    def _encode_value(self, name: str, value):
        """Shadow representation of ``value``, updating the column's
        monotone flags so lowering knows what it can trust."""
        state = self._states[name]
        if value is None:
            return None
        if isinstance(value, bool):
            state.has_bool = True
            state.ranks.add(1)
            return int(value)
        if isinstance(value, int):
            state.ranks.add(1)
            if -(2**63) <= value <= 2**63 - 1:
                return value
            state.lossy = True
            return str(value)
        if isinstance(value, float):
            if value != value:
                state.has_nan = True
                return None
            state.ranks.add(1)
            return value
        if isinstance(value, str):
            state.ranks.add(2)
            return value
        state.lossy = True
        state.ranks.add(2)
        try:
            return str(value)
        except Exception:
            return "<unrepresentable>"

    def _encode_row(self, version: RowVersion) -> tuple:
        data = version.data
        return (
            version.row_id,
            version.start_ts,
            version.end_ts,
            version.start_gen,
            version.end_gen,
            _json_encode(data),
            *(self._encode_value(name, data.get(name)) for name in self._columns),
        )

    def _materialize(
        self, row: tuple, proj_names: Optional[List[str]] = None
    ) -> RowVersion:
        if proj_names is None:
            data = json.loads(row[6])
        else:
            # Projection pushdown: every projected column is faithful, so
            # shadow values ARE the stored values — no JSON parse.
            data = dict(zip(proj_names, row[6:]))
        version = RowVersion(row[1], data, row[2], row[3], row[4], row[5])
        version.vid = row[0]
        return version

    # -- execution plumbing ------------------------------------------------------

    def _exec(self, sql: str, binds: Sequence[object] = ()):
        return self.engine.execute(self.group, sql, binds)

    # -- row id management -------------------------------------------------------

    def allocate_row_id(self, data: Dict[str, object]) -> int:
        column = self.schema.row_id_column
        if column is not None:
            value = data.get(column)
            if isinstance(value, int) and value > 0:
                self._next_row_id = max(self._next_row_id, value + 1)
                return value
        row_id = self._next_row_id
        self._next_row_id += 1
        return row_id

    def note_row_id(self, row_id: int) -> None:
        if row_id + 1 > self._next_row_id:
            self._next_row_id = row_id + 1

    # -- version plumbing --------------------------------------------------------

    def _note_added(self, start_ts: int, end_ts: int) -> int:
        """Track ``_max_ts``/``_open_seq`` for a new version, returning the
        open-sequence number to store (0 for already-closed versions)."""
        if end_ts == INFINITY:
            self._open_seq += 1
            seq = self._open_seq
        else:
            seq = 0
            if end_ts > self._max_ts:
                self._max_ts = end_ts
        if start_ts > self._max_ts:
            self._max_ts = start_ts
        return seq

    def _check_multi_open(self, row_id: int) -> None:
        if self._multi_open:
            return
        (count,) = self._exec(
            f"SELECT COUNT(*) FROM {self._sql_name} "
            f"WHERE __row_id = ? AND __end_ts = {INFINITY}",
            (row_id,),
        ).fetchone()
        if count > 1:
            self._multi_open = True

    def add_version(self, version: RowVersion, index_data: bool = True) -> None:
        seq = self._note_added(version.start_ts, version.end_ts)
        cursor = self._exec(self._insert_sql, (*self._encode_row(version), seq))
        version.vid = cursor.lastrowid
        self.version_count += 1
        if seq:
            self._check_multi_open(version.row_id)

    def close_version(self, version: RowVersion, end_ts: int) -> None:
        self._exec(
            f"UPDATE {self._sql_name} SET __end_ts = ? WHERE __vid = ?",
            (end_ts, version.vid),
        )
        version.end_ts = end_ts
        if end_ts != INFINITY and end_ts > self._max_ts:
            self._max_ts = end_ts

    def reopen_version(self, version: RowVersion) -> None:
        if version.end_ts != INFINITY:
            self._open_seq += 1
            self._exec(
                f"UPDATE {self._sql_name} SET __end_ts = ?, __open_seq = ? "
                "WHERE __vid = ?",
                (INFINITY, self._open_seq, version.vid),
            )
            version.end_ts = INFINITY
            self._check_multi_open(version.row_id)

    def remove_version(self, version: RowVersion) -> None:
        cursor = self._exec(
            f"DELETE FROM {self._sql_name} WHERE __vid = ?", (version.vid,)
        )
        if cursor.rowcount:
            self.version_count -= 1

    def replace_data(self, version: RowVersion, new_data: Dict[str, object]) -> None:
        sets = ", ".join(
            f"{self._states[name].ident} = ?" for name in self._columns
        )
        binds = [
            *(self._encode_value(name, new_data.get(name)) for name in self._columns),
            _json_encode(new_data),
            version.vid,
        ]
        prefix = f"SET {sets}, " if sets else "SET "
        self._exec(
            f"UPDATE {self._sql_name} {prefix}__data = ? WHERE __vid = ?", binds
        )
        version.data = new_data

    def set_plain_data(
        self, version: RowVersion, new_data: Dict[str, object], reindex: bool = True
    ) -> None:
        # The reindex fast-path flag is an in-memory-index concern; shadow
        # columns and lowering flags must always be kept current.
        self.replace_data(version, new_data)

    def rehome_version(self, version: RowVersion, start_gen: int) -> None:
        self._exec(
            f"UPDATE {self._sql_name} SET __start_gen = ? WHERE __vid = ?",
            (start_gen, version.vid),
        )
        version.start_gen = start_gen

    def fence_version(self, version: RowVersion, end_gen: int) -> None:
        self._exec(
            f"UPDATE {self._sql_name} SET __end_gen = ? WHERE __vid = ?",
            (end_gen, version.vid),
        )
        version.end_gen = end_gen

    def unfence_version(self, version: RowVersion, if_end_gen: int) -> None:
        cursor = self._exec(
            f"UPDATE {self._sql_name} SET __end_gen = ? "
            "WHERE __vid = ? AND __end_gen = ?",
            (INFINITY, version.vid, if_end_gen),
        )
        if cursor.rowcount:
            version.end_gen = INFINITY

    def discard_version(self, version: RowVersion) -> bool:
        cursor = self._exec(
            f"DELETE FROM {self._sql_name} WHERE __vid = ?", (version.vid,)
        )
        if cursor.rowcount:
            self.version_count -= 1
            return True
        return False

    def gc_superseded(self, current_gen: int) -> int:
        cursor = self._exec(
            f"DELETE FROM {self._sql_name} WHERE __end_gen < ?", (current_gen,)
        )
        removed = cursor.rowcount
        self.version_count -= removed
        return removed

    # -- visibility --------------------------------------------------------------

    def _select_cols(self, proj_names: Optional[List[str]] = None) -> str:
        if proj_names is None:
            return self._full_cols
        idents = "".join(f", {self._states[name].ident}" for name in proj_names)
        return f"{_BASE_COLS}{idents}"

    def _fetch(
        self,
        where_sql: Optional[str],
        binds: Sequence[object],
        order_sql: str,
        proj_names: Optional[List[str]] = None,
    ) -> List[RowVersion]:
        cols = self._select_cols(proj_names)
        sql = f"SELECT {cols} FROM {self._sql_name}"
        if where_sql:
            sql += f" WHERE {where_sql}"
        sql += f" ORDER BY {order_sql}"
        rows = self._exec(sql, binds).fetchall()
        return [self._materialize(row, proj_names) for row in rows]

    @staticmethod
    def _dedupe(versions: List[RowVersion]) -> List[RowVersion]:
        """Keep the first fetched version of each logical row — the fetch
        order encodes which version wins (see ``_vis``)."""
        seen: set = set()
        out = []
        for version in versions:
            if version.row_id in seen:
                continue
            seen.add(version.row_id)
            out.append(version)
        return out

    def _vis(self, ts: int, gen: int) -> Tuple[str, tuple, str]:
        """``(where, binds, winner_order)`` replicating the memory
        engine's two read paths exactly.  At or after the newest recorded
        timestamp only open versions can be visible and the *earliest
        opened* gen-covering one wins (``_live`` list order); historical
        reads walk the chain back from the highest ``start_ts`` (ties:
        latest inserted)."""
        if ts >= self._max_ts:
            return (
                f"__end_ts = {INFINITY} AND __start_gen <= ? AND __end_gen >= ?",
                (gen, gen),
                "__open_seq ASC",
            )
        return (_VIS_SQL, (ts, ts, gen, gen), "__start_ts DESC, __vid DESC")

    def visible_rows(self, ts: int, gen: int) -> Iterator[RowVersion]:
        where, binds, winner = self._vis(ts, gen)
        fetched = self._fetch(where, binds, f"__row_id ASC, {winner}")
        return iter(self._dedupe(fetched))

    def visible_version(self, row_id: int, ts: int, gen: int) -> Optional[RowVersion]:
        where, binds, winner = self._vis(ts, gen)
        rows = self._exec(
            f"SELECT {self._full_cols} FROM {self._sql_name} "
            f"WHERE __row_id = ? AND {where} "
            f"ORDER BY {winner} LIMIT 1",
            (row_id, *binds),
        ).fetchall()
        if not rows:
            return None
        return self._materialize(rows[0])

    def row_versions(self, row_id: int) -> List[RowVersion]:
        return self._fetch(
            "__row_id = ?", (row_id,), "__start_ts ASC, __vid ASC"
        )

    def all_versions(self) -> Iterator[RowVersion]:
        return iter(
            self._fetch(None, (), "__row_id ASC, __start_ts ASC, __vid ASC")
        )

    def plain_rows(self) -> Iterator[RowVersion]:
        # chain[0] per row: lowest start_ts, earliest inserted on ties.
        fetched = self._fetch(None, (), f"__row_id ASC, {_PLAIN_WINNER}")
        return iter(self._dedupe(fetched))

    # -- access paths -------------------------------------------------------------

    def candidate_row_ids(self, column: str, value) -> Optional[set]:
        return None  # no in-memory equality index: fetch_plan is the path

    def fetch_plan(
        self,
        plan,
        params: Sequence[object],
        ctx,
        versioned: bool,
        want_order: bool,
    ) -> Tuple[List[RowVersion], bool]:
        """Matched rows for a compiled plan, straight from SQLite.

        Lowers WHERE (superset or exact), visibility, ORDER BY and the
        projection into one query; anything unlowerable falls back to the
        compiled Python predicate over materialized rows.  Returns
        ``(matched, pre_sorted)``; when not pre-sorted, rows are in row-ID
        order exactly like every other access path.
        """
        states = self._states
        where_sql, where_binds, exact = render_where(plan.lowered, params, states)
        need_recheck = plan.pred is not None and not exact

        order_sql = None
        if want_order and plan.lowered_order is not None and not need_recheck:
            # A non-exact prefilter re-checks rows with the Python
            # predicate; doing that in row-ID order keeps which-row-raises
            # behavior identical to the naive scan, so ORDER BY pushdown
            # only engages when the WHERE is exact.
            order_sql = render_order(plan.lowered_order, states)
        pre_sorted = order_sql is not None

        if versioned:
            vis_where, vis_binds, winner = self._vis(ctx.ts, ctx.gen)
        else:
            vis_where, vis_binds, winner = None, (), _PLAIN_WINNER
        #: While no row has ever had two open versions, each row has at
        #: most one visible version, so the lowered WHERE may filter
        #: before winner selection.  Once ``_multi_open`` is set it must
        #: filter winners only — a matching superseded version must not
        #: resurface (same contract the memory engine gets from checking
        #: only ``_visible_in_chain``'s pick).
        winner_first = self._multi_open and where_sql is not None

        proj_names = None
        if plan.referenced is not None:
            names = [name for name in plan.referenced if name in states]
            if all(states[name].faithful() for name in names):
                # Columns referenced but absent from the schema stay absent
                # from the partial dicts — the compiled closures raise the
                # same "unknown column" the full dict would produce.
                proj_names = names

        if pre_sorted or winner_first:
            # Window query: pick each row's visibility winner first, then
            # filter / sort — deduping or filtering in any other order
            # would pick the wrong version when a row has several visible
            # ones.
            cols = self._select_cols(proj_names)
            inner = [vis_where] if vis_where else []
            outer = ["__rn = 1"]
            binds: List[object] = list(vis_binds)
            if where_sql is not None:
                if winner_first:
                    outer.append(f"({where_sql})")
                else:
                    inner.append(where_sql)
                binds.extend(where_binds)
            order = (
                f"{order_sql}, __row_id ASC" if pre_sorted else "__row_id ASC"
            )
            sql = (
                f"SELECT {cols} FROM (SELECT *, ROW_NUMBER() OVER "
                f"(PARTITION BY __row_id ORDER BY {winner}) AS __rn "
                f"FROM {self._sql_name}"
                + (f" WHERE {' AND '.join(inner)}" if inner else "")
                + f") WHERE {' AND '.join(outer)} ORDER BY {order}"
            )
            rows = self._exec(sql, binds).fetchall()
            matched = [self._materialize(row, proj_names) for row in rows]
        else:
            clauses = []
            binds = []
            if vis_where:
                clauses.append(vis_where)
                binds.extend(vis_binds)
            if where_sql is not None:
                clauses.append(where_sql)
                binds.extend(where_binds)
            fetched = self._fetch(
                " AND ".join(clauses) if clauses else None,
                binds,
                f"__row_id ASC, {winner}",
                proj_names,
            )
            matched = self._dedupe(fetched)
        if need_recheck:
            pred = plan.pred
            matched = [v for v in matched if pred(v.data, params)]
        return matched, pre_sorted

    # -- uniqueness ---------------------------------------------------------------

    def unique_conflict(
        self,
        data: Dict[str, object],
        ts: int,
        gen: int,
        exclude_row_id: Optional[int] = None,
    ) -> Optional[Tuple[str, ...]]:
        for key in self.schema.unique_keys:
            candidate = tuple(data.get(col) for col in key)
            if any(value is None for value in candidate):
                continue
            if all(bindable(value) for value in candidate):
                # Shadow-column prefilter: when the true stored value
                # equals the candidate, the shadow value is SQL-equal to
                # the bind (huge/NaN/non-scalar candidates are unbindable
                # and take the scan path), so this finds a superset of the
                # candidate rows.  Only each row's *visibility winner* is
                # then checked — a matching non-winner version must not
                # conflict (same contract as the memory engine's probe).
                where, vis_binds, _ = self._vis(ts, gen)
                clauses = [where]
                binds: List[object] = list(vis_binds)
                for col, value in zip(key, candidate):
                    clauses.append(f"{self._states[col].ident} = ?")
                    binds.append(value)
                row_ids = [
                    row[0]
                    for row in self._exec(
                        f"SELECT DISTINCT __row_id FROM {self._sql_name} "
                        f"WHERE {' AND '.join(clauses)}",
                        binds,
                    ).fetchall()
                ]
                versions = (
                    self.visible_version(row_id, ts, gen) for row_id in row_ids
                )
            else:
                versions = self.visible_rows(ts, gen)
            for version in versions:
                if version is None:
                    continue
                if exclude_row_id is not None and version.row_id == exclude_row_id:
                    continue
                if tuple(version.data.get(col) for col in key) == candidate:
                    return key
        return None

    # -- maintenance --------------------------------------------------------------

    def gc(self, horizon_ts: int) -> int:
        """Same policy as the in-memory engine: drop versions that ended
        before the horizon, never a row's only remaining version (the
        survivor is the first-maximal ``end_ts`` among the dropped)."""
        doomed: List[int] = []
        rows = self._exec(
            f"SELECT __vid, __row_id, __end_ts FROM {self._sql_name} "
            "WHERE __row_id IN ("
            f"SELECT __row_id FROM {self._sql_name} "
            "GROUP BY __row_id HAVING COUNT(*) > 1) "
            "ORDER BY __row_id ASC, __start_ts ASC, __vid ASC"
        ).fetchall()
        by_row: Dict[int, List[Tuple[int, int]]] = {}
        for vid, row_id, end_ts in rows:
            by_row.setdefault(row_id, []).append((vid, end_ts))
        for chain in by_row.values():
            dropped = [
                (vid, end_ts)
                for vid, end_ts in chain
                if end_ts < horizon_ts and end_ts != INFINITY
            ]
            if not dropped:
                continue
            if len(dropped) == len(chain):
                survivor = max(dropped, key=lambda item: item[1])
                dropped.remove(survivor)
            doomed.extend(vid for vid, _ in dropped)
        for start in range(0, len(doomed), _DELETE_CHUNK):
            chunk = doomed[start : start + _DELETE_CHUNK]
            placeholders = ", ".join("?" for _ in chunk)
            self._exec(
                f"DELETE FROM {self._sql_name} WHERE __vid IN ({placeholders})",
                chunk,
            )
        self.version_count -= len(doomed)
        return len(doomed)

    def integrity_errors(
        self, gen: int, budget: int = 20, label: str = ""
    ) -> List[str]:
        """The same chain invariants the in-memory engine sweeps (minus its
        private live-map check, which has no analogue here)."""
        errors: List[str] = []
        name = label or self.schema.name
        rows = self._exec(
            f"SELECT __row_id, __start_ts, __end_ts, __start_gen, __end_gen "
            f"FROM {self._sql_name} ORDER BY __row_id ASC, __start_ts ASC"
        ).fetchall()
        index = 0
        total = len(rows)
        while index < total and len(errors) < budget:
            row_id = rows[index][0]
            stop = index
            while stop < total and rows[stop][0] == row_id:
                stop += 1
            chain = rows[index:stop]
            index = stop
            visible = sorted(
                (
                    (start_ts, end_ts)
                    for _, start_ts, end_ts, start_gen, end_gen in chain
                    if start_gen <= gen <= end_gen
                ),
            )
            open_count = sum(1 for _, end_ts in visible if end_ts == INFINITY)
            if open_count > 1:
                errors.append(
                    f"{name}: row {row_id} has {open_count} open "
                    f"versions visible in gen {gen}"
                )
            for a, b in zip(visible, visible[1:]):
                if a[0] < a[1] and b[0] < b[1] and b[0] < a[1]:
                    errors.append(
                        f"{name}: row {row_id} overlapping versions "
                        f"[{a[0]},{a[1]}) and [{b[0]},{b[1]}) in gen {gen}"
                    )
            for _, start_ts, end_ts, _, _ in chain:
                if end_ts != INFINITY and start_ts > end_ts:
                    errors.append(
                        f"{name}: row {row_id} inverted interval "
                        f"[{start_ts},{end_ts})"
                    )
        return errors[:budget]

    # -- persistence --------------------------------------------------------------

    def bulk_load(self, versions: Sequence[Sequence[object]]) -> None:
        """Load ``[row_id, data, start_ts, end_ts, start_gen, end_gen]``
        tuples (the persisted shape) in chunked transactions — the path
        ``restore`` and the capacity benchmark use for millions of rows."""
        chunk: List[tuple] = []
        for row_id, data, start_ts, end_ts, start_gen, end_gen in versions:
            version = RowVersion(
                row_id, dict(data), start_ts, end_ts, start_gen, end_gen
            )
            seq = self._note_added(start_ts, end_ts)
            chunk.append((*self._encode_row(version), seq))
            if len(chunk) >= _BULK_CHUNK:
                self._flush_chunk(chunk)
                chunk = []
        if chunk:
            self._flush_chunk(chunk)
        if not self._multi_open:
            row = self._exec(
                f"SELECT 1 FROM {self._sql_name} WHERE __end_ts = {INFINITY} "
                "GROUP BY __row_id HAVING COUNT(*) > 1 LIMIT 1"
            ).fetchone()
            if row is not None:
                self._multi_open = True

    def _flush_chunk(self, chunk: List[tuple]) -> None:
        self.engine.execute_many(self.group, self._insert_sql, chunk)
        self.version_count += len(chunk)

    def to_dict(self) -> dict:
        versions = [
            [v.row_id, v.data, v.start_ts, v.end_ts, v.start_gen, v.end_gen]
            for v in self.all_versions()
        ]
        return {
            "schema": self.schema.to_dict(),
            "next_row_id": self._next_row_id,
            "versions": versions,
        }


class SqliteEngine:
    """Database-shaped engine storing every table in WAL-mode SQLite."""

    backend = "sqlite"

    def __init__(
        self,
        path: Optional[str] = None,
        fault_plane=None,
        groups: Optional[Dict[str, str]] = None,
    ) -> None:
        self.tables: Dict[str, SqliteTable] = {}
        self.ddl_epoch = 0
        self.faults = fault_plane if fault_plane is not None else _active_plane()
        #: Table name -> partition-group name (default: its own group).
        self._groups = dict(groups or {})
        self.persistent = path is not None
        if path is None:
            self._dir = tempfile.mkdtemp(prefix="repro-sqlite-")
        else:
            os.makedirs(path, exist_ok=True)
            self._dir = path
        self.path = self._dir
        self._conns: Dict[str, sqlite3.Connection] = {}
        #: One lock serializes all SQLite access: connections are shared
        #: across request threads (check_same_thread=False) and the layers
        #: above already serialize statements, so contention is nil.
        self._lock = threading.RLock()
        self._finalizer = weakref.finalize(
            self, _release, self._conns, self._dir, self.persistent
        )
        if self.persistent:
            self._attach_existing()

    # -- connections -------------------------------------------------------------

    def _connect(self, group: str) -> sqlite3.Connection:
        conn = self._conns.get(group)
        if conn is None:
            file_path = os.path.join(self._dir, f"{_safe_name(group)}.sqlite")
            conn = sqlite3.connect(
                file_path,
                check_same_thread=False,
                isolation_level=None,  # autocommit; WAL makes writes durable
                cached_statements=256,
            )
            conn.create_function("warp_like", 2, warp_like, deterministic=True)
            conn.create_collation("warp_desc", warp_desc_cmp)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS __warp_meta "
                "(key TEXT PRIMARY KEY, value TEXT)"
            )
            self._conns[group] = conn
        return conn

    def execute(self, group: str, sql: str, binds: Sequence[object] = ()):
        self.faults.fire("sqlite.exec", op=sql.split(None, 1)[0])
        with self._lock:
            return self._connect(group).execute(sql, tuple(binds))

    def execute_many(self, group: str, sql: str, rows: List[tuple]) -> None:
        self.faults.fire("sqlite.exec", op="INSERT", rows=len(rows))
        with self._lock:
            conn = self._connect(group)
            conn.execute("BEGIN")
            try:
                conn.executemany(sql, rows)
                conn.execute("COMMIT")
            except BaseException:
                try:
                    conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
                raise

    # -- attach / meta ------------------------------------------------------------

    def _attach_existing(self) -> None:
        for filename in sorted(os.listdir(self._dir)):
            if not filename.endswith(".sqlite"):
                continue
            group_key = filename[: -len(".sqlite")]
            conn = self._connect(group_key)
            rows = conn.execute(
                "SELECT key, value FROM __warp_meta WHERE key LIKE 'table:%'"
            ).fetchall()
            for _, value in rows:
                meta = json.loads(value)
                schema = TableSchema.from_dict(meta["schema"])
                if schema.name in self.tables:
                    continue
                group = meta.get("group", schema.name)
                self._groups.setdefault(schema.name, group)
                # The file was discovered under its sanitized name; alias
                # the logical group to the same connection.
                self._conns.setdefault(group, conn)
                table = SqliteTable(self, schema, group)
                table._load_meta(meta)
                self.tables[schema.name] = table
        if self.tables:
            self.ddl_epoch += 1

    def _write_meta(self, table: SqliteTable) -> None:
        with self._lock:
            self._connect(table.group).execute(
                "INSERT INTO __warp_meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (f"table:{table.schema.name}", json.dumps(table._meta_dict())),
            )

    def checkpoint(self) -> None:
        """Flush table metadata (row-id counters, lowering flags) and
        truncate each group file's WAL — the durability point for
        file-backed deployments (``to_dict``/``close`` call it too)."""
        self.faults.fire("sqlite.commit")
        with self._lock:
            for table in self.tables.values():
                self._write_meta(table)
            for conn in self._conns.values():
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        with self._lock:
            try:
                self.checkpoint()
            finally:
                for conn in self._conns.values():
                    try:
                        conn.close()
                    except Exception:
                        pass
                self._conns.clear()

    # -- DDL ----------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> SqliteTable:
        if schema.name in self.tables:
            raise StorageError(f"table {schema.name!r} already exists")
        group = self._groups.get(schema.name, schema.name)
        table = SqliteTable(self, schema, group)
        for ddl in table._create_ddl():
            self.execute(group, ddl)
        self.tables[schema.name] = table
        self._write_meta(table)
        self.ddl_epoch += 1
        return table

    def table(self, name: str) -> SqliteTable:
        try:
            return self.tables[name]
        except KeyError:
            raise StorageError(f"no such table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def drop_table(self, name: str) -> None:
        table = self.tables.pop(name, None)
        if table is None:
            raise StorageError(f"no such table {name!r}")
        self.execute(table.group, f"DROP TABLE IF EXISTS {table._sql_name}")
        self.execute(
            table.group, "DELETE FROM __warp_meta WHERE key = ?", (f"table:{name}",)
        )
        self.ddl_epoch += 1

    # -- whole-database operations -------------------------------------------------

    def total_versions(self) -> int:
        return sum(table.version_count for table in self.tables.values())

    def gc(self, horizon_ts: int) -> int:
        return sum(table.gc(horizon_ts) for table in self.tables.values())

    # -- persistence ----------------------------------------------------------------

    def to_dict(self) -> dict:
        state = {"tables": [table.to_dict() for table in self.tables.values()]}
        self.checkpoint()
        return state

    def restore(self, data: dict) -> None:
        """Rebuild every table from a persisted image (engine-portable
        JSON shape shared with the in-memory engine)."""
        for name in list(self.tables):
            self.drop_table(name)
        for item in data["tables"]:
            schema = TableSchema.from_dict(item["schema"])
            table = self.create_table(schema)
            table.bulk_load(item["versions"])
            table._next_row_id = item["next_row_id"]
            self._write_meta(table)
        self.ddl_epoch += 1
