"""Versioned row storage — the substrate under the time-travel database.

Every logical row is a chain of :class:`RowVersion` objects.  A version is
valid for the half-open time interval ``[start_ts, end_ts)`` and the closed
generation interval ``[start_gen, end_gen]`` (paper §4.2–§4.4).  "Current"
versions have ``end_ts == INFINITY``; versions not yet superseded in any
repair generation have ``end_gen == INFINITY``.

The storage layer knows nothing about SQL or repair; it provides version
visibility, row-ID indexing and uniqueness bookkeeping.  Query rewriting
semantics live in :mod:`repro.ttdb.timetravel`; plain (non-versioned)
execution for the "No WARP" baseline lives in the executor.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.clock import INFINITY
from repro.core.errors import StorageError


@dataclass(frozen=True)
class Column:
    """A column definition.  Types are advisory (the engine is dynamic)."""

    name: str
    type: str = "text"  # 'text' | 'int' | 'float' | 'bool'


@dataclass(frozen=True)
class TableSchema:
    """Schema plus the WARP annotations from §4.1.

    ``row_id_column`` names an application column whose value is assigned
    once at row creation and never overwritten; if ``None``, WARP manages a
    synthetic row ID transparently (the paper's extra ``row_id`` column).
    ``partition_columns`` drive fine-grained read-dependency analysis.
    ``unique_keys`` are enforced among *currently visible* rows only, which
    mirrors the paper's trick of extending unique indexes with
    ``end_ts``/``end_gen`` (§6).
    """

    name: str
    columns: Tuple[Column, ...]
    row_id_column: Optional[str] = None
    partition_columns: Tuple[str, ...] = ()
    unique_keys: Tuple[Tuple[str, ...], ...] = ()

    def column_names(self) -> List[str]:
        return [col.name for col in self.columns]

    def has_column(self, name: str) -> bool:
        return any(col.name == name for col in self.columns)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "columns": [[col.name, col.type] for col in self.columns],
            "row_id_column": self.row_id_column,
            "partition_columns": list(self.partition_columns),
            "unique_keys": [list(key) for key in self.unique_keys],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableSchema":
        return cls(
            name=data["name"],
            columns=tuple(Column(name, type) for name, type in data["columns"]),
            row_id_column=data.get("row_id_column"),
            partition_columns=tuple(data.get("partition_columns", ())),
            unique_keys=tuple(tuple(key) for key in data.get("unique_keys", ())),
        )


class RowVersion:
    """One immutable-ish version of a logical row.

    ``data`` maps column name to value.  ``row_id`` is WARP's stable name
    for the logical row (paper §4.1); all versions of the same logical row
    share it.
    """

    __slots__ = ("row_id", "data", "start_ts", "end_ts", "start_gen", "end_gen")

    def __init__(
        self,
        row_id: int,
        data: Dict[str, object],
        start_ts: int,
        end_ts: int = INFINITY,
        start_gen: int = 0,
        end_gen: int = INFINITY,
    ) -> None:
        self.row_id = row_id
        self.data = data
        self.start_ts = start_ts
        self.end_ts = end_ts
        self.start_gen = start_gen
        self.end_gen = end_gen

    def visible(self, ts: int, gen: int) -> bool:
        return (
            self.start_ts <= ts < self.end_ts
            and self.start_gen <= gen <= self.end_gen
        )

    def visible_in_gen(self, gen: int) -> bool:
        return self.start_gen <= gen <= self.end_gen

    def copy(self) -> "RowVersion":
        return RowVersion(
            self.row_id,
            dict(self.data),
            self.start_ts,
            self.end_ts,
            self.start_gen,
            self.end_gen,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end_ts = "inf" if self.end_ts == INFINITY else self.end_ts
        end_gen = "inf" if self.end_gen == INFINITY else self.end_gen
        return (
            f"RowVersion(row_id={self.row_id}, ts=[{self.start_ts},{end_ts}), "
            f"gen=[{self.start_gen},{end_gen}], data={self.data})"
        )


class Table:
    """All versions of all rows of one table, indexed by row ID."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.versions: Dict[int, List[RowVersion]] = {}
        self._next_row_id = 1
        #: Versions created/affected per timestamp are found by scanning;
        #: the table keeps a count for storage accounting.
        self.version_count = 0
        #: Sorted row IDs (kept incrementally; scans yield row-ID order).
        self._sorted_ids: List[int] = []
        #: Equality index: column -> value -> row IDs that *ever* carried
        #: that value.  Over-approximate by design — stale entries are
        #: filtered by the visibility/WHERE checks — which keeps updates
        #: O(1) and never compromises correctness.
        indexed = set(schema.partition_columns)
        for key in schema.unique_keys:
            indexed.update(key)
        if schema.row_id_column:
            indexed.add(schema.row_id_column)
        self._indexed_columns = indexed
        self._value_index: Dict[str, Dict[object, set]] = {
            column: {} for column in indexed
        }

    # -- row id management ---------------------------------------------------

    def allocate_row_id(self, data: Dict[str, object]) -> int:
        """Pick the row ID for a new logical row.

        Uses the schema's designated row-ID column when its value is a
        usable integer-like key; otherwise allocates a synthetic ID.
        """
        column = self.schema.row_id_column
        if column is not None:
            value = data.get(column)
            if isinstance(value, int) and value > 0:
                self._next_row_id = max(self._next_row_id, value + 1)
                return value
        row_id = self._next_row_id
        self._next_row_id += 1
        return row_id

    # -- version plumbing ------------------------------------------------------

    def add_version(self, version: RowVersion) -> None:
        chain = self.versions.get(version.row_id)
        if chain is None:
            self.versions[version.row_id] = [version]
            bisect.insort(self._sorted_ids, version.row_id)
        else:
            chain.append(version)
        self.version_count += 1
        for column in self._indexed_columns:
            value = version.data.get(column)
            try:
                self._value_index[column].setdefault(value, set()).add(version.row_id)
            except TypeError:
                pass  # unhashable value: simply not indexed

    def remove_version(self, version: RowVersion) -> None:
        chain = self.versions.get(version.row_id, [])
        chain.remove(version)
        self.version_count -= 1
        if not chain:
            del self.versions[version.row_id]
            index = self._sorted_ids
            pos = bisect.bisect_left(index, version.row_id)
            if pos < len(index) and index[pos] == version.row_id:
                index.pop(pos)

    def candidate_row_ids(self, column: str, value) -> Optional[set]:
        """Row IDs that may currently carry ``column == value`` (superset),
        or None when the column is not indexed."""
        if column not in self._indexed_columns:
            return None
        try:
            return self._value_index[column].get(value, set())
        except TypeError:
            return None

    def row_versions(self, row_id: int) -> List[RowVersion]:
        return self.versions.get(row_id, [])

    def all_versions(self) -> Iterator[RowVersion]:
        for chain in self.versions.values():
            yield from chain

    def visible_rows(self, ts: int, gen: int) -> Iterator[RowVersion]:
        """Iterate versions visible at ``(ts, gen)`` in row-ID order."""
        for row_id in self._sorted_ids:
            for version in self.versions[row_id]:
                if version.visible(ts, gen):
                    yield version
                    break  # at most one version of a row is visible

    def visible_version(self, row_id: int, ts: int, gen: int) -> Optional[RowVersion]:
        for version in self.versions.get(row_id, []):
            if version.visible(ts, gen):
                return version
        return None

    # -- uniqueness ------------------------------------------------------------

    def unique_conflict(
        self,
        data: Dict[str, object],
        ts: int,
        gen: int,
        exclude_row_id: Optional[int] = None,
    ) -> Optional[Tuple[str, ...]]:
        """Return the violated unique key if inserting ``data`` at (ts, gen)
        would collide with a visible row, else None."""
        for key in self.schema.unique_keys:
            candidate = tuple(data.get(col) for col in key)
            if any(value is None for value in candidate):
                continue
            rows = self.candidate_row_ids(key[0], candidate[0])
            if rows is not None:
                versions = (
                    self.visible_version(row_id, ts, gen) for row_id in rows
                )
            else:
                versions = self.visible_rows(ts, gen)
            for version in versions:
                if version is None:
                    continue
                if exclude_row_id is not None and version.row_id == exclude_row_id:
                    continue
                existing = tuple(version.data.get(col) for col in key)
                if existing == candidate:
                    return key
        return None

    def gc(self, horizon_ts: int) -> int:
        """Drop versions that ended before ``horizon_ts`` (paper §4.2).

        Never drops a row's only remaining version.  Returns the number of
        versions removed.
        """
        removed = 0
        for row_id in list(self.versions):
            chain = self.versions[row_id]
            if len(chain) <= 1:
                continue
            keep = [v for v in chain if v.end_ts >= horizon_ts or v.end_ts == INFINITY]
            if not keep:
                keep = [max(chain, key=lambda v: v.end_ts)]
            removed += len(chain) - len(keep)
            self.version_count -= len(chain) - len(keep)
            self.versions[row_id] = keep
        return removed

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> dict:
        versions = [
            [v.row_id, v.data, v.start_ts, v.end_ts, v.start_gen, v.end_gen]
            for chain in self.versions.values()
            for v in chain
        ]
        return {
            "schema": self.schema.to_dict(),
            "next_row_id": self._next_row_id,
            "versions": versions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Table":
        table = cls(TableSchema.from_dict(data["schema"]))
        for row_id, row_data, start_ts, end_ts, start_gen, end_gen in data["versions"]:
            table.add_version(
                RowVersion(row_id, dict(row_data), start_ts, end_ts, start_gen, end_gen)
            )
        table._next_row_id = data["next_row_id"]
        return table


class Database:
    """A named collection of tables."""

    def __init__(self) -> None:
        self.tables: Dict[str, Table] = {}

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise StorageError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise StorageError(f"no such table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise StorageError(f"no such table {name!r}")
        del self.tables[name]

    def total_versions(self) -> int:
        return sum(table.version_count for table in self.tables.values())

    def gc(self, horizon_ts: int) -> int:
        return sum(table.gc(horizon_ts) for table in self.tables.values())

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {"tables": [table.to_dict() for table in self.tables.values()]}

    def restore(self, data: dict) -> None:
        """Rebuild all tables in place from a persisted image, so objects
        holding a reference to this database observe the restored state."""
        self.tables.clear()
        for item in data["tables"]:
            table = Table.from_dict(item)
            self.tables[table.schema.name] = table
